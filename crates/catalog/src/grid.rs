//! Spatial and temporal addressing for the catalog: quadtree tile ids,
//! monthly layer keys, and the configurable polar-stereographic grid that
//! maps EPSG-3976 coordinates to `(tile, cell)` addresses.
//!
//! The grid covers a square domain `center ± half_extent` in projected
//! metres. At quadtree `level` the domain splits into `2^level × 2^level`
//! tiles, and each tile holds `tile_cells × tile_cells` aggregate cells —
//! so the effective composite resolution is
//! `2·half_extent / (2^level · tile_cells)` metres and can be dialed from
//! pan-Antarctic kilometres down to scene-scale metres without touching
//! the store.

use icesat_geo::{GeoPoint, MapPoint, EPSG_3976};
use seaice::artifact::{ArtifactError, Codec, Reader, Writer};

use crate::CatalogError;

/// Maximum quadtree depth (quadkey digits, and `x`/`y` fit in `u32`).
pub const MAX_LEVEL: u8 = 24;

/// Maximum cells per tile side (cell indices fit comfortably in `u32`).
pub const MAX_TILE_CELLS: u16 = 1024;

// ---------------------------------------------------------------------------
// TileId — quadtree addressing.
// ---------------------------------------------------------------------------

/// Quadtree tile address: `(x, y)` at a zoom `level`, Bing-style.
///
/// `x` grows east (+x in EPSG-3976), `y` grows north (+y); both are
/// `0..2^level`. The [`TileId::quadkey`] string is the on-disk address:
/// one base-4 digit per level, most significant first, so a tile's key is
/// a prefix of all its descendants' keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TileId {
    /// Quadtree depth, `0..=MAX_LEVEL`.
    pub level: u8,
    /// Column, `0..2^level`.
    pub x: u32,
    /// Row, `0..2^level`.
    pub y: u32,
}

impl TileId {
    /// A checked tile id.
    pub fn new(level: u8, x: u32, y: u32) -> Result<TileId, CatalogError> {
        if level > MAX_LEVEL {
            return Err(CatalogError::Corrupt("tile level too deep"));
        }
        let n = 1u32 << level;
        if x >= n || y >= n {
            return Err(CatalogError::Corrupt("tile coordinate out of level range"));
        }
        Ok(TileId { level, x, y })
    }

    /// Tiles per side at this level.
    pub fn tiles_per_side(&self) -> u32 {
        1u32 << self.level
    }

    /// The Bing-style quadkey: one digit in `0..=3` per level, MSB first
    /// (digit = x-bit + 2·y-bit).
    pub fn quadkey(&self) -> String {
        let mut s = String::with_capacity(self.level as usize);
        for i in (0..self.level).rev() {
            let xb = (self.x >> i) & 1;
            let yb = (self.y >> i) & 1;
            s.push(char::from(b'0' + (xb + 2 * yb) as u8));
        }
        s
    }

    /// Parses a quadkey back into a tile id.
    pub fn from_quadkey(key: &str) -> Result<TileId, CatalogError> {
        if key.len() > MAX_LEVEL as usize {
            return Err(CatalogError::Corrupt("quadkey too long"));
        }
        let (mut x, mut y) = (0u32, 0u32);
        for c in key.chars() {
            let d = match c {
                '0'..='3' => c as u32 - '0' as u32,
                _ => return Err(CatalogError::Corrupt("quadkey digit out of range")),
            };
            x = (x << 1) | (d & 1);
            y = (y << 1) | (d >> 1);
        }
        Ok(TileId {
            level: key.len() as u8,
            x,
            y,
        })
    }

    /// The parent tile one level up (`None` at the root).
    pub fn parent(&self) -> Option<TileId> {
        if self.level == 0 {
            return None;
        }
        Some(TileId {
            level: self.level - 1,
            x: self.x >> 1,
            y: self.y >> 1,
        })
    }

    /// The four children one level down, quadkey order; `None` at
    /// [`MAX_LEVEL`] (deeper ids would not round-trip through quadkeys
    /// or the codec).
    pub fn children(&self) -> Option<[TileId; 4]> {
        if self.level >= MAX_LEVEL {
            return None;
        }
        let (l, x, y) = (self.level + 1, self.x << 1, self.y << 1);
        Some([
            TileId { level: l, x, y },
            TileId {
                level: l,
                x: x + 1,
                y,
            },
            TileId {
                level: l,
                x,
                y: y + 1,
            },
            TileId {
                level: l,
                x: x + 1,
                y: y + 1,
            },
        ])
    }

    /// `true` when `self` is `other` or one of its ancestors.
    pub fn contains(&self, other: &TileId) -> bool {
        if other.level < self.level {
            return false;
        }
        let shift = other.level - self.level;
        (other.x >> shift) == self.x && (other.y >> shift) == self.y
    }

    /// `true` when this tile's quadkey starts with `prefix` (allocation
    /// free — digits are derived from the coordinate bits). A prefix
    /// longer than the tile's level never matches.
    pub fn has_quadkey_prefix(&self, prefix: &str) -> bool {
        if prefix.len() > self.level as usize {
            return false;
        }
        for (i, c) in prefix.bytes().enumerate() {
            let shift = self.level as usize - 1 - i;
            let xb = (self.x >> shift) & 1;
            let yb = (self.y >> shift) & 1;
            if c != b'0' + (xb + 2 * yb) as u8 {
                return false;
            }
        }
        true
    }
}

impl Codec for TileId {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.level);
        w.put_u32(self.x);
        w.put_u32(self.y);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ArtifactError> {
        let (level, x, y) = (r.take_u8()?, r.take_u32()?, r.take_u32()?);
        TileId::new(level, x, y).map_err(|_| ArtifactError::Invalid("tile id"))
    }
}

// ---------------------------------------------------------------------------
// TimeKey — monthly composite layers.
// ---------------------------------------------------------------------------

/// A temporal layer key: one calendar month, the paper's composite epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimeKey {
    /// Calendar year.
    pub year: u16,
    /// Calendar month, `1..=12`.
    pub month: u8,
}

impl TimeKey {
    /// A checked key.
    pub fn new(year: u16, month: u8) -> Result<TimeKey, CatalogError> {
        if !(1..=12).contains(&month) {
            return Err(CatalogError::Corrupt("month out of range"));
        }
        Ok(TimeKey { year, month })
    }

    /// Extracts the layer key from an ATL03-style granule id (or bare
    /// acquisition timestamp) whose first 6 digits are `YYYYMM`.
    pub fn from_granule_id(granule_id: &str) -> Result<TimeKey, CatalogError> {
        let digits = granule_id.as_bytes();
        if digits.len() < 6 || !digits[..6].iter().all(u8::is_ascii_digit) {
            return Err(CatalogError::BadGranuleId(granule_id.to_string()));
        }
        let year: u16 = granule_id[..4].parse().expect("4 checked digits");
        let month: u8 = granule_id[4..6].parse().expect("2 checked digits");
        TimeKey::new(year, month).map_err(|_| CatalogError::BadGranuleId(granule_id.to_string()))
    }
}

impl std::fmt::Display for TimeKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:04}-{:02}", self.year, self.month)
    }
}

impl Codec for TimeKey {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(self.year);
        w.put_u8(self.month);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ArtifactError> {
        let (year, month) = (r.take_u16()?, r.take_u8()?);
        TimeKey::new(year, month).map_err(|_| ArtifactError::Invalid("time key"))
    }
}

// ---------------------------------------------------------------------------
// TileScope — quadkey-prefix restriction for sharded serving.
// ---------------------------------------------------------------------------

/// A set of quadkey prefixes restricting which tiles a query may touch.
///
/// The serve path shards catalogs across server instances by quadkey
/// prefix; a scope names the prefixes one shard owns, so a query fanned
/// out by the client router touches each tile on exactly one shard. The
/// empty scope matches every tile (the unsharded, single-catalog case).
///
/// ```
/// use seaice_catalog::{TileId, TileScope};
///
/// let scope = TileScope::of(&["0", "1"]).unwrap();
/// assert!(scope.matches(&TileId::new(2, 1, 0).unwrap())); // quadkey "01"
/// assert!(!scope.matches(&TileId::new(2, 0, 2).unwrap())); // quadkey "20"
/// assert!(TileScope::all().matches(&TileId::new(2, 0, 2).unwrap()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TileScope {
    prefixes: Vec<String>,
}

impl TileScope {
    /// The scope matching every tile.
    pub fn all() -> TileScope {
        TileScope {
            prefixes: Vec::new(),
        }
    }

    /// A scope from quadkey prefixes (each a string of digits `0..=3`,
    /// at most [`MAX_LEVEL`] long).
    pub fn of(prefixes: &[&str]) -> Result<TileScope, CatalogError> {
        TileScope::from_prefixes(prefixes.iter().map(|p| p.to_string()).collect())
    }

    /// [`TileScope::of`] from owned strings.
    pub fn from_prefixes(prefixes: Vec<String>) -> Result<TileScope, CatalogError> {
        for p in &prefixes {
            if p.is_empty() || p.len() > MAX_LEVEL as usize {
                return Err(CatalogError::Corrupt("scope prefix length out of range"));
            }
            if !p.bytes().all(|b| (b'0'..=b'3').contains(&b)) {
                return Err(CatalogError::Corrupt("scope prefix digit out of range"));
            }
        }
        Ok(TileScope { prefixes })
    }

    /// `true` for the match-everything scope.
    pub fn is_all(&self) -> bool {
        self.prefixes.is_empty()
    }

    /// The prefixes (empty means "match everything").
    pub fn prefixes(&self) -> &[String] {
        &self.prefixes
    }

    /// `true` when `tile` falls under this scope.
    pub fn matches(&self, tile: &TileId) -> bool {
        self.prefixes.is_empty() || self.prefixes.iter().any(|p| tile.has_quadkey_prefix(p))
    }

    /// `true` when some tile could fall under both scopes (one scope
    /// holds a prefix of the other's, either way round). The client
    /// router uses this to reject overlapping shard assignments.
    pub fn overlaps(&self, other: &TileScope) -> bool {
        if self.is_all() || other.is_all() {
            return true;
        }
        self.prefixes.iter().any(|a| {
            other
                .prefixes
                .iter()
                .any(|b| a.starts_with(b.as_str()) || b.starts_with(a.as_str()))
        })
    }
}

impl Codec for TileScope {
    fn encode(&self, w: &mut Writer) {
        self.prefixes.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ArtifactError> {
        let prefixes: Vec<String> = Vec::decode(r)?;
        TileScope::from_prefixes(prefixes).map_err(|_| ArtifactError::Invalid("tile scope"))
    }
}

/// Inclusive range of temporal layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeRange {
    /// First layer included.
    pub start: TimeKey,
    /// Last layer included.
    pub end: TimeKey,
}

impl TimeRange {
    /// Every layer the catalog holds.
    pub fn all() -> TimeRange {
        TimeRange {
            start: TimeKey { year: 0, month: 1 },
            end: TimeKey {
                year: u16::MAX,
                month: 12,
            },
        }
    }

    /// A single-layer range.
    pub fn only(key: TimeKey) -> TimeRange {
        TimeRange {
            start: key,
            end: key,
        }
    }

    /// `true` when `key` falls inside the range.
    pub fn contains(&self, key: TimeKey) -> bool {
        self.start <= key && key <= self.end
    }
}

impl Codec for TimeRange {
    fn encode(&self, w: &mut Writer) {
        self.start.encode(w);
        self.end.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ArtifactError> {
        Ok(TimeRange {
            start: TimeKey::decode(r)?,
            end: TimeKey::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Map rectangles.
// ---------------------------------------------------------------------------

/// Axis-aligned rectangle in EPSG-3976 metres (inclusive on all edges).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapRect {
    /// South-west corner.
    pub min: MapPoint,
    /// North-east corner.
    pub max: MapPoint,
}

impl MapRect {
    /// A rectangle from any two opposite corners.
    pub fn new(a: MapPoint, b: MapPoint) -> MapRect {
        MapRect {
            min: MapPoint::new(a.x.min(b.x), a.y.min(b.y)),
            max: MapPoint::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// `true` when the point lies inside (edges inclusive).
    pub fn contains(&self, p: MapPoint) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// The rectangle grown by `pad_m` on every side.
    pub fn padded(&self, pad_m: f64) -> MapRect {
        MapRect {
            min: MapPoint::new(self.min.x - pad_m, self.min.y - pad_m),
            max: MapPoint::new(self.max.x + pad_m, self.max.y + pad_m),
        }
    }

    /// Conservative projected cover of a geographic bounding box: the
    /// box's boundary is sampled densely through EPSG-3976, the map
    /// extremes taken, and the rect padded by the worst-case sag between
    /// consecutive samples. Constant-latitude edges project to circular
    /// arcs about the pole, which bulge past their sampled chord by at
    /// most `r·(1 − cos(Δλ/2))` — that bound (meridian edges are exact
    /// radial segments) makes the cover genuinely conservative for
    /// arbitrarily wide boxes. The image of a lat/lon box is an annular
    /// sector, not a rectangle, so callers must still filter samples
    /// exactly; this rect only prunes candidate tiles.
    pub fn covering_bbox(bbox: &icesat_geo::BoundingBox) -> MapRect {
        const N: usize = 48;
        let mut min = MapPoint::new(f64::INFINITY, f64::INFINITY);
        let mut max = MapPoint::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        let mut r_max = 0.0f64;
        let mut take = |p: GeoPoint| {
            let m = EPSG_3976.forward(p);
            min = MapPoint::new(min.x.min(m.x), min.y.min(m.y));
            max = MapPoint::new(max.x.max(m.x), max.y.max(m.y));
            // EPSG 3976 has no false easting/northing: the pole is the
            // origin, so |m| is the arc radius at this latitude.
            r_max = r_max.max(m.x.hypot(m.y));
        };
        for i in 0..=N {
            let f = i as f64 / N as f64;
            let lon = bbox.lon_min + f * (bbox.lon_max - bbox.lon_min);
            let lat = bbox.lat_min + f * (bbox.lat_max - bbox.lat_min);
            take(GeoPoint::new(bbox.lat_min, lon));
            take(GeoPoint::new(bbox.lat_max, lon));
            take(GeoPoint::new(lat, bbox.lon_min));
            take(GeoPoint::new(lat, bbox.lon_max));
        }
        let half_step_rad =
            (bbox.lon_max - bbox.lon_min).abs() * icesat_geo::DEG2RAD / (2.0 * N as f64);
        let sag_m = r_max * (1.0 - half_step_rad.cos());
        MapRect { min, max }.padded(sag_m)
    }
}

impl Codec for MapRect {
    fn encode(&self, w: &mut Writer) {
        self.min.encode(w);
        self.max.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ArtifactError> {
        let min = MapPoint::decode(r)?;
        let max = MapPoint::decode(r)?;
        // Through the constructor so corner order is normalised even for
        // hostile buffers.
        Ok(MapRect::new(min, max))
    }
}

// ---------------------------------------------------------------------------
// GridConfig — the configurable-resolution tiling.
// ---------------------------------------------------------------------------

/// The catalog's tiling: a square EPSG-3976 domain, a quadtree level, and
/// a per-tile cell count. Persisted in the catalog manifest; two catalogs
/// are compatible only when their grids are identical.
///
/// ```
/// use seaice_catalog::GridConfig;
/// use icesat_geo::MapPoint;
///
/// // 8×8 tiles of 32×32 cells over a 40 km square domain.
/// let grid = GridConfig::around(MapPoint::new(-300_000.0, -1_300_000.0), 20_000.0);
/// assert_eq!(grid.tiles_per_side(), 8);
/// assert!((grid.cell_size_m() - 156.25).abs() < 1e-9);
///
/// // Every in-domain point has exactly one (tile, cell) address.
/// let (tile, cell) = grid.locate(MapPoint::new(-299_000.0, -1_301_000.0)).unwrap();
/// assert!(grid.tile_rect(tile).contains(grid.cell_center(tile, cell)));
/// assert!(grid.locate(MapPoint::new(0.0, 0.0)).is_none()); // outside
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridConfig {
    /// Domain centre, EPSG-3976 metres.
    pub center: MapPoint,
    /// Domain half-extent, metres.
    pub half_extent_m: f64,
    /// Quadtree level tiles are stored at.
    pub level: u8,
    /// Aggregate cells per tile side.
    pub tile_cells: u16,
}

impl GridConfig {
    /// A checked grid.
    pub fn new(
        center: MapPoint,
        half_extent_m: f64,
        level: u8,
        tile_cells: u16,
    ) -> Result<GridConfig, CatalogError> {
        if !(half_extent_m.is_finite() && half_extent_m > 0.0) {
            return Err(CatalogError::Corrupt("grid half extent must be positive"));
        }
        if level > MAX_LEVEL {
            return Err(CatalogError::Corrupt("grid level too deep"));
        }
        if tile_cells == 0 || tile_cells > MAX_TILE_CELLS {
            return Err(CatalogError::Corrupt("tile cells out of range"));
        }
        Ok(GridConfig {
            center,
            half_extent_m,
            level,
            tile_cells,
        })
    }

    /// A grid centred on `center` with catalog-friendly defaults: level 3
    /// (8×8 tiles) and 32×32 cells per tile — 256 cells across the
    /// domain.
    pub fn around(center: MapPoint, half_extent_m: f64) -> GridConfig {
        GridConfig::new(center, half_extent_m, 3, 32).expect("default grid parameters are valid")
    }

    /// The Ross Sea study region (paper Section III-A-1) at kilometre-ish
    /// cells: the projected centre of the geographic box, 800 km half
    /// extent, 16×16 tiles of 64×64 cells (≈1.6 km per cell).
    pub fn ross_sea() -> GridConfig {
        let center = EPSG_3976.forward(icesat_geo::BoundingBox::ROSS_SEA.center());
        GridConfig::new(center, 800_000.0, 4, 64).expect("ross sea grid parameters are valid")
    }

    /// Tiles per side at the grid's level.
    pub fn tiles_per_side(&self) -> u32 {
        1u32 << self.level
    }

    /// Tile edge length, metres.
    pub fn tile_size_m(&self) -> f64 {
        2.0 * self.half_extent_m / self.tiles_per_side() as f64
    }

    /// Aggregate cell edge length, metres — the composite resolution.
    pub fn cell_size_m(&self) -> f64 {
        self.tile_size_m() / self.tile_cells as f64
    }

    /// The full domain rectangle.
    pub fn domain(&self) -> MapRect {
        MapRect {
            min: MapPoint::new(
                self.center.x - self.half_extent_m,
                self.center.y - self.half_extent_m,
            ),
            max: MapPoint::new(
                self.center.x + self.half_extent_m,
                self.center.y + self.half_extent_m,
            ),
        }
    }

    /// Maps a projected point to its `(tile, cell)` address, or `None`
    /// outside the domain (max edges exclusive, so every in-domain point
    /// has exactly one owner).
    pub fn locate(&self, m: MapPoint) -> Option<(TileId, u32)> {
        let ext = 2.0 * self.half_extent_m;
        let u = (m.x - (self.center.x - self.half_extent_m)) / ext;
        let v = (m.y - (self.center.y - self.half_extent_m)) / ext;
        if !(0.0..1.0).contains(&u) || !(0.0..1.0).contains(&v) {
            return None;
        }
        let cells = self.tiles_per_side() as u64 * self.tile_cells as u64;
        let gx = ((u * cells as f64) as u64).min(cells - 1);
        let gy = ((v * cells as f64) as u64).min(cells - 1);
        let tile = TileId {
            level: self.level,
            x: (gx / self.tile_cells as u64) as u32,
            y: (gy / self.tile_cells as u64) as u32,
        };
        let cell_x = (gx % self.tile_cells as u64) as u32;
        let cell_y = (gy % self.tile_cells as u64) as u32;
        Some((tile, cell_y * self.tile_cells as u32 + cell_x))
    }

    /// The rectangle a tile spans.
    pub fn tile_rect(&self, id: TileId) -> MapRect {
        let size = self.tile_size_m();
        let min = MapPoint::new(
            self.center.x - self.half_extent_m + id.x as f64 * size,
            self.center.y - self.half_extent_m + id.y as f64 * size,
        );
        MapRect {
            min,
            max: MapPoint::new(min.x + size, min.y + size),
        }
    }

    /// Centre of `cell` (row-major index) within tile `id`.
    pub fn cell_center(&self, id: TileId, cell: u32) -> MapPoint {
        let rect = self.tile_rect(id);
        let size = self.cell_size_m();
        let cx = cell % self.tile_cells as u32;
        let cy = cell / self.tile_cells as u32;
        MapPoint::new(
            rect.min.x + (cx as f64 + 0.5) * size,
            rect.min.y + (cy as f64 + 0.5) * size,
        )
    }

    /// The conservative projected cover this grid prunes a geographic
    /// bounding-box query with: the sampled projected extremes padded by
    /// the worst-case arc sag plus one cell of slack. Shared by the
    /// in-process query engine and the client-side shard router so both
    /// consider the same candidate tiles.
    pub fn bbox_cover(&self, bbox: &icesat_geo::BoundingBox) -> MapRect {
        MapRect::covering_bbox(bbox).padded(self.cell_size_m() + 200.0)
    }

    /// Tiles (at the grid level) whose rectangles intersect `rect`, in
    /// `(y, x)` scan order.
    pub fn tiles_overlapping(&self, rect: &MapRect) -> Vec<TileId> {
        let size = self.tile_size_m();
        let n = self.tiles_per_side() as i64;
        let min_x = ((rect.min.x - (self.center.x - self.half_extent_m)) / size).floor() as i64;
        let max_x = ((rect.max.x - (self.center.x - self.half_extent_m)) / size).floor() as i64;
        let min_y = ((rect.min.y - (self.center.y - self.half_extent_m)) / size).floor() as i64;
        let max_y = ((rect.max.y - (self.center.y - self.half_extent_m)) / size).floor() as i64;
        let (min_x, max_x) = (min_x.clamp(0, n - 1), max_x.clamp(0, n - 1));
        let (min_y, max_y) = (min_y.clamp(0, n - 1), max_y.clamp(0, n - 1));
        if rect.max.x < self.center.x - self.half_extent_m
            || rect.min.x > self.center.x + self.half_extent_m
            || rect.max.y < self.center.y - self.half_extent_m
            || rect.min.y > self.center.y + self.half_extent_m
        {
            return Vec::new();
        }
        let mut out = Vec::new();
        for y in min_y..=max_y {
            for x in min_x..=max_x {
                out.push(TileId {
                    level: self.level,
                    x: x as u32,
                    y: y as u32,
                });
            }
        }
        out
    }
}

impl Codec for GridConfig {
    fn encode(&self, w: &mut Writer) {
        self.center.encode(w);
        w.put_f64(self.half_extent_m);
        w.put_u8(self.level);
        w.put_u16(self.tile_cells);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ArtifactError> {
        let center = MapPoint::decode(r)?;
        let half_extent_m = r.take_f64()?;
        let level = r.take_u8()?;
        let tile_cells = r.take_u16()?;
        GridConfig::new(center, half_extent_m, level, tile_cells)
            .map_err(|_| ArtifactError::Invalid("grid config"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridConfig {
        GridConfig::new(MapPoint::new(-300_000.0, -1_300_000.0), 10_000.0, 3, 16).unwrap()
    }

    #[test]
    fn quadkey_roundtrip_and_prefix_property() {
        for (level, x, y) in [(0u8, 0u32, 0u32), (1, 1, 0), (4, 9, 3), (10, 1023, 512)] {
            let id = TileId::new(level, x, y).unwrap();
            let key = id.quadkey();
            assert_eq!(key.len(), level as usize);
            assert_eq!(TileId::from_quadkey(&key).unwrap(), id);
            if let Some(parent) = id.parent() {
                assert!(key.starts_with(&parent.quadkey()));
                assert!(parent.contains(&id));
                assert!(parent.children().expect("below max level").contains(&id));
            }
        }
        assert!(TileId::from_quadkey("0412").is_err());
        assert!(TileId::new(2, 4, 0).is_err());
        // The bottom of the quadtree has no addressable children.
        assert!(TileId::new(MAX_LEVEL, 0, 0).unwrap().children().is_none());
    }

    #[test]
    fn time_key_parses_granule_ids() {
        let t = TimeKey::from_granule_id("20191104195311_05000210").unwrap();
        assert_eq!(t, TimeKey::new(2019, 11).unwrap());
        assert_eq!(t.to_string(), "2019-11");
        assert!(TimeKey::from_granule_id("2019").is_err());
        assert!(TimeKey::from_granule_id("20191304195311").is_err());
        assert!(TimeRange::all().contains(t));
        assert!(!TimeRange::only(TimeKey::new(2020, 1).unwrap()).contains(t));
    }

    #[test]
    fn locate_addresses_are_consistent_with_tile_rects() {
        let g = grid();
        let pts = [
            MapPoint::new(-300_000.0, -1_300_000.0),
            MapPoint::new(-309_999.9, -1_309_999.9),
            MapPoint::new(-290_000.1, -1_290_000.1),
            MapPoint::new(-295_123.4, -1_304_321.0),
        ];
        for p in pts {
            let (tile, cell) = g.locate(p).expect("in domain");
            assert!(g.tile_rect(tile).contains(p), "{p:?} not in its tile rect");
            assert!(cell < g.tile_cells as u32 * g.tile_cells as u32);
            let c = g.cell_center(tile, cell);
            assert!((c.x - p.x).abs() <= g.cell_size_m());
            assert!((c.y - p.y).abs() <= g.cell_size_m());
        }
        // Outside the domain.
        assert!(g.locate(MapPoint::new(-310_000.1, -1_300_000.0)).is_none());
        assert!(g.locate(MapPoint::new(-290_000.0, -1_300_000.0)).is_none());
    }

    #[test]
    fn tiles_overlapping_covers_locate() {
        let g = grid();
        let rect = MapRect::new(
            MapPoint::new(-305_000.0, -1_305_000.0),
            MapPoint::new(-298_000.0, -1_297_000.0),
        );
        let tiles = g.tiles_overlapping(&rect);
        assert!(!tiles.is_empty());
        for p in [
            MapPoint::new(-305_000.0, -1_305_000.0),
            MapPoint::new(-300_000.0, -1_300_000.0),
            MapPoint::new(-298_000.0, -1_297_000.0),
        ] {
            let (tile, _) = g.locate(p).unwrap();
            assert!(tiles.contains(&tile), "{p:?} tile missing from cover");
        }
        // Disjoint rect yields nothing.
        let far = MapRect::new(MapPoint::new(0.0, 0.0), MapPoint::new(1.0, 1.0));
        assert!(g.tiles_overlapping(&far).is_empty());
    }

    #[test]
    fn bbox_cover_contains_projected_interior_points() {
        let bbox = icesat_geo::BoundingBox {
            lon_min: -170.0,
            lon_max: -150.0,
            lat_min: -76.0,
            lat_max: -72.0,
        };
        let cover = MapRect::covering_bbox(&bbox);
        for lat in [-76.0, -74.5, -72.0] {
            for lon in [-170.0, -160.0, -150.0] {
                let m = EPSG_3976.forward(GeoPoint::new(lat, lon));
                assert!(
                    cover.padded(1.0).contains(m),
                    "{lat},{lon} escaped the cover"
                );
            }
        }
    }

    #[test]
    fn wide_longitude_bbox_cover_is_conservative() {
        // A full-longitude band: the arc extremes between boundary
        // samples sag by kilometres at this radius, so the padded cover
        // must still contain every projected boundary point — including
        // longitudes that fall between the sample lattice points.
        let bbox = icesat_geo::BoundingBox {
            lon_min: -180.0,
            lon_max: 180.0,
            lat_min: -78.0,
            lat_max: -55.0,
        };
        let cover = MapRect::covering_bbox(&bbox);
        for i in 0..720 {
            let lon = -180.0 + i as f64 * 0.5 + 0.13;
            for lat in [bbox.lat_min, bbox.lat_max] {
                let m = EPSG_3976.forward(GeoPoint::new(lat, lon.min(180.0)));
                assert!(cover.contains(m), "{lat},{lon} escaped the wide cover");
            }
        }
    }

    #[test]
    fn ross_sea_grid_contains_study_region() {
        let g = GridConfig::ross_sea();
        for lat in [-77.5, -74.0, -70.5] {
            for lon in [-179.0, -160.0, -141.0] {
                let m = EPSG_3976.forward(GeoPoint::new(lat, lon));
                assert!(g.locate(m).is_some(), "{lat},{lon} outside ross sea grid");
            }
        }
    }
}
