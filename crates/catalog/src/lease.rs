//! Cross-process writer leases — how multiple would-be writers
//! coordinate over one catalog directory.
//!
//! A catalog's shard locks and version index serialise writers *within*
//! one `Catalog` instance; the lease file serialises write ownership
//! *across* instances and processes. The protocol (specified normatively
//! in `docs/PROTOCOL.md` §4) is deliberately simple enough to audit:
//!
//! - `writer.lease` in the catalog directory holds an artifact-framed
//!   [`LeaseRecord`] (`SIWL` v1): owner id + a random fencing nonce.
//! - The file's **mtime is the heartbeat**: a live owner refreshes it at
//!   least every `ttl / 4`; a lease whose mtime is older than `ttl` is
//!   **stale** and may be taken over.
//! - Acquisition and takeover run under an OS advisory lock on a sibling
//!   guard file (`writer.lease.guard`), so two racing acquirers on one
//!   host cannot both win; the guard lock is released the moment the
//!   acquire step finishes and evaporates automatically if the process
//!   crashes.
//! - **Self-fencing**: before every ingest, a leased writer checks how
//!   long ago it last proved freshness. Past `ttl` it must assume it has
//!   been taken over and refuses to write ([`CatalogError::LeaseLost`])
//!   — crash-recovery therefore never needs to reach into a dead
//!   process, and the index never sees interleaved merges.
//!
//! Takeover never touches tile files: the new owner re-reads tile
//! headers into a fresh authoritative index on open, and every tile
//! replacement was already atomic (temp + rename), so the worst a
//! crashed writer leaves behind is an orphaned `.tmp` file.

use std::fs::{File, TryLockError};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime};

use seaice::artifact::{Artifact, ArtifactError, Codec, Reader, Writer};
use seaice_obs::{Counter, MetricRegistry};

use crate::CatalogError;

/// Lease file name inside a catalog directory.
pub const LEASE_FILE: &str = "writer.lease";

/// Guard file serialising acquire/takeover/release critical sections.
const GUARD_FILE: &str = "writer.lease.guard";

/// The persisted lease record (`SIWL` v1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseRecord {
    /// Human-readable owner id (host, pid, role — operator's choice).
    pub owner: String,
    /// Random fencing nonce distinguishing two leases by the same owner.
    pub nonce: u64,
    /// The staleness horizon this lease was acquired under, in
    /// milliseconds. Contenders judge staleness by *this* ttl — the
    /// owner's published contract — never by their own.
    pub ttl_ms: u64,
}

impl LeaseRecord {
    /// The staleness horizon as a duration.
    pub fn ttl(&self) -> Duration {
        Duration::from_millis(self.ttl_ms)
    }
}

impl Codec for LeaseRecord {
    fn encode(&self, w: &mut Writer) {
        self.owner.encode(w);
        w.put_u64(self.nonce);
        w.put_u64(self.ttl_ms);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ArtifactError> {
        Ok(LeaseRecord {
            owner: String::decode(r)?,
            nonce: r.take_u64()?,
            ttl_ms: r.take_u64()?,
        })
    }
}

impl Artifact for LeaseRecord {
    const TAG: [u8; 4] = *b"SIWL";
    const VERSION: u16 = 1;
}

/// Knobs for acquiring a writer lease.
#[derive(Debug, Clone)]
pub struct LeaseOptions {
    /// Owner id recorded in the lease (shown to losing contenders).
    pub owner: String,
    /// Staleness horizon: a lease not heartbeaten for this long may be
    /// taken over, and its holder self-fences. Heartbeats run at
    /// `ttl / 4`.
    pub ttl: Duration,
}

impl LeaseOptions {
    /// Options for `owner` with the default 30 s ttl.
    pub fn new(owner: impl Into<String>) -> LeaseOptions {
        LeaseOptions {
            owner: owner.into(),
            ttl: Duration::from_secs(30),
        }
    }

    /// Replaces the staleness horizon.
    pub fn with_ttl(mut self, ttl: Duration) -> LeaseOptions {
        self.ttl = ttl;
        self
    }
}

/// A held writer lease. Dropping it releases the lease file (best
/// effort — a crash simply leaves a lease that goes stale after `ttl`).
#[derive(Debug)]
pub struct WriterLease {
    path: PathBuf,
    guard_path: PathBuf,
    record: LeaseRecord,
    ttl: Duration,
    /// Last instant this process proved it still owned the lease.
    last_confirmed: Mutex<Instant>,
    /// Heartbeat/fence event counters, attached when the lease is held
    /// by a catalog with a metric registry (see
    /// [`WriterLease::attach_metrics`]); `None` for a bare lease.
    metrics: Option<LeaseMetrics>,
}

/// Observability handles for lease lifecycle events.
#[derive(Debug, Clone)]
struct LeaseMetrics {
    /// Successful heartbeats (mtime refreshes that proved ownership).
    heartbeats: Counter,
    /// Self-fence events: heartbeats that found the lease lost — the
    /// process paused past its ttl or the record was taken over.
    fences: Counter,
}

/// A fresh fencing nonce: never 0, unique per (process, call).
fn fresh_nonce() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let seq = COUNTER.fetch_add(1, Ordering::Relaxed);
    let now = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    crate::fnv1a(
        (std::process::id() as u64)
            .to_le_bytes()
            .into_iter()
            .chain(now.to_le_bytes())
            .chain(seq.to_le_bytes()),
    )
    .max(1)
}

/// Age of `path`'s mtime, saturating to zero for future mtimes.
fn mtime_age(path: &Path) -> Result<Duration, std::io::Error> {
    let modified = std::fs::metadata(path)?.modified()?;
    Ok(SystemTime::now()
        .duration_since(modified)
        .unwrap_or(Duration::ZERO))
}

impl WriterLease {
    /// Acquires the writer lease for catalog directory `dir`.
    ///
    /// Exactly one contender wins: a fresh lease makes every other
    /// acquirer fail with [`CatalogError::LeaseHeld`] (naming the
    /// current owner), and a stale lease — owner crashed or paused past
    /// its ttl — is taken over in place.
    pub fn acquire(dir: &Path, options: &LeaseOptions) -> Result<WriterLease, CatalogError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(LEASE_FILE);
        let guard_path = dir.join(GUARD_FILE);
        let guard = Self::lock_guard(&guard_path)?;

        let record = LeaseRecord {
            owner: options.owner.clone(),
            nonce: fresh_nonce(),
            ttl_ms: options.ttl.as_millis().min(u64::MAX as u128) as u64,
        };
        if path.exists() {
            // Unreadable records still carry a meaningful mtime: treat
            // them as held-by-unknown until stale (by *our* ttl, the
            // only horizon available), then take over. Readable records
            // are judged by the ttl they were acquired under.
            let current = LeaseRecord::load(&path).ok();
            let age = mtime_age(&path)?;
            let horizon = current.as_ref().map(|r| r.ttl()).unwrap_or(options.ttl);
            if age <= horizon {
                drop(guard);
                return Err(CatalogError::LeaseHeld {
                    owner: current.map(|r| r.owner).unwrap_or_else(|| "unknown".into()),
                    age,
                });
            }
        }
        // Free or stale: publish our record atomically (temp + rename).
        let tmp = path.with_extension(format!("lease.{:016x}.tmp", record.nonce));
        std::fs::write(&tmp, record.to_bytes())?;
        std::fs::rename(&tmp, &path)?;
        drop(guard);
        Ok(WriterLease {
            path,
            guard_path,
            record,
            ttl: options.ttl,
            last_confirmed: Mutex::new(Instant::now()),
            metrics: None,
        })
    }

    /// Takes the guard lock, failing fast (a blocked guard means another
    /// acquire/release is mid-flight — report the lease as held).
    fn lock_guard(guard_path: &Path) -> Result<File, CatalogError> {
        let guard = Self::open_guard(guard_path)?;
        match guard.try_lock() {
            Ok(()) => Ok(guard),
            Err(TryLockError::WouldBlock) => Err(CatalogError::LeaseHeld {
                owner: "a concurrent acquirer".into(),
                age: Duration::ZERO,
            }),
            Err(TryLockError::Error(e)) => Err(CatalogError::Io(e)),
        }
    }

    /// Takes the guard lock, blocking. Release paths use this: a
    /// graceful release that raced an acquirer's critical section must
    /// still delete the lease file afterwards, or the directory would
    /// stay locked out for a full ttl.
    fn lock_guard_blocking(guard_path: &Path) -> Result<File, CatalogError> {
        let guard = Self::open_guard(guard_path)?;
        guard.lock().map_err(CatalogError::Io)?;
        Ok(guard)
    }

    fn open_guard(guard_path: &Path) -> Result<File, CatalogError> {
        Ok(File::options()
            .create(true)
            .truncate(false)
            .write(true)
            .open(guard_path)?)
    }

    /// The record this lease holds.
    pub fn record(&self) -> &LeaseRecord {
        &self.record
    }

    /// Registers this lease's event counters (`lease_heartbeats_total`,
    /// `lease_fences_total`) into `registry`. Called by the leased
    /// catalog constructors so lease health shows up in the same scrape
    /// as everything else.
    pub fn attach_metrics(&mut self, registry: &MetricRegistry) {
        self.metrics = Some(LeaseMetrics {
            heartbeats: registry.counter("lease_heartbeats_total"),
            fences: registry.counter("lease_fences_total"),
        });
    }

    /// Counts a lease-lost observation (at most one per heartbeat call).
    fn count_fence(&self) {
        if let Some(m) = &self.metrics {
            m.fences.inc();
        }
    }

    /// The staleness horizon this lease was acquired with.
    pub fn ttl(&self) -> Duration {
        self.ttl
    }

    /// Proves continued ownership and refreshes the heartbeat mtime.
    ///
    /// Self-fencing comes first: if this process has not confirmed
    /// ownership within `ttl` (it was paused, or heartbeats kept
    /// failing), the lease must be presumed taken over —
    /// [`CatalogError::LeaseLost`] — *without* touching the file. Then
    /// the on-disk record is checked (a foreign nonce is also
    /// `LeaseLost`) and the mtime bumped.
    pub fn heartbeat(&self) -> Result<(), CatalogError> {
        let mut last = self
            .last_confirmed
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if last.elapsed() > self.ttl {
            self.count_fence();
            return Err(CatalogError::LeaseLost);
        }
        let current = match LeaseRecord::load(&self.path) {
            Ok(current) => current,
            Err(_) => {
                self.count_fence();
                return Err(CatalogError::LeaseLost);
            }
        };
        if current != self.record {
            self.count_fence();
            return Err(CatalogError::LeaseLost);
        }
        let file = File::options().write(true).open(&self.path)?;
        file.set_modified(SystemTime::now())?;
        *last = Instant::now();
        if let Some(m) = &self.metrics {
            m.heartbeats.inc();
        }
        Ok(())
    }

    /// [`WriterLease::heartbeat`], but skipped while the last confirmed
    /// heartbeat is younger than `ttl / 4` (the ingest hot path calls
    /// this per batch).
    pub fn heartbeat_if_due(&self) -> Result<(), CatalogError> {
        let due = {
            let last = self
                .last_confirmed
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            last.elapsed() >= self.ttl / 4
        };
        if due {
            self.heartbeat()
        } else {
            Ok(())
        }
    }
}

impl Drop for WriterLease {
    fn drop(&mut self) {
        // Release under the guard, *waiting* for any in-flight acquire
        // (release is not latency-sensitive, and skipping it would
        // strand the directory behind a fresh-looking lease for a full
        // ttl). Only remove the file if it still carries our nonce —
        // never clobber a taker's lease.
        if let Ok(guard) = Self::lock_guard_blocking(&self.guard_path) {
            if LeaseRecord::load(&self.path).is_ok_and(|r| r == self.record) {
                let _ = std::fs::remove_file(&self.path);
            }
            drop(guard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("seaice_lease_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn acquire_release_reacquire() {
        let dir = temp_dir("cycle");
        let opts = LeaseOptions::new("writer-a");
        let lease = WriterLease::acquire(&dir, &opts).unwrap();
        assert_eq!(lease.record().owner, "writer-a");
        lease.heartbeat().unwrap();
        drop(lease);
        assert!(!dir.join(LEASE_FILE).exists(), "release removed the file");
        let again = WriterLease::acquire(&dir, &LeaseOptions::new("writer-b")).unwrap();
        assert_eq!(again.record().owner, "writer-b");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_acquirer_gets_typed_held_error() {
        let dir = temp_dir("held");
        let _first = WriterLease::acquire(&dir, &LeaseOptions::new("first")).unwrap();
        match WriterLease::acquire(&dir, &LeaseOptions::new("second")) {
            Err(CatalogError::LeaseHeld { owner, .. }) => assert_eq!(owner, "first"),
            other => panic!("expected LeaseHeld, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lease_is_taken_over_and_old_holder_fences() {
        let dir = temp_dir("stale");
        let short = LeaseOptions::new("crashed").with_ttl(Duration::from_millis(60));
        let crashed = WriterLease::acquire(&dir, &short).unwrap();
        // Fresh leases resist takeover…
        assert!(matches!(
            WriterLease::acquire(&dir, &LeaseOptions::new("taker").with_ttl(short.ttl)),
            Err(CatalogError::LeaseHeld { .. })
        ));
        std::thread::sleep(Duration::from_millis(90));
        // …stale ones do not.
        let taker =
            WriterLease::acquire(&dir, &LeaseOptions::new("taker").with_ttl(short.ttl)).unwrap();
        assert_eq!(taker.record().owner, "taker");
        // The displaced holder self-fences on its next heartbeat.
        assert!(matches!(crashed.heartbeat(), Err(CatalogError::LeaseLost)));
        // Its drop must not clobber the taker's lease.
        drop(crashed);
        assert!(dir.join(LEASE_FILE).exists());
        assert_eq!(
            LeaseRecord::load(&dir.join(LEASE_FILE)).unwrap().owner,
            "taker"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn racing_acquirers_produce_exactly_one_winner() {
        let dir = temp_dir("race");
        std::fs::create_dir_all(&dir).unwrap();
        let results: Vec<Result<WriterLease, CatalogError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let dir = dir.clone();
                    s.spawn(move || WriterLease::acquire(&dir, &LeaseOptions::new(format!("w{i}"))))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let winners = results.iter().filter(|r| r.is_ok()).count();
        assert_eq!(winners, 1, "exactly one racing writer may win");
        for r in &results {
            if let Err(e) = r {
                assert!(
                    matches!(e, CatalogError::LeaseHeld { .. }),
                    "loser error {e:?}"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_roundtrip_and_corrupt_file() {
        let r = LeaseRecord {
            owner: "host-1/pid-42".into(),
            nonce: 0xdead_beef,
            ttl_ms: 30_000,
        };
        let back = LeaseRecord::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(back, r);
        assert!(LeaseRecord::from_bytes(&r.to_bytes()[..5]).is_err());
    }
}
