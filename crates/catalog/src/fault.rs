//! Deterministic fault injection for the serving stack.
//!
//! Production failure modes — refused connections, mid-frame stalls,
//! truncated streams, corrupted bytes, injected latency, and processes
//! dying mid-persist — are injected here on purpose, reproducibly, so
//! the chaos acceptance suite (`tests/chaos.rs`) can *prove* the
//! resilience contracts instead of asserting them rhetorically:
//!
//! - A [`FaultPlan`] maps named **sites** (places in the code that ask
//!   "should something go wrong here?") to [`FaultAction`]s. Plans are
//!   either **scripted** (fire exactly action X on the nth hit of a
//!   site — crash-recovery tests) or **seeded** (a per-site
//!   deterministic RNG stream draws faults with fixed probabilities —
//!   chaos sweeps). The same seed always deals the same per-site fault
//!   sequence, independent of cross-site thread interleaving, because
//!   every site owns its own stream.
//! - The store's persist path consults `persist.tile.*` /
//!   `persist.ledger.*` sites around its atomic temp+rename steps, so a
//!   test can "kill" a writer at the exact worst instant
//!   ([`FaultAction::Crash`] makes the operation abandon mid-flight,
//!   leaving on-disk state as a real crash would; the instance is then
//!   discarded and the directory reopened, which is what a restarted
//!   process sees).
//! - [`ChaosProxy`] is an in-process TCP proxy that applies socket
//!   faults between a real client and a real server: connection
//!   refusal at accept, latency, mid-frame stalls, truncation, and
//!   byte corruption on the forwarded streams.
//!
//! The injection surface is zero-cost when unused: a catalog or proxy
//! without a plan performs one `Option` check per site and nothing
//! else; no plan, no locks, no RNG.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::CatalogError;

// ---------------------------------------------------------------------------
// Fault actions and plans.
// ---------------------------------------------------------------------------

/// What one hit of a fault site does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultAction {
    /// Nothing — the site proceeds normally.
    #[default]
    None,
    /// Connection-level: refuse (close immediately). Only meaningful at
    /// socket sites; persist sites treat it as [`FaultAction::None`].
    Refuse,
    /// Inject this much latency, then proceed normally.
    DelayMs(u64),
    /// Hold the operation for this long (long enough to trip a peer's
    /// deadline), then proceed — a GC pause, a congested link, a wedged
    /// disk.
    StallMs(u64),
    /// Socket sites: forward only this many bytes of the current chunk,
    /// then drop the connection (a peer crashing mid-frame).
    Truncate(usize),
    /// Socket sites: flip one bit of the forwarded chunk (the byte at
    /// this offset modulo the chunk length) — the checksummed framing
    /// must turn this into a typed error, never a wrong answer.
    Corrupt(usize),
    /// Persist sites: abandon the operation exactly here, leaving
    /// on-disk state as a process killed at this instant would
    /// ([`CatalogError::FaultInjected`]). The instance must be
    /// discarded afterwards, like the dead process it models.
    Crash,
}

/// splitmix64 — the per-site deterministic stream behind seeded plans
/// (and the seeded retry jitter). Self-contained on purpose: fault
/// schedules must never depend on a shared global RNG whose state
/// other code perturbs. Public so seeded test harnesses (the wire
/// fuzzer, chaos scenarios) draw from the same replayable stream.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How long a seeded mid-frame stall holds the stream. Long enough to
/// trip any sane client deadline, short enough to keep chaos sweeps
/// fast.
const SEEDED_STALL_MS: u64 = 300;

#[derive(Debug, Default)]
struct SiteState {
    /// Hits served so far.
    hits: u64,
    /// Scripted actions by hit ordinal (consumed lazily).
    scripted: BTreeMap<u64, FaultAction>,
    /// Per-site RNG state (seeded plans), lazily keyed off the plan
    /// seed and the site name.
    rng: u64,
}

/// A deterministic fault schedule, shared by the store's persist hooks
/// and the [`ChaosProxy`].
///
/// ```
/// use seaice_catalog::fault::{FaultAction, FaultPlan};
///
/// // Scripted: the 2nd tile persist crashes before its rename.
/// let plan = FaultPlan::scripted().with(FaultPlan::TILE_BEFORE_RENAME, 1, FaultAction::Crash);
/// assert_eq!(plan.next(FaultPlan::TILE_BEFORE_RENAME), FaultAction::None);
/// assert_eq!(plan.next(FaultPlan::TILE_BEFORE_RENAME), FaultAction::Crash);
///
/// // Seeded: the same seed always deals the same per-site sequence.
/// let a = FaultPlan::seeded(7);
/// let b = FaultPlan::seeded(7);
/// for _ in 0..64 {
///     assert_eq!(a.next("proxy.s2c"), b.next("proxy.s2c"));
/// }
/// ```
#[derive(Debug)]
pub struct FaultPlan {
    /// Seed for probabilistic draws; `None` = scripted sites only.
    seed: Option<u64>,
    sites: Mutex<BTreeMap<String, SiteState>>,
    /// Non-[`FaultAction::None`] actions dealt (telemetry for tests and
    /// the chaos bench).
    injected: AtomicU64,
}

impl FaultPlan {
    /// Site name: the tile persist path, after the temp file is written
    /// but before it renames over the live tile.
    pub const TILE_BEFORE_RENAME: &'static str = "persist.tile.before_rename";
    /// Site name: the tile persist path, after the rename but before
    /// the version index / cache publish.
    pub const TILE_AFTER_RENAME: &'static str = "persist.tile.after_rename";
    /// Site name: the sidecar-ledger write, before its rename.
    pub const LEDGER_BEFORE_RENAME: &'static str = "persist.ledger.before_rename";
    /// Site name: the sidecar-ledger write, after its rename.
    pub const LEDGER_AFTER_RENAME: &'static str = "persist.ledger.after_rename";
    /// Site name: the top of every ingest call — a [`FaultAction::StallMs`]
    /// here models a wedged writer (GC pause, stopped VM) and must make
    /// the lease self-fence before the next write.
    pub const INGEST_PAUSE: &'static str = "ingest.pause";
    /// Site name: proxy connection accept.
    pub const PROXY_ACCEPT: &'static str = "proxy.accept";
    /// Site name: proxy client→server byte stream (per forwarded chunk).
    pub const PROXY_C2S: &'static str = "proxy.c2s";
    /// Site name: proxy server→client byte stream (per forwarded chunk).
    pub const PROXY_S2C: &'static str = "proxy.s2c";

    /// An empty plan: every site answers [`FaultAction::None`] until
    /// scripted with [`FaultPlan::with`].
    pub fn scripted() -> FaultPlan {
        FaultPlan {
            seed: None,
            sites: Mutex::new(BTreeMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// A seeded probabilistic plan for socket sites: connections are
    /// refused or delayed at accept, and forwarded chunks suffer
    /// latency, stalls, truncation, or byte corruption with fixed
    /// probabilities. Persist sites stay quiet (crash faults are
    /// scripted, never random — a random crash schedule would make the
    /// recovery assertion unfalsifiable). The same seed deals the same
    /// per-site sequence on every run.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed: Some(seed),
            sites: Mutex::new(BTreeMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// Scripts `action` on the `nth` hit (0-based) of `site`; all other
    /// hits of the site keep their default behaviour.
    pub fn with(self, site: &str, nth: u64, action: FaultAction) -> FaultPlan {
        self.script(site, nth, action);
        self
    }

    /// [`FaultPlan::with`] for a plan already shared (e.g. behind the
    /// `Arc` a running [`ChaosProxy`] holds): scripts `action` on the
    /// `nth` hit of `site` in place.
    pub fn script(&self, site: &str, nth: u64, action: FaultAction) {
        self.sites
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(site.to_string())
            .or_default()
            .scripted
            .insert(nth, action);
    }

    /// Deals the next action for `site`, advancing its hit counter.
    pub fn next(&self, site: &str) -> FaultAction {
        let mut sites = self.sites.lock().unwrap_or_else(|e| e.into_inner());
        let state = sites.entry(site.to_string()).or_default();
        let hit = state.hits;
        state.hits += 1;
        let action = if let Some(action) = state.scripted.remove(&hit) {
            action
        } else if let Some(seed) = self.seed {
            if state.rng == 0 {
                // Avalanche the combined seed: a raw `(seed ^ hash) | 1`
                // would collide adjacent seeds (they differ only in the
                // bit the `| 1` forces). The `| 1` afterwards only dodges
                // the all-zero state this lazy init uses as "uninitialised".
                let mut mix = seed ^ crate::fnv1a(site.bytes());
                state.rng = splitmix64(&mut mix) | 1;
            }
            let r = splitmix64(&mut state.rng);
            let aux = splitmix64(&mut state.rng);
            draw(site, r, aux)
        } else {
            FaultAction::None
        };
        if action != FaultAction::None {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        action
    }

    /// Hits served for `site` so far.
    pub fn hits(&self, site: &str) -> u64 {
        self.sites
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(site)
            .map(|s| s.hits)
            .unwrap_or(0)
    }

    /// Total non-[`FaultAction::None`] actions dealt.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

/// The seeded distribution, per site kind.
fn draw(site: &str, r: u64, aux: u64) -> FaultAction {
    let pct = r % 100;
    match site {
        FaultPlan::PROXY_ACCEPT => match pct {
            0..=14 => FaultAction::Refuse,
            15..=29 => FaultAction::DelayMs(1 + aux % 15),
            _ => FaultAction::None,
        },
        FaultPlan::PROXY_C2S | FaultPlan::PROXY_S2C => match pct {
            0..=3 => FaultAction::DelayMs(1 + aux % 10),
            4..=5 => FaultAction::StallMs(SEEDED_STALL_MS),
            6..=7 => FaultAction::Truncate((aux % 64) as usize),
            8..=9 => FaultAction::Corrupt(aux as usize),
            _ => FaultAction::None,
        },
        _ => FaultAction::None,
    }
}

// ---------------------------------------------------------------------------
// The chaos TCP proxy.
// ---------------------------------------------------------------------------

/// How often proxy pump threads wake to check for shutdown.
const PUMP_TICK: Duration = Duration::from_millis(25);

/// Upstream connect timeout — a proxy whose upstream died must fail the
/// client fast, not hang it.
const UPSTREAM_CONNECT_TIMEOUT: Duration = Duration::from_millis(500);

/// An in-process chaos TCP proxy: forwards bytes between clients and
/// one upstream server, applying a [`FaultPlan`]'s socket faults.
///
/// Besides the plan, the proxy has a runtime kill switch
/// ([`ChaosProxy::set_refuse_all`]) so failover tests can take a
/// replica "down" and bring it back without rebinding ports.
pub struct ChaosProxy {
    addr: SocketAddr,
    /// Clone of the listener so shutdown can unblock the accept loop.
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    refuse_all: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    pumps: Arc<Mutex<Vec<JoinHandle<()>>>>,
    plan: Arc<FaultPlan>,
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral local port forwarding to
    /// `upstream`, consulting `plan` for faults.
    pub fn start(upstream: &str, plan: Arc<FaultPlan>) -> Result<ChaosProxy, CatalogError> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let listener_clone = listener.try_clone()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let refuse_all = Arc::new(AtomicBool::new(false));
        let pumps: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let upstream: SocketAddr = upstream
            .parse()
            .map_err(|_| CatalogError::Protocol(format!("bad upstream address '{upstream}'")))?;

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_refuse = Arc::clone(&refuse_all);
        let accept_pumps = Arc::clone(&pumps);
        let accept_plan = Arc::clone(&plan);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = stream else {
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                };
                if accept_refuse.load(Ordering::SeqCst) {
                    continue; // dropped: connection refused by fiat
                }
                match accept_plan.next(FaultPlan::PROXY_ACCEPT) {
                    FaultAction::Refuse | FaultAction::Crash | FaultAction::Truncate(_) => {
                        continue; // dropped before a byte flows
                    }
                    FaultAction::DelayMs(ms) | FaultAction::StallMs(ms) => {
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                    FaultAction::None | FaultAction::Corrupt(_) => {}
                }
                let Ok(server) = TcpStream::connect_timeout(&upstream, UPSTREAM_CONNECT_TIMEOUT)
                else {
                    continue; // upstream down: client sees a drop
                };
                let _ = client.set_nodelay(true);
                let _ = server.set_nodelay(true);
                let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) else {
                    continue;
                };
                let up = spawn_pump(
                    client,
                    server,
                    FaultPlan::PROXY_C2S,
                    Arc::clone(&accept_plan),
                    Arc::clone(&accept_shutdown),
                    Arc::clone(&accept_refuse),
                );
                let down = spawn_pump(
                    s2,
                    c2,
                    FaultPlan::PROXY_S2C,
                    Arc::clone(&accept_plan),
                    Arc::clone(&accept_shutdown),
                    Arc::clone(&accept_refuse),
                );
                let mut pumps = accept_pumps.lock().unwrap_or_else(|e| e.into_inner());
                // Reap finished pumps so long sweeps don't hoard handles.
                let mut live = Vec::with_capacity(pumps.len() + 2);
                for h in pumps.drain(..) {
                    if h.is_finished() {
                        let _ = h.join();
                    } else {
                        live.push(h);
                    }
                }
                *pumps = live;
                pumps.push(up);
                pumps.push(down);
            }
        });

        Ok(ChaosProxy {
            addr,
            listener: listener_clone,
            shutdown,
            refuse_all,
            accept_thread: Some(accept_thread),
            pumps,
            plan,
        })
    }

    /// The proxy's listening address (what clients connect to).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The plan this proxy consults.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }

    /// Runtime kill switch: while `true`, every new connection is
    /// dropped at accept and every live pump severs within one tick —
    /// the upstream looks dead. Failover tests take a replica down and
    /// bring it back with this, never rebinding ports.
    pub fn set_refuse_all(&self, refuse: bool) {
        self.refuse_all.store(refuse, Ordering::SeqCst);
    }

    /// Stops accepting, drains pump threads, closes the listener.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.listener.set_nonblocking(true);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let pumps = std::mem::take(&mut *self.pumps.lock().unwrap_or_else(|e| e.into_inner()));
        for handle in pumps {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop();
        }
    }
}

/// One forwarding direction: read chunks from `from`, consult the plan,
/// write to `to`. Any fault that breaks the stream shuts both sockets
/// down so the sibling pump exits too.
fn spawn_pump(
    mut from: TcpStream,
    mut to: TcpStream,
    site: &'static str,
    plan: Arc<FaultPlan>,
    stop: Arc<AtomicBool>,
    refuse: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let _ = from.set_read_timeout(Some(PUMP_TICK));
        let mut buf = [0u8; 8192];
        loop {
            if stop.load(Ordering::SeqCst) || refuse.load(Ordering::SeqCst) {
                break;
            }
            let n = match from.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => n,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    continue;
                }
                Err(_) => break,
            };
            let mut forward = n;
            let mut sever = false;
            match plan.next(site) {
                FaultAction::None => {}
                FaultAction::DelayMs(ms) | FaultAction::StallMs(ms) => {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                FaultAction::Truncate(k) => {
                    forward = k.min(n);
                    sever = true;
                }
                FaultAction::Corrupt(i) => {
                    buf[i % n] ^= 0x20;
                }
                FaultAction::Refuse | FaultAction::Crash => break,
            }
            if forward > 0 && to.write_all(&buf[..forward]).is_err() {
                break;
            }
            if sever {
                break;
            }
        }
        let _ = from.shutdown(Shutdown::Both);
        let _ = to.shutdown(Shutdown::Both);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_plan_fires_on_the_nth_hit_only() {
        let plan = FaultPlan::scripted().with("x", 2, FaultAction::Crash).with(
            "x",
            4,
            FaultAction::DelayMs(3),
        );
        let got: Vec<FaultAction> = (0..6).map(|_| plan.next("x")).collect();
        assert_eq!(
            got,
            vec![
                FaultAction::None,
                FaultAction::None,
                FaultAction::Crash,
                FaultAction::None,
                FaultAction::DelayMs(3),
                FaultAction::None,
            ]
        );
        assert_eq!(plan.hits("x"), 6);
        assert_eq!(plan.hits("y"), 0);
        assert_eq!(plan.injected(), 2);
    }

    #[test]
    fn seeded_plans_are_deterministic_per_site_and_vary_by_seed() {
        let a = FaultPlan::seeded(42);
        let b = FaultPlan::seeded(42);
        let c = FaultPlan::seeded(43);
        let seq = |p: &FaultPlan, site: &str| -> Vec<FaultAction> {
            (0..200).map(|_| p.next(site)).collect()
        };
        // Interleave site draws differently on `b` than `a`: per-site
        // streams must not care.
        let a_accept = seq(&a, FaultPlan::PROXY_ACCEPT);
        let a_s2c = seq(&a, FaultPlan::PROXY_S2C);
        let b_s2c: Vec<FaultAction> = (0..200)
            .map(|_| {
                let _ = b.next(FaultPlan::PROXY_ACCEPT);
                b.next(FaultPlan::PROXY_S2C)
            })
            .collect();
        let _ = a_accept;
        assert_eq!(a_s2c, b_s2c, "per-site streams are interleaving-invariant");
        assert_ne!(seq(&c, FaultPlan::PROXY_S2C), a_s2c, "seeds differ");
        // The distribution actually deals faults, and persist sites
        // stay quiet under seeding (crashes are scripted only).
        assert!(a.injected() > 0);
        let quiet = FaultPlan::seeded(42);
        for _ in 0..100 {
            assert_eq!(quiet.next(FaultPlan::TILE_BEFORE_RENAME), FaultAction::None);
        }
    }

    #[test]
    fn proxy_forwards_cleanly_without_faults_and_refuses_on_demand() {
        // A tiny echo server.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream = listener.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            for stream in listener.incoming().take(1) {
                let mut s = stream.unwrap();
                let mut buf = [0u8; 64];
                let n = s.read(&mut buf).unwrap();
                s.write_all(&buf[..n]).unwrap();
            }
        });
        let proxy =
            ChaosProxy::start(&upstream.to_string(), Arc::new(FaultPlan::scripted())).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"ping").unwrap();
        let mut back = [0u8; 4];
        c.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"ping");
        echo.join().unwrap();

        // Kill switch: new connections die (connect may succeed at the
        // TCP level, but the first read sees an immediate close).
        proxy.set_refuse_all(true);
        let mut refused = TcpStream::connect(proxy.addr()).unwrap();
        refused
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let mut one = [0u8; 1];
        assert!(matches!(refused.read(&mut one), Ok(0) | Err(_)));
        proxy.shutdown();
    }
}
