//! The catalog store: sharded ingest, persisted tiles, and the
//! concurrent query engine.
//!
//! ## Ownership rules
//!
//! - Every tile key hashes (stably) to one **shard**; a shard's mutex
//!   serialises the read-modify-write ingest cycle for the keys it owns.
//!   Ingest into different shards proceeds in parallel.
//! - Readers never take shard locks. They see tiles as immutable
//!   `Arc<Tile>` snapshots through the lock-striped LRU cache
//!   ([`crate::cache::TileCache`]), falling back to the on-disk artifact
//!   on a miss. Tile files are replaced atomically (write-temp + rename),
//!   so a reader observes a complete old or complete new tile, never a
//!   torn one.
//! - A racing reader that loads a just-superseded tile from disk cannot
//!   clobber the cache: inserts are version-guarded.
//!
//! Under these rules a query observes each tile at some merge version
//! that only moves forward — per-tile snapshot consistency, with
//! catalog-wide sample counts monotone across successive queries while
//! ingest is merge-only (the default [`IngestMode::Skip`]; a `Replace`
//! legitimately shrinks totals when the new product carries fewer
//! samples). The concurrent stress test (`tests/concurrent_stress.rs`)
//! pins both properties, plus ingest-order bit-invariance of query
//! results.
//!
//! Ingest is **idempotent**: every tile carries a ledger of the source
//! ids it holds, a per-layer sidecar ledger records completed ingests,
//! and [`IngestMode`] decides whether a re-ingested source is skipped
//! (byte-stable no-op, the default) or replaced (prior samples removed
//! first) — fleet re-runs refresh a catalog instead of doubling it.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use icesat_atl03::Beam;
use icesat_geo::{BoundingBox, GeoPoint, MapPoint, EPSG_3976};
use icesat_scene::SurfaceClass;
use rayon::prelude::*;
use seaice::artifact::Artifact;
use seaice::fleet::BeamProducts;
use seaice::freeboard::FreeboardProduct;
use seaice::stages::TrainedModels;
use seaice::FleetDriver;
use seaice_obs::{Counter, Histogram, MetricRegistry};
use seaice_products::{BeamThickness, SnowDepthModel, ThicknessRetrieval};
use sparklite::StageReport;

use crate::cache::{CacheStats, TileCache, TileKey};
use crate::grid::{GridConfig, MapRect, TileId, TileScope, TimeKey, TimeRange};
use crate::tile::{CatalogManifest, CellAggregate, LayerLedger, SampleRecord, Tile};
use crate::CatalogError;
use seaice::artifact::{ArtifactError, Codec, Reader, Writer};

/// Authoritative latest persisted state of one tile, kept in the index
/// so version floors and catalog-wide counters never need tile decodes.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    /// Latest persisted merge version.
    version: u64,
    /// Samples in that version.
    n_samples: u64,
    /// Thickness-bearing samples in that version (0 for tiles last
    /// persisted in format v1/v2 — the peek header defaults it).
    n_thickness: u64,
}

/// What one per-tile merge cycle did (summed into the ingest report).
#[derive(Debug, Clone, Copy, Default)]
struct MergeOutcome {
    written: usize,
    skipped: usize,
    replaced: usize,
}

/// Concurrency/caching knobs (the grid itself lives in [`GridConfig`]
/// and is persisted; these are per-process).
#[derive(Debug, Clone)]
pub struct CatalogOptions {
    /// Ingest shards (write-lock stripes over tile ownership).
    pub shards: usize,
    /// Tiles held by the read cache.
    pub cache_capacity: usize,
    /// Lock stripes of the read cache.
    pub cache_stripes: usize,
    /// Fault-injection plan ([`crate::fault::FaultPlan`]) threaded into
    /// the persist path; `None` (the default) keeps every hook a no-op
    /// branch on an absent option. Scripted crash actions make the
    /// hooked operation return [`CatalogError::FaultInjected`] mid
    /// flight — test harness only.
    pub fault: Option<Arc<crate::fault::FaultPlan>>,
    /// Metric registry the catalog records into. The default is a fresh
    /// registry private to this catalog; pass a shared clone to merge
    /// several components' metrics into one scrape (the served path does
    /// this: [`crate::server::CatalogServer`] registers its request
    /// counters and latency histograms into the catalog's registry).
    pub registry: MetricRegistry,
}

impl Default for CatalogOptions {
    fn default() -> Self {
        CatalogOptions {
            shards: 16,
            cache_capacity: 256,
            cache_stripes: 8,
            fault: None,
            registry: MetricRegistry::new(),
        }
    }
}

/// Pre-registered handles for the store's hot-path metrics, resolved
/// once at open so recording on the ingest path never touches the
/// registry's name map (a handle is a couple of `Arc`'d atomics).
struct StoreMetrics {
    ingest_calls: Counter,
    ingest_samples: Counter,
    ingest_skipped: Counter,
    stage_project_us: Histogram,
    stage_merge_us: Histogram,
    stage_persist_us: Histogram,
    stage_ledger_us: Histogram,
}

impl StoreMetrics {
    fn new(registry: &MetricRegistry) -> StoreMetrics {
        let stage = |s| registry.histogram_with("ingest_stage_us", &[("stage", s)]);
        StoreMetrics {
            ingest_calls: registry.counter("ingest_calls_total"),
            ingest_samples: registry.counter("ingest_samples_total"),
            ingest_skipped: registry.counter("ingest_samples_skipped_total"),
            stage_project_us: stage("project"),
            stage_merge_us: stage("merge"),
            stage_persist_us: stage("persist"),
            stage_ledger_us: stage("ledger"),
        }
    }
}

/// How an ingest call treats a source (`(granule, beam)`) the catalog
/// has seen before. Sources are identified by their stable id
/// ([`SampleRecord::source_id`]); both modes trust that id as content
/// identity — re-ingesting *different* data under the same granule and
/// beam is a [`IngestMode::Replace`] refresh, never a merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestMode {
    /// A source already ingested is left untouched — the re-run is a
    /// byte-stable no-op (tiles are not rewritten, versions do not
    /// move). The default: fleet re-runs cannot corrupt a catalog.
    #[default]
    Skip,
    /// A source's prior samples are removed (from every tile of the
    /// layer that holds them, including tiles the new product no longer
    /// reaches) before the new ones merge — re-ingest converges to the
    /// same queryable state as a fresh build from the new products.
    Replace,
}

/// What one ingest call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestReport {
    /// Samples written into tiles.
    pub n_samples: usize,
    /// Samples rejected because they fall outside the grid domain.
    pub n_out_of_domain: usize,
    /// Samples not written because their source was already ingested
    /// ([`IngestMode::Skip`]). When the per-layer ledger short-circuits
    /// the whole call, this counts the product's points (the
    /// out-of-domain split is unknown without projecting).
    pub n_skipped: usize,
    /// Prior samples removed before merging ([`IngestMode::Replace`]).
    pub n_replaced: usize,
    /// Distinct tiles written by this call.
    pub n_tiles: usize,
    /// Distinct temporal layers touched by this call.
    pub n_layers: usize,
}

impl IngestReport {
    /// Folds another report in. Sample-level dedup across calls is the
    /// store's job ([`IngestMode`]) and is already reflected in each
    /// report's counters; only `n_tiles`/`n_layers` remain per-call
    /// counts that add without deduplication.
    pub fn absorb(&mut self, other: &IngestReport) {
        self.n_samples += other.n_samples;
        self.n_out_of_domain += other.n_out_of_domain;
        self.n_skipped += other.n_skipped;
        self.n_replaced += other.n_replaced;
        self.n_tiles += other.n_tiles;
        self.n_layers += other.n_layers;
    }
}

/// Deterministic summary of the samples matched by a query.
///
/// All floating-point reductions run tile-key order → canonical sample
/// order, so two catalogs holding the same products return bit-identical
/// summaries regardless of ingest order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuerySummary {
    /// Samples matched.
    pub n_samples: usize,
    /// Matched samples per surface class.
    pub class_counts: [usize; 3],
    /// Matched ice (thick + thin) samples.
    pub n_ice: usize,
    /// Mean ice freeboard, metres (0 when no ice matched).
    pub mean_ice_freeboard_m: f64,
    /// Minimum freeboard over matched samples (0 when none matched).
    pub min_freeboard_m: f64,
    /// Maximum freeboard over matched samples (0 when none matched).
    pub max_freeboard_m: f64,
    /// Distinct spatial tiles that contributed at least one matched
    /// sample (a tile populated in several temporal layers counts once).
    pub n_tiles: usize,
    /// Distinct grid cells that contributed at least one matched sample
    /// (deduplicated across temporal layers, like `n_tiles`).
    pub n_cells: usize,
    /// Matched thickness-bearing samples (`thickness_sigma_m > 0`;
    /// format-v2-era samples and open water never bear thickness).
    pub n_thickness: usize,
    /// Unweighted mean thickness over bearing samples, metres (0 when
    /// none matched).
    pub mean_thickness_m: f64,
    /// Inverse-variance-weighted mean thickness over bearing samples,
    /// metres (0 when none matched).
    pub ivw_mean_thickness_m: f64,
    /// Combined 1-sigma of the IVW mean, `sqrt(1 / Σ wᵢ)` with
    /// `wᵢ = 1/σᵢ²`, metres (0 when no bearing samples matched).
    pub thickness_sigma_m: f64,
}

/// Per-tile partial reduction of a summary query — the unit the serve
/// path ships and merges.
///
/// A [`QuerySummary`] is defined as a deterministic two-level fold:
/// every tile reduces its matched samples (layers in chronological
/// order, samples in canonical order) into one `TilePartial`, and the
/// partials — sorted by tile id — fold left-to-right into the summary
/// ([`QuerySummary::from_partials`]). Because the fold is the *same
/// code* locally and in the client-side shard router, a query fanned
/// out over shard servers that partition the tiles returns bit-identical
/// results to the single-process answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TilePartial {
    /// The tile this partial reduces.
    pub tile: TileId,
    /// Matched samples in the tile (always > 0 — empty tiles emit no
    /// partial).
    pub n_samples: u64,
    /// Matched samples per surface class.
    pub class_counts: [u64; 3],
    /// Matched ice (thick + thin) samples.
    pub n_ice: u64,
    /// Sum of matched ice freeboard, metres (layers chronological,
    /// samples canonical — the reduction order contract).
    pub ice_sum_m: f64,
    /// Minimum freeboard over matched samples.
    pub min_freeboard_m: f64,
    /// Maximum freeboard over matched samples.
    pub max_freeboard_m: f64,
    /// Distinct grid cells with at least one matched sample
    /// (deduplicated across the tile's temporal layers).
    pub n_cells: u64,
    /// Matched thickness-bearing samples.
    pub t_n: u64,
    /// Sum of matched bearing thickness, metres (same reduction order
    /// as `ice_sum_m`).
    pub t_sum_m: f64,
    /// Sum of inverse-variance weights `1/σᵢ²` over bearing samples.
    pub t_w_sum: f64,
    /// Inverse-variance-weighted thickness sum `Σ Tᵢ/σᵢ²`.
    pub t_wt_sum: f64,
}

impl Codec for TilePartial {
    fn encode(&self, w: &mut Writer) {
        self.tile.encode(w);
        w.put_u64(self.n_samples);
        self.class_counts.encode(w);
        w.put_u64(self.n_ice);
        w.put_f64(self.ice_sum_m);
        w.put_f64(self.min_freeboard_m);
        w.put_f64(self.max_freeboard_m);
        w.put_u64(self.n_cells);
        w.put_u64(self.t_n);
        w.put_f64(self.t_sum_m);
        w.put_f64(self.t_w_sum);
        w.put_f64(self.t_wt_sum);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ArtifactError> {
        Ok(TilePartial {
            tile: TileId::decode(r)?,
            n_samples: r.take_u64()?,
            class_counts: <[u64; 3]>::decode(r)?,
            n_ice: r.take_u64()?,
            ice_sum_m: r.take_f64()?,
            min_freeboard_m: r.take_f64()?,
            max_freeboard_m: r.take_f64()?,
            n_cells: r.take_u64()?,
            t_n: r.take_u64()?,
            t_sum_m: r.take_f64()?,
            t_w_sum: r.take_f64()?,
            t_wt_sum: r.take_f64()?,
        })
    }
}

impl QuerySummary {
    /// Folds per-tile partials into the summary they define.
    ///
    /// The partials are sorted by tile id first, so any partition of the
    /// tiles (local, one server, many shards) folds in the same order
    /// and produces the same bits. Partials must cover disjoint tiles —
    /// the shard router enforces that via scope disjointness.
    pub fn from_partials(mut partials: Vec<TilePartial>) -> QuerySummary {
        partials.sort_unstable_by_key(|p| p.tile);
        let mut s = QuerySummary {
            n_samples: 0,
            class_counts: [0; 3],
            n_ice: 0,
            mean_ice_freeboard_m: 0.0,
            min_freeboard_m: f64::INFINITY,
            max_freeboard_m: f64::NEG_INFINITY,
            n_tiles: partials.len(),
            n_cells: 0,
            n_thickness: 0,
            mean_thickness_m: 0.0,
            ivw_mean_thickness_m: 0.0,
            thickness_sigma_m: 0.0,
        };
        let mut ice_sum = 0.0f64;
        let mut t_sum = 0.0f64;
        let mut t_w = 0.0f64;
        let mut t_wt = 0.0f64;
        for p in &partials {
            s.n_samples += p.n_samples as usize;
            for (mine, theirs) in s.class_counts.iter_mut().zip(&p.class_counts) {
                *mine += *theirs as usize;
            }
            s.n_ice += p.n_ice as usize;
            ice_sum += p.ice_sum_m;
            s.min_freeboard_m = s.min_freeboard_m.min(p.min_freeboard_m);
            s.max_freeboard_m = s.max_freeboard_m.max(p.max_freeboard_m);
            s.n_cells += p.n_cells as usize;
            s.n_thickness += p.t_n as usize;
            t_sum += p.t_sum_m;
            t_w += p.t_w_sum;
            t_wt += p.t_wt_sum;
        }
        if s.n_ice > 0 {
            s.mean_ice_freeboard_m = ice_sum / s.n_ice as f64;
        }
        if s.n_thickness > 0 {
            s.mean_thickness_m = t_sum / s.n_thickness as f64;
            s.ivw_mean_thickness_m = t_wt / t_w;
            s.thickness_sigma_m = (1.0 / t_w).sqrt();
        }
        if s.n_samples == 0 {
            s.min_freeboard_m = 0.0;
            s.max_freeboard_m = 0.0;
        }
        s
    }

    /// Internal-consistency invariants every reader snapshot must
    /// satisfy (asserted by the concurrent stress test).
    pub fn check_consistency(&self) -> Result<(), &'static str> {
        if self.class_counts.iter().sum::<usize>() != self.n_samples {
            return Err("class counts do not sum to sample count");
        }
        if self.class_counts[0] + self.class_counts[1] != self.n_ice {
            return Err("ice count inconsistent with class counts");
        }
        if self.n_samples > 0 {
            if self.min_freeboard_m > self.max_freeboard_m {
                return Err("min freeboard above max");
            }
            if self.n_ice > 0
                && (self.mean_ice_freeboard_m < self.min_freeboard_m
                    || self.mean_ice_freeboard_m > self.max_freeboard_m)
            {
                return Err("mean ice freeboard outside [min, max]");
            }
        }
        if self.n_cells > self.n_samples || self.n_tiles > self.n_cells.max(1) {
            return Err("cell/tile counts exceed samples");
        }
        if self.n_thickness > self.n_ice {
            return Err("more thickness-bearing samples than ice samples");
        }
        if self.n_thickness > 0
            && self.thickness_sigma_m.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        {
            return Err("bearing samples require a positive combined sigma");
        }
        if self.n_thickness == 0
            && (self.mean_thickness_m != 0.0
                || self.ivw_mean_thickness_m != 0.0
                || self.thickness_sigma_m != 0.0)
        {
            return Err("thickness stats must be zero without bearing samples");
        }
        Ok(())
    }
}

/// One aggregated grid cell of a composite (the gridded product row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSummary {
    /// Owning tile.
    pub tile: TileId,
    /// Row-major cell index within the tile.
    pub cell: u32,
    /// Cell centre, EPSG-3976 metres.
    pub center: MapPoint,
    /// Aggregates over the queried time range (chronological merge).
    pub agg: CellAggregate,
}

/// Catalog-wide counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogStats {
    /// Temporal layers present.
    pub n_layers: usize,
    /// Tiles present.
    pub n_tiles: usize,
    /// Total samples stored.
    pub n_samples: usize,
    /// Thickness-bearing samples stored (0 until a thickness product
    /// is ingested; tiles persisted before format v3 count 0).
    pub n_thickness: usize,
    /// Read-cache counters.
    pub cache: CacheStats,
}

/// The tiled, versioned, concurrently readable sea-ice product store.
///
/// **Write ownership.** Writers within one instance serialise through
/// per-shard locks and the authoritative version index; *across*
/// instances and processes, write ownership is coordinated by the
/// [`crate::lease`] writer-lease protocol (owner id + heartbeat mtime +
/// stale-lease takeover; specified in `docs/PROTOCOL.md` §4). Use
/// [`Catalog::create_writer`] / [`Catalog::open_writer`] to acquire the
/// directory's lease — exactly one leased writer exists at a time, a
/// losing contender gets the typed [`CatalogError::LeaseHeld`] error,
/// and a crashed writer's lease is taken over after its ttl without
/// corrupting the store (tile replacement is atomic and the version
/// index is rebuilt from tile headers on open). The unleased
/// [`Catalog::create`] / [`Catalog::open`] constructors remain for
/// read-only instances and single-process embedded use, where the
/// caller owns the no-second-writer guarantee. Any number of threads
/// may share one instance (`&Catalog` is `Sync`).
///
/// ```
/// use seaice_catalog::{Catalog, GridConfig, TimeRange};
/// use icesat_geo::MapPoint;
///
/// let dir = std::env::temp_dir().join(format!("catalog_doc_{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let grid = GridConfig::around(MapPoint::new(0.0, -1_000_000.0), 50_000.0);
/// let catalog = Catalog::create(&dir, grid).unwrap();
/// let whole = catalog
///     .query_rect(&catalog.grid().domain(), TimeRange::all())
///     .unwrap();
/// assert_eq!(whole.n_samples, 0); // empty store, well-defined answer
/// # let _ = std::fs::remove_dir_all(&dir);
/// ```
pub struct Catalog {
    grid: GridConfig,
    dir: PathBuf,
    tiles_dir: PathBuf,
    ledgers_dir: PathBuf,
    /// Authoritative map of every persisted tile to its latest merge
    /// version and size (time-major key order). Writers bump entries
    /// under their shard lock after the atomic file rename, so an index
    /// read establishes a floor no subsequent tile observation may fall
    /// below — the guard that makes stale cache resurrection harmless.
    index: RwLock<BTreeMap<TileKey, IndexEntry>>,
    /// Per-layer completed-source sets, mirroring the on-disk sidecar
    /// ledgers (`ledgers/YYYYMM.ledger`) — the [`IngestMode::Skip`]
    /// fast path. Entries are only ever added, and only after every
    /// tile merge of the recording ingest succeeded.
    layer_sources: RwLock<BTreeMap<TimeKey, BTreeSet<u64>>>,
    cache: TileCache,
    shard_locks: Vec<Mutex<()>>,
    /// The writer lease, when this instance was opened as a leased
    /// writer. Heartbeaten on ingest; released on drop.
    lease: Option<crate::lease::WriterLease>,
    /// Fault-injection plan from [`CatalogOptions::fault`]; `None` in
    /// production.
    fault: Option<Arc<crate::fault::FaultPlan>>,
    /// Metric registry from [`CatalogOptions::registry`] — shared with
    /// the server/clients when they are handed a clone.
    registry: MetricRegistry,
    /// Hot-path metric handles, pre-registered at open.
    metrics: StoreMetrics,
}

impl Catalog {
    /// Creates (or idempotently re-opens) a catalog at `dir` with the
    /// default options.
    pub fn create(dir: &Path, grid: GridConfig) -> Result<Catalog, CatalogError> {
        Catalog::create_with(dir, grid, CatalogOptions::default())
    }

    /// Creates a catalog at `dir`. If a manifest already exists its grid
    /// must match `grid` exactly (tile addresses are grid-relative).
    pub fn create_with(
        dir: &Path,
        grid: GridConfig,
        options: CatalogOptions,
    ) -> Result<Catalog, CatalogError> {
        std::fs::create_dir_all(dir.join("tiles"))?;
        let manifest_path = dir.join("catalog.manifest");
        if manifest_path.exists() {
            let manifest = CatalogManifest::load(&manifest_path)?;
            if manifest.grid != grid {
                return Err(CatalogError::GridMismatch);
            }
        } else {
            CatalogManifest { grid }.save(&manifest_path)?;
        }
        Catalog::assemble(dir, grid, options)
    }

    /// [`Catalog::create_with`], acquiring the directory's writer lease
    /// first. Fails with [`CatalogError::LeaseHeld`] while another
    /// writer's lease is fresh; takes over a stale one.
    pub fn create_writer(
        dir: &Path,
        grid: GridConfig,
        options: CatalogOptions,
        lease: &crate::lease::LeaseOptions,
    ) -> Result<Catalog, CatalogError> {
        let mut held = crate::lease::WriterLease::acquire(dir, lease)?;
        let mut catalog = Catalog::create_with(dir, grid, options)?;
        held.attach_metrics(catalog.registry());
        catalog.lease = Some(held);
        Ok(catalog)
    }

    /// Opens an existing catalog, taking the grid from its manifest.
    pub fn open(dir: &Path) -> Result<Catalog, CatalogError> {
        Catalog::open_with(dir, CatalogOptions::default())
    }

    /// [`Catalog::open`] with explicit options.
    pub fn open_with(dir: &Path, options: CatalogOptions) -> Result<Catalog, CatalogError> {
        let manifest = CatalogManifest::load(&dir.join("catalog.manifest"))?;
        Catalog::assemble(dir, manifest.grid, options)
    }

    /// [`Catalog::open_with`], acquiring the directory's writer lease
    /// first (see [`Catalog::create_writer`]).
    pub fn open_writer(
        dir: &Path,
        options: CatalogOptions,
        lease: &crate::lease::LeaseOptions,
    ) -> Result<Catalog, CatalogError> {
        let mut held = crate::lease::WriterLease::acquire(dir, lease)?;
        let mut catalog = Catalog::open_with(dir, options)?;
        held.attach_metrics(catalog.registry());
        catalog.lease = Some(held);
        Ok(catalog)
    }

    fn assemble(
        dir: &Path,
        grid: GridConfig,
        options: CatalogOptions,
    ) -> Result<Catalog, CatalogError> {
        let tiles_dir = dir.join("tiles");
        let mut index = BTreeMap::new();
        for entry in std::fs::read_dir(&tiles_dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(key) = parse_tile_filename(&name) {
                let header = Tile::peek(&entry.path())?;
                if header.id != key.tile || header.time != key.time {
                    return Err(CatalogError::Corrupt("tile file key mismatch"));
                }
                index.insert(
                    key,
                    IndexEntry {
                        version: header.version,
                        n_samples: header.n_samples,
                        n_thickness: header.n_thickness,
                    },
                );
            }
        }
        // Sidecar ledgers are a cache, not ground truth: a missing
        // directory, an unreadable file, or a key mismatch only costs
        // the skip fast path (the per-tile ledgers remain
        // authoritative), so none of them fails the open.
        let ledgers_dir = dir.join("ledgers");
        let mut layer_sources: BTreeMap<TimeKey, BTreeSet<u64>> = BTreeMap::new();
        if ledgers_dir.is_dir() {
            for entry in std::fs::read_dir(&ledgers_dir)? {
                let entry = entry?;
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if let Some(time) = parse_ledger_filename(&name) {
                    match LayerLedger::load(&entry.path()) {
                        Ok(ledger) if ledger.time == time => {
                            layer_sources.insert(time, ledger.sources.into_iter().collect());
                        }
                        // Corrupt or mismatched sidecar: ignore it; the
                        // next completed ingest rewrites it atomically.
                        Ok(_) | Err(_) => {}
                    }
                }
            }
        }
        let metrics = StoreMetrics::new(&options.registry);
        Ok(Catalog {
            grid,
            dir: dir.to_path_buf(),
            tiles_dir,
            ledgers_dir,
            index: RwLock::new(index),
            layer_sources: RwLock::new(layer_sources),
            cache: TileCache::new(options.cache_capacity, options.cache_stripes),
            shard_locks: (0..options.shards.max(1)).map(|_| Mutex::new(())).collect(),
            lease: None,
            fault: options.fault,
            registry: options.registry,
            metrics,
        })
    }

    /// Consults the injected fault plan (if any) at a persist-path site.
    /// Latency actions sleep in place; a scripted crash abandons the
    /// operation by returning [`CatalogError::FaultInjected`], modelling
    /// a process death at exactly that point. Socket-only actions
    /// (refuse/truncate/corrupt) are meaningless here and pass through.
    fn fault_hook(&self, site: &'static str) -> Result<(), CatalogError> {
        use crate::fault::FaultAction;
        let Some(plan) = &self.fault else {
            return Ok(());
        };
        match plan.next(site) {
            FaultAction::DelayMs(ms) | FaultAction::StallMs(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(())
            }
            FaultAction::Crash => Err(CatalogError::FaultInjected(site)),
            FaultAction::None
            | FaultAction::Refuse
            | FaultAction::Truncate(_)
            | FaultAction::Corrupt(_) => Ok(()),
        }
    }

    /// The writer-lease record this instance holds, if it was opened as
    /// a leased writer.
    pub fn lease(&self) -> Option<&crate::lease::LeaseRecord> {
        self.lease.as_ref().map(|l| l.record())
    }

    /// The metric registry this catalog records into (see
    /// [`CatalogOptions::registry`]). The served path shares it: a
    /// [`crate::server::CatalogServer`] clones this registry so one
    /// `Introspect` scrape covers serving, cache, ingest, and lease
    /// metrics together.
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    /// Full observability snapshot as sorted Prometheus-style text: the
    /// registry's exposition plus store-derived lines computed at scrape
    /// time — tile-cache hit/miss/eviction counters and index-level
    /// totals. Parse with [`seaice_obs::parse_exposition`]. The counter
    /// lines are monotone non-decreasing across successive scrapes (the
    /// cache counters are monotone atomics; `store_tiles` /
    /// `store_samples` are gauges that can shrink under
    /// [`IngestMode::Replace`]).
    pub fn expose(&self) -> String {
        let text = self.registry.expose();
        let mut lines: Vec<&str> = text.lines().collect();
        let cache = self.cache.stats();
        let index = self.index.read().unwrap_or_else(|e| e.into_inner());
        let n_tiles = index.len();
        let n_samples: u64 = index.values().map(|e| e.n_samples).sum();
        drop(index);
        let derived = [
            format!("store_samples {n_samples}"),
            format!("store_tiles {n_tiles}"),
            format!("tile_cache_evictions_total {}", cache.evictions),
            format!("tile_cache_hits_total {}", cache.hits),
            format!("tile_cache_misses_total {}", cache.misses),
        ];
        for line in &derived {
            lines.push(line);
        }
        lines.sort_unstable();
        let mut out = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
        for line in lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// The grid tiles are addressed with.
    pub fn grid(&self) -> &GridConfig {
        &self.grid
    }

    /// The catalog's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Temporal layers present, chronological.
    pub fn layers(&self) -> Vec<TimeKey> {
        let index = self.index.read().unwrap_or_else(|e| e.into_inner());
        let mut layers: Vec<TimeKey> = index.keys().map(|k| k.time).collect();
        layers.dedup();
        layers
    }

    // -- Ingest --------------------------------------------------------

    /// Ingests one beam's freeboard product under an ATL03-style granule
    /// id (its leading `YYYYMM` selects the temporal layer), in the
    /// default [`IngestMode::Skip`] — re-ingesting a `(granule, beam)`
    /// the catalog already holds is an idempotent, byte-stable no-op.
    /// Projection of every point through EPSG-3976 runs rayon-parallel;
    /// per-tile merges run parallel across shards.
    pub fn ingest_beam(
        &self,
        granule_id: &str,
        beam_index: usize,
        product: &FreeboardProduct,
    ) -> Result<IngestReport, CatalogError> {
        self.ingest_beam_with(granule_id, beam_index, product, IngestMode::Skip)
    }

    /// [`Catalog::ingest_beam`] with an explicit re-ingest policy.
    ///
    /// Samples land without thickness (`thickness_m = thickness_sigma_m
    /// = 0`); use [`Catalog::ingest_thickness_beam_with`] to land a
    /// thickness-enriched product under the same source identity.
    pub fn ingest_beam_with(
        &self,
        granule_id: &str,
        beam_index: usize,
        product: &FreeboardProduct,
        mode: IngestMode,
    ) -> Result<IngestReport, CatalogError> {
        let grid = self.grid;
        let points = &product.points;
        self.ingest_source(granule_id, beam_index, points.len(), mode, |i, source| {
            let p = points[i];
            let m = EPSG_3976.forward(GeoPoint::new(p.lat, p.lon));
            grid.locate(m).map(|(tile, cell)| {
                (
                    tile,
                    SampleRecord {
                        source,
                        along_track_m: p.along_track_m,
                        lat: p.lat,
                        lon: p.lon,
                        x_m: m.x,
                        y_m: m.y,
                        freeboard_m: p.freeboard_m,
                        class: p.class,
                        cell,
                        thickness_m: 0.0,
                        thickness_sigma_m: 0.0,
                    },
                )
            })
        })
    }

    /// Ingests one beam's thickness-enriched product
    /// ([`BeamThickness`], from [`seaice_products::enrich_fleet`]) in
    /// the default [`IngestMode::Skip`]. The source identity is the
    /// same `(granule, beam)` id the plain freeboard ingest uses, so a
    /// catalog already holding the freeboard-only samples skips the
    /// enriched ones — re-land them with
    /// [`Catalog::ingest_thickness_beam_with`] and
    /// [`IngestMode::Replace`], which upgrades the source in place.
    pub fn ingest_thickness_beam(
        &self,
        beam: &BeamThickness,
    ) -> Result<IngestReport, CatalogError> {
        self.ingest_thickness_beam_with(beam, IngestMode::Skip)
    }

    /// [`Catalog::ingest_thickness_beam`] with an explicit re-ingest
    /// policy. Ice samples carry `(thickness_m, thickness_sigma_m)`
    /// from the hydrostatic retrieval; open-water samples land with
    /// both zero (not thickness-bearing), exactly as
    /// [`seaice_products::ProductSet`] derives them.
    pub fn ingest_thickness_beam_with(
        &self,
        beam: &BeamThickness,
        mode: IngestMode,
    ) -> Result<IngestReport, CatalogError> {
        let grid = self.grid;
        let points = &beam.points;
        self.ingest_source(
            &beam.granule_id,
            beam.beam.index(),
            points.len(),
            mode,
            |i, source| {
                let p = &points[i];
                let m = EPSG_3976.forward(GeoPoint::new(p.lat, p.lon));
                grid.locate(m).map(|(tile, cell)| {
                    (
                        tile,
                        SampleRecord {
                            source,
                            along_track_m: p.along_track_m,
                            lat: p.lat,
                            lon: p.lon,
                            x_m: m.x,
                            y_m: m.y,
                            freeboard_m: p.freeboard_m,
                            class: p.class,
                            cell,
                            thickness_m: p.thickness_m,
                            thickness_sigma_m: p.thickness_sigma_m,
                        },
                    )
                })
            },
        )
    }

    /// Shared ingest spine: lease heartbeat, the sidecar-ledger skip
    /// fast path, rayon projection fan-out through `locate`, grouped
    /// per-tile merges, the `Replace` sweep, and the completed-source
    /// record — everything except how a point becomes a
    /// [`SampleRecord`].
    fn ingest_source(
        &self,
        granule_id: &str,
        beam_index: usize,
        n_points: usize,
        mode: IngestMode,
        locate: impl Fn(usize, u64) -> Option<(TileId, SampleRecord)> + Sync,
    ) -> Result<IngestReport, CatalogError> {
        // Injected pause first, so a scripted stall longer than the
        // lease ttl is caught by the heartbeat below: the writer
        // self-fences with `LeaseLost` before touching any tile.
        self.fault_hook(crate::fault::FaultPlan::INGEST_PAUSE)?;
        // A leased writer proves ownership (and self-fences when it
        // cannot) before every batch.
        if let Some(lease) = &self.lease {
            lease.heartbeat_if_due()?;
        }
        self.metrics.ingest_calls.inc();
        let time = TimeKey::from_granule_id(granule_id)?;
        let source = SampleRecord::source_id(granule_id, beam_index);
        // Skip fast path: the layer's sidecar ledger records completed
        // ingests, so a whole re-run short-circuits before projecting a
        // single point — no tile is touched, no file rewritten.
        if mode == IngestMode::Skip && self.layer_has_source(time, source) {
            self.metrics.ingest_skipped.add(n_points as u64);
            return Ok(IngestReport {
                n_skipped: n_points,
                ..IngestReport::default()
            });
        }
        // A Replace invalidates the completed-ingest record up front:
        // if it crashes partway, the layer honestly reads as incomplete
        // for this source (re-running the Replace heals it — Skip
        // cannot, since per-tile ledgers intentionally skip the tiles
        // that still hold the old samples).
        if mode == IngestMode::Replace {
            self.unrecord_layer_source(time, source)?;
        }

        // Project + locate every sample (pure, order-preserving, parallel).
        let stage_t0 = Instant::now();
        let located: Vec<Option<(TileId, SampleRecord)>> = (0..n_points)
            .into_par_iter()
            .map(|i| locate(i, source))
            .collect();
        self.metrics.stage_project_us.record(stage_t0.elapsed());

        // Group by destination tile.
        let mut groups: BTreeMap<TileId, Vec<SampleRecord>> = BTreeMap::new();
        let mut n_out = 0usize;
        for slot in located {
            match slot {
                Some((tile, sample)) => {
                    groups.entry(tile).or_default().push(sample);
                }
                None => n_out += 1,
            }
        }

        // Apply merges, parallel across tiles (shard locks serialise
        // same-shard keys).
        let groups: Vec<(TileId, Vec<SampleRecord>)> = groups.into_iter().collect();
        // The merge stage's wall clock covers the whole fan-out; the
        // per-tile persist histogram below it carves out the disk share.
        let stage_t0 = Instant::now();
        let results: Vec<Result<MergeOutcome, CatalogError>> = (0..groups.len())
            .into_par_iter()
            .map(|i| {
                let (tile, batch) = &groups[i];
                self.apply_merge(TileKey { time, tile: *tile }, batch, source, mode)
            })
            .collect();
        self.metrics.stage_merge_us.record(stage_t0.elapsed());
        let mut n_samples = 0usize;
        let mut n_skipped = 0usize;
        let mut n_replaced = 0usize;
        let mut n_tiles = 0usize;
        for r in results {
            let outcome = r?;
            n_samples += outcome.written;
            n_skipped += outcome.skipped;
            n_replaced += outcome.replaced;
            n_tiles += usize::from(outcome.written > 0);
        }
        // Replace must also clear the source out of tiles the *new*
        // product no longer reaches (a perturbed track shifts samples
        // across tile boundaries), or stale samples would linger there.
        // The sweep runs parallel like the merges; most tiles answer
        // `has_source = false` from their ledger and are left alone.
        if mode == IngestMode::Replace {
            let touched: BTreeSet<TileId> = groups.iter().map(|(t, _)| *t).collect();
            let sweep: Vec<TileKey> = self
                .keys_in(TimeRange::only(time), None, &TileScope::all())
                .into_iter()
                .filter(|key| !touched.contains(&key.tile))
                .collect();
            let removed: Vec<Result<usize, CatalogError>> = (0..sweep.len())
                .into_par_iter()
                .map(|i| self.apply_remove(sweep[i], source))
                .collect();
            for r in removed {
                n_replaced += r?;
            }
        }
        // Record the completed ingest in the sidecar ledger last, so a
        // crash anywhere above leaves the source unrecorded and the next
        // ingest heals the partial state tile by tile.
        let stage_t0 = Instant::now();
        self.record_layer_source(time, source)?;
        self.metrics.stage_ledger_us.record(stage_t0.elapsed());
        self.metrics.ingest_samples.add(n_samples as u64);
        self.metrics.ingest_skipped.add(n_skipped as u64);
        Ok(IngestReport {
            n_samples,
            n_out_of_domain: n_out,
            n_skipped,
            n_replaced,
            n_tiles,
            n_layers: usize::from(!groups.is_empty()),
        })
    }

    /// Ingests a fleet run's per-beam products in the default
    /// [`IngestMode::Skip`] (idempotent across fleet re-runs).
    pub fn ingest_products(&self, products: &[BeamProducts]) -> Result<IngestReport, CatalogError> {
        self.ingest_products_with(products, IngestMode::Skip)
    }

    /// [`Catalog::ingest_products`] with an explicit re-ingest policy.
    pub fn ingest_products_with(
        &self,
        products: &[BeamProducts],
        mode: IngestMode,
    ) -> Result<IngestReport, CatalogError> {
        let mut report = IngestReport::default();
        for p in products {
            let r = self.ingest_beam_with(&p.granule_id, p.beam.index(), &p.freeboard, mode)?;
            report.absorb(&r);
        }
        Ok(report)
    }

    /// Ingests a fleet run's thickness-enriched per-beam products in
    /// the default [`IngestMode::Skip`] (idempotent across re-runs).
    pub fn ingest_thickness_products(
        &self,
        beams: &[BeamThickness],
    ) -> Result<IngestReport, CatalogError> {
        self.ingest_thickness_products_with(beams, IngestMode::Skip)
    }

    /// [`Catalog::ingest_thickness_products`] with an explicit
    /// re-ingest policy.
    pub fn ingest_thickness_products_with(
        &self,
        beams: &[BeamThickness],
        mode: IngestMode,
    ) -> Result<IngestReport, CatalogError> {
        let mut report = IngestReport::default();
        for b in beams {
            let r = self.ingest_thickness_beam_with(b, mode)?;
            report.absorb(&r);
        }
        Ok(report)
    }

    /// The sources whose ingest into `time` completed, per the sidecar
    /// ledger (sorted). Absence only means the fast path is cold — the
    /// per-tile ledgers remain the ground truth.
    pub fn layer_ledger(&self, time: TimeKey) -> Vec<u64> {
        self.layer_sources
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&time)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    fn layer_has_source(&self, time: TimeKey, source: u64) -> bool {
        self.layer_sources
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&time)
            .is_some_and(|s| s.contains(&source))
    }

    /// Records a completed ingest in the per-layer sidecar ledger:
    /// in-memory set first, then an atomic file replace. Serialised by
    /// the write lock; a no-op when the source is already recorded.
    fn record_layer_source(&self, time: TimeKey, source: u64) -> Result<(), CatalogError> {
        let mut map = self
            .layer_sources
            .write()
            .unwrap_or_else(|e| e.into_inner());
        let set = map.entry(time).or_default();
        if !set.insert(source) {
            return Ok(());
        }
        let ledger = LayerLedger {
            time,
            sources: set.iter().copied().collect(),
        };
        self.write_ledger_file(&ledger)
    }

    /// Drops a source from the completed-ingest sidecar (the first step
    /// of a `Replace`): while the replace is in flight the layer is not
    /// complete for this source, and a crash must leave it reading that
    /// way. A no-op when the source was never recorded.
    fn unrecord_layer_source(&self, time: TimeKey, source: u64) -> Result<(), CatalogError> {
        let mut map = self
            .layer_sources
            .write()
            .unwrap_or_else(|e| e.into_inner());
        let Some(set) = map.get_mut(&time) else {
            return Ok(());
        };
        if !set.remove(&source) {
            return Ok(());
        }
        let ledger = LayerLedger {
            time,
            sources: set.iter().copied().collect(),
        };
        self.write_ledger_file(&ledger)
    }

    /// Installs a whole layer ledger (compaction's bulk path).
    pub(crate) fn install_layer_ledger(
        &self,
        time: TimeKey,
        sources: BTreeSet<u64>,
    ) -> Result<(), CatalogError> {
        if sources.is_empty() {
            return Ok(());
        }
        let mut map = self
            .layer_sources
            .write()
            .unwrap_or_else(|e| e.into_inner());
        let set = map.entry(time).or_default();
        set.extend(sources.iter().copied());
        let ledger = LayerLedger {
            time,
            sources: set.iter().copied().collect(),
        };
        self.write_ledger_file(&ledger)
    }

    fn write_ledger_file(&self, ledger: &LayerLedger) -> Result<(), CatalogError> {
        std::fs::create_dir_all(&self.ledgers_dir)?;
        let path = self.ledgers_dir.join(format!(
            "{:04}{:02}.ledger",
            ledger.time.year, ledger.time.month
        ));
        let tmp = path.with_extension("ledger.tmp");
        std::fs::write(&tmp, ledger.to_bytes())?;
        // Crash here: tiles hold the source but the sidecar never
        // records it — the next Skip ingest redoes the (idempotent)
        // merges tile by tile and rewrites the sidecar.
        self.fault_hook(crate::fault::FaultPlan::LEDGER_BEFORE_RENAME)?;
        std::fs::rename(&tmp, &path)?;
        self.fault_hook(crate::fault::FaultPlan::LEDGER_AFTER_RENAME)?;
        Ok(())
    }

    /// One read-modify-write cycle for one tile, serialised per shard.
    ///
    /// The merge base is chosen against the authoritative index version,
    /// never trusted from the cache alone: a cached snapshot is only
    /// reused when its version matches the index exactly, otherwise the
    /// on-disk tile (which the shard lock makes this writer's private
    /// state) is reloaded. A stale cache entry — e.g. one resurrected by
    /// a racing reader after the fresh entry was LRU-evicted — can
    /// therefore never become a merge base and lose updates.
    ///
    /// The per-tile ledger decides what `mode` does here: under `Skip` a
    /// tile already holding `source` is left untouched (not even
    /// rewritten — byte stability is the contract); under `Replace` the
    /// source's prior samples are dropped before the batch merges.
    fn apply_merge(
        &self,
        key: TileKey,
        batch: &[SampleRecord],
        source: u64,
        mode: IngestMode,
    ) -> Result<MergeOutcome, CatalogError> {
        let shard = (key.stable_hash() % self.shard_locks.len() as u64) as usize;
        let _own = self.shard_locks[shard]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let expected = self.indexed_version(&key);
        let mut tile = match expected {
            None => Tile::new(key.tile, key.time),
            Some(version) => match self.cache.get(&key) {
                Some(hit) if hit.version == version => (*hit).clone(),
                _ => {
                    let tile = Tile::load(&self.tile_path(&key))?;
                    if tile.id != key.tile || tile.time != key.time || tile.version != version {
                        return Err(CatalogError::Corrupt("tile file behind its index entry"));
                    }
                    tile
                }
            },
        };
        let mut outcome = MergeOutcome::default();
        match mode {
            IngestMode::Skip if tile.has_source(source) => {
                outcome.skipped = batch.len();
                return Ok(outcome);
            }
            IngestMode::Skip => {
                tile.merge(batch);
                outcome.written = batch.len();
            }
            IngestMode::Replace => {
                guard_not_archived(&tile, source)?;
                outcome.replaced = tile.replace_source(source, batch);
                outcome.written = batch.len();
            }
        }
        self.publish(key, tile).map(|()| outcome)
    }

    /// Removes `source` from one tile (the `Replace` sweep), a no-op
    /// when the tile never held it.
    fn apply_remove(&self, key: TileKey, source: u64) -> Result<usize, CatalogError> {
        let shard = (key.stable_hash() % self.shard_locks.len() as u64) as usize;
        let _own = self.shard_locks[shard]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let Some(version) = self.indexed_version(&key) else {
            return Ok(0);
        };
        let mut tile = match self.cache.get(&key) {
            Some(hit) if hit.version == version => (*hit).clone(),
            _ => {
                let tile = Tile::load(&self.tile_path(&key))?;
                if tile.id != key.tile || tile.time != key.time || tile.version != version {
                    return Err(CatalogError::Corrupt("tile file behind its index entry"));
                }
                tile
            }
        };
        if !tile.has_source(source) {
            return Ok(0);
        }
        guard_not_archived(&tile, source)?;
        let removed = tile.replace_source(source, &[]);
        self.publish(key, tile)?;
        Ok(removed)
    }

    /// Persists a modified tile and publishes it: file rename, then
    /// index entry, then cache install. The cache thus never serves a
    /// version the index has not recorded, which keeps index-derived
    /// totals (`stats`) an upper bound on anything a reader has already
    /// observed. Callers hold the key's shard lock.
    fn publish(&self, key: TileKey, tile: Tile) -> Result<(), CatalogError> {
        self.persist(&key, &tile)?;
        let entry = IndexEntry {
            version: tile.version,
            n_samples: tile.samples().len() as u64,
            n_thickness: tile.n_thickness(),
        };
        self.index
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, entry);
        self.cache.insert(key, Arc::new(tile));
        Ok(())
    }

    /// Installs a freshly built tile into an empty slot (compaction's
    /// write path). Fails if the key already exists — compaction always
    /// writes into a fresh directory.
    pub(crate) fn install_tile(&self, key: TileKey, tile: Tile) -> Result<(), CatalogError> {
        if let Some(lease) = &self.lease {
            lease.heartbeat_if_due()?;
        }
        let shard = (key.stable_hash() % self.shard_locks.len() as u64) as usize;
        let _own = self.shard_locks[shard]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if self.indexed_version(&key).is_some() {
            return Err(CatalogError::Corrupt("install over an existing tile"));
        }
        self.publish(key, tile)
    }

    /// Every persisted tile key, time-major order (compaction's scan).
    pub(crate) fn all_keys(&self) -> Vec<TileKey> {
        self.keys_in(TimeRange::all(), None, &TileScope::all())
    }

    /// The latest persisted version of a tile per the index.
    fn indexed_version(&self, key: &TileKey) -> Option<u64> {
        self.index
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .map(|e| e.version)
    }

    fn tile_path(&self, key: &TileKey) -> PathBuf {
        self.tiles_dir.join(format!(
            "{:04}{:02}_{}.tile",
            key.time.year,
            key.time.month,
            key.tile.quadkey()
        ))
    }

    /// Atomic tile replacement: write a temp file, then rename over the
    /// final path, so concurrent readers see a complete old or new tile.
    fn persist(&self, key: &TileKey, tile: &Tile) -> Result<(), CatalogError> {
        let t0 = Instant::now();
        let path = self.tile_path(key);
        let tmp = path.with_extension("tile.tmp");
        std::fs::write(&tmp, tile.to_bytes())?;
        // Crash here: an orphaned `.tile.tmp` and the old tile intact.
        self.fault_hook(crate::fault::FaultPlan::TILE_BEFORE_RENAME)?;
        std::fs::rename(&tmp, &path)?;
        // Crash here: the new file is on disk but the index/cache bump
        // never happens — reopen must rebuild the same state from the
        // renamed file alone.
        self.fault_hook(crate::fault::FaultPlan::TILE_AFTER_RENAME)?;
        // Only completed persists are recorded: a fault-injected abort
        // models a process death, where no one is left to observe.
        self.metrics.stage_persist_us.record(t0.elapsed());
        Ok(())
    }

    /// Loads a tile snapshot through the cache (disk on miss), `None`
    /// when the index has never seen the tile.
    ///
    /// The index version read first is a floor: a cached snapshot below
    /// it is stale (resurrected by a racing reader after eviction) and
    /// is reloaded from disk. The file rename happens before the index
    /// bump, so a disk read started after the index read always observes
    /// at least the floor version — below it is corruption.
    pub(crate) fn load_tile(&self, key: &TileKey) -> Result<Option<Arc<Tile>>, CatalogError> {
        let Some(floor) = self.indexed_version(key) else {
            return Ok(None);
        };
        if let Some(hit) = self.cache.get(key) {
            if hit.version >= floor {
                return Ok(Some(hit));
            }
        }
        let tile = Tile::load(&self.tile_path(key))?;
        if tile.id != key.tile || tile.time != key.time {
            return Err(CatalogError::Corrupt("tile file key mismatch"));
        }
        if tile.version < floor {
            return Err(CatalogError::Corrupt("tile file behind its index entry"));
        }
        // A disk read can observe a rename an instant before the writer
        // publishes the matching index entry; wait for the index to
        // catch up so every snapshot handed out is already covered by a
        // subsequent `stats()` total. The writer's only step between
        // rename and publish is an in-memory map insert, so this is a
        // micro-wait; the bound guards against a corrupted store.
        let mut spins = 0u32;
        while self.indexed_version(key).unwrap_or(0) < tile.version {
            spins += 1;
            if spins > 1_000_000 {
                return Err(CatalogError::Corrupt("index never caught up to tile file"));
            }
            std::thread::yield_now();
        }
        let tile = Arc::new(tile);
        self.cache.insert(*key, Arc::clone(&tile));
        Ok(Some(tile))
    }

    /// Index snapshot of keys in `time`, optionally restricted to tiles
    /// in `candidates` (sorted, deduplicated) and to `scope`.
    fn keys_in(
        &self,
        time: TimeRange,
        candidates: Option<&[TileId]>,
        scope: &TileScope,
    ) -> Vec<TileKey> {
        let index = self.index.read().unwrap_or_else(|e| e.into_inner());
        index
            .keys()
            .filter(|k| time.contains(k.time))
            .filter(|k| candidates.is_none_or(|c| c.binary_search(&k.tile).is_ok()))
            .filter(|k| scope.matches(&k.tile))
            .copied()
            .collect()
    }

    // -- Queries -------------------------------------------------------

    /// Summary of every sample whose projected position falls in `rect`
    /// within the time range.
    pub fn query_rect(
        &self,
        rect: &MapRect,
        time: TimeRange,
    ) -> Result<QuerySummary, CatalogError> {
        Ok(QuerySummary::from_partials(self.query_rect_partials(
            rect,
            time,
            &TileScope::all(),
        )?))
    }

    /// The per-tile partials behind [`Catalog::query_rect`], restricted
    /// to `scope` — what a shard server streams to the client router.
    pub fn query_rect_partials(
        &self,
        rect: &MapRect,
        time: TimeRange,
        scope: &TileScope,
    ) -> Result<Vec<TilePartial>, CatalogError> {
        let mut candidates = self.grid.tiles_overlapping(rect);
        candidates.sort_unstable();
        self.partials(self.keys_in(time, Some(&candidates), scope), |s| {
            rect.contains(MapPoint::new(s.x_m, s.y_m))
        })
    }

    /// Summary of every sample inside a geographic bounding box within
    /// the time range. Candidate tiles come from a conservative
    /// projected cover; each sample is then filtered exactly.
    pub fn query_bbox(
        &self,
        bbox: &BoundingBox,
        time: TimeRange,
    ) -> Result<QuerySummary, CatalogError> {
        Ok(QuerySummary::from_partials(self.query_bbox_partials(
            bbox,
            time,
            &TileScope::all(),
        )?))
    }

    /// The per-tile partials behind [`Catalog::query_bbox`], restricted
    /// to `scope`.
    pub fn query_bbox_partials(
        &self,
        bbox: &BoundingBox,
        time: TimeRange,
        scope: &TileScope,
    ) -> Result<Vec<TilePartial>, CatalogError> {
        let cover = self.grid.bbox_cover(bbox);
        let mut candidates = self.grid.tiles_overlapping(&cover);
        candidates.sort_unstable();
        self.partials(self.keys_in(time, Some(&candidates), scope), |s| {
            bbox.contains(GeoPoint::new(s.lat, s.lon))
        })
    }

    /// The aggregated cell under a geographic point, `None` when the
    /// point is outside the domain or has no data. Layers in range merge
    /// chronologically.
    pub fn query_point(
        &self,
        p: GeoPoint,
        time: TimeRange,
    ) -> Result<Option<CellSummary>, CatalogError> {
        self.query_point_scoped(p, time, &TileScope::all())
    }

    /// [`Catalog::query_point`] restricted to `scope` (`None` when the
    /// owning tile is outside the scope).
    pub fn query_point_scoped(
        &self,
        p: GeoPoint,
        time: TimeRange,
        scope: &TileScope,
    ) -> Result<Option<CellSummary>, CatalogError> {
        let m = EPSG_3976.forward(p);
        let Some((tile, cell)) = self.grid.locate(m) else {
            return Ok(None);
        };
        if !scope.matches(&tile) {
            return Ok(None);
        }
        let mut agg: Option<CellAggregate> = None;
        for key in self.keys_in(time, Some(&[tile]), scope) {
            if let Some(snapshot) = self.load_tile(&key)? {
                if let Some(c) = snapshot.cells().get(&cell) {
                    match &mut agg {
                        Some(a) => a.merge(c),
                        None => agg = Some(*c),
                    }
                }
            }
        }
        Ok(agg.map(|agg| CellSummary {
            tile,
            cell,
            center: self.grid.cell_center(tile, cell),
            agg,
        }))
    }

    /// Per-layer whole-domain summaries over the range, chronological.
    pub fn query_time_range(
        &self,
        time: TimeRange,
    ) -> Result<Vec<(TimeKey, QuerySummary)>, CatalogError> {
        Ok(self
            .query_time_range_partials(time, &TileScope::all())?
            .into_iter()
            .map(|(t, partials)| (t, QuerySummary::from_partials(partials)))
            .collect())
    }

    /// The per-layer, per-tile partials behind
    /// [`Catalog::query_time_range`], restricted to `scope`,
    /// chronological.
    pub fn query_time_range_partials(
        &self,
        time: TimeRange,
        scope: &TileScope,
    ) -> Result<Vec<(TimeKey, Vec<TilePartial>)>, CatalogError> {
        let keys = self.keys_in(time, None, scope);
        let mut out: Vec<(TimeKey, Vec<TilePartial>)> = Vec::new();
        let mut run: Vec<TileKey> = Vec::new();
        let flush = |run: &mut Vec<TileKey>,
                     out: &mut Vec<(TimeKey, Vec<TilePartial>)>|
         -> Result<(), CatalogError> {
            if let Some(first) = run.first() {
                let time = first.time;
                let partials = self.partials(std::mem::take(run), |_| true)?;
                out.push((time, partials));
            }
            Ok(())
        };
        for key in keys {
            if run.first().is_some_and(|f| f.time != key.time) {
                flush(&mut run, &mut out)?;
            }
            run.push(key);
        }
        flush(&mut run, &mut out)?;
        Ok(out)
    }

    /// The gridded composite: per-cell aggregates over `rect`, layers in
    /// range merged chronologically, sorted by `(tile, cell)`.
    ///
    /// Membership is by **cell centre**: a cell belongs to the composite
    /// iff its centre lies in `rect`, and then contributes its *whole*
    /// aggregate — so on rect boundaries this intentionally differs from
    /// [`Catalog::query_rect`], which filters individual samples exactly
    /// (composites are cell-resolution products; summaries are
    /// sample-resolution).
    pub fn query_cells(
        &self,
        rect: &MapRect,
        time: TimeRange,
    ) -> Result<Vec<CellSummary>, CatalogError> {
        self.query_cells_scoped(rect, time, &TileScope::all())
    }

    /// [`Catalog::query_cells`] restricted to `scope`. Cells of one tile
    /// merge their layers chronologically, so as long as a scope keeps
    /// all of a tile's layers together (scopes are purely spatial — they
    /// always do) shard results concatenate without any numeric merge.
    pub fn query_cells_scoped(
        &self,
        rect: &MapRect,
        time: TimeRange,
        scope: &TileScope,
    ) -> Result<Vec<CellSummary>, CatalogError> {
        let mut candidates = self.grid.tiles_overlapping(rect);
        candidates.sort_unstable();
        let mut merged: BTreeMap<(TileId, u32), CellAggregate> = BTreeMap::new();
        for key in self.keys_in(time, Some(&candidates), scope) {
            let Some(snapshot) = self.load_tile(&key)? else {
                continue;
            };
            for (&cell, agg) in snapshot.cells() {
                if !rect.contains(self.grid.cell_center(key.tile, cell)) {
                    continue;
                }
                merged
                    .entry((key.tile, cell))
                    .and_modify(|a| a.merge(agg))
                    .or_insert(*agg);
            }
        }
        Ok(merged
            .into_iter()
            .map(|((tile, cell), agg)| CellSummary {
                tile,
                cell,
                center: self.grid.cell_center(tile, cell),
                agg,
            })
            .collect())
    }

    /// Catalog-wide counters, read straight off the authoritative index
    /// — O(index), no tile decodes, no cache pollution. Across
    /// successive calls the totals are monotone non-decreasing while
    /// merge-only ingest runs (index entries only grow, under writer
    /// shard locks); an [`IngestMode::Replace`] may legitimately shrink
    /// them when the refreshed product carries fewer samples.
    pub fn stats(&self) -> Result<CatalogStats, CatalogError> {
        Ok(self.scoped_stats(&TileScope::all()).0)
    }

    /// [`Catalog::stats`] restricted to `scope`, plus the scoped layer
    /// list (chronological) — shard servers return both so the router
    /// can merge layer sets exactly.
    pub fn scoped_stats(&self, scope: &TileScope) -> (CatalogStats, Vec<TimeKey>) {
        let index = self.index.read().unwrap_or_else(|e| e.into_inner());
        let mut n_samples = 0usize;
        let mut n_thickness = 0usize;
        let mut n_tiles = 0usize;
        let mut layers: Vec<TimeKey> = Vec::new();
        for (key, entry) in index.iter() {
            if !scope.matches(&key.tile) {
                continue;
            }
            n_tiles += 1;
            n_samples += entry.n_samples as usize;
            n_thickness += entry.n_thickness as usize;
            if layers.last() != Some(&key.time) {
                layers.push(key.time);
            }
        }
        (
            CatalogStats {
                n_layers: layers.len(),
                n_tiles,
                n_samples,
                n_thickness,
                cache: self.cache.stats(),
            },
            layers,
        )
    }

    /// Full scan validating every tile's internal invariants — sorted
    /// samples, aggregates consistent with samples.
    pub fn validate(&self) -> Result<(), CatalogError> {
        self.validate_scoped(&TileScope::all()).map(|_| ())
    }

    /// [`Catalog::validate`] restricted to `scope`; returns the number
    /// of tiles checked.
    pub fn validate_scoped(&self, scope: &TileScope) -> Result<usize, CatalogError> {
        let mut checked = 0usize;
        for key in self.keys_in(TimeRange::all(), None, scope) {
            let Some(snapshot) = self.load_tile(&key)? else {
                continue;
            };
            snapshot
                .check_consistency()
                .map_err(CatalogError::Corrupt)?;
            checked += 1;
        }
        Ok(checked)
    }

    /// Deterministic per-tile reduction over the matched samples of
    /// `keys`: each tile folds its layers chronologically and its
    /// samples canonically into one [`TilePartial`], emitted in tile-id
    /// order. [`QuerySummary::from_partials`] defines the final fold —
    /// shared verbatim with the shard router so distributed answers are
    /// bit-identical.
    fn partials(
        &self,
        mut keys: Vec<TileKey>,
        matches: impl Fn(&SampleRecord) -> bool,
    ) -> Result<Vec<TilePartial>, CatalogError> {
        // Group a tile's layers together, chronological within the tile.
        keys.sort_unstable_by_key(|k| (k.tile, k.time));
        let mut out: Vec<TilePartial> = Vec::new();
        let mut i = 0usize;
        while i < keys.len() {
            let tile = keys[i].tile;
            let mut p = TilePartial {
                tile,
                n_samples: 0,
                class_counts: [0; 3],
                n_ice: 0,
                ice_sum_m: 0.0,
                min_freeboard_m: f64::INFINITY,
                max_freeboard_m: f64::NEG_INFINITY,
                n_cells: 0,
                t_n: 0,
                t_sum_m: 0.0,
                t_w_sum: 0.0,
                t_wt_sum: 0.0,
            };
            let mut cells_hit: BTreeSet<u32> = BTreeSet::new();
            while i < keys.len() && keys[i].tile == tile {
                if let Some(snapshot) = self.load_tile(&keys[i])? {
                    for sample in snapshot.samples() {
                        if !matches(sample) {
                            continue;
                        }
                        p.n_samples += 1;
                        p.class_counts[sample.class.index()] += 1;
                        if sample.class != SurfaceClass::OpenWater {
                            p.n_ice += 1;
                            p.ice_sum_m += sample.freeboard_m;
                        }
                        p.min_freeboard_m = p.min_freeboard_m.min(sample.freeboard_m);
                        p.max_freeboard_m = p.max_freeboard_m.max(sample.freeboard_m);
                        if sample.bears_thickness() {
                            let w = 1.0 / (sample.thickness_sigma_m * sample.thickness_sigma_m);
                            p.t_n += 1;
                            p.t_sum_m += sample.thickness_m;
                            p.t_w_sum += w;
                            p.t_wt_sum += sample.thickness_m * w;
                        }
                        cells_hit.insert(sample.cell);
                    }
                }
                i += 1;
            }
            if p.n_samples > 0 {
                p.n_cells = cells_hit.len() as u64;
                out.push(p);
            }
        }
        Ok(out)
    }
}

impl CellAggregate {
    /// Chronological layer merge used by point/cell queries.
    ///
    /// Thickness sums and the IVW accumulators add exactly; the p95
    /// combines as a `max` (the nearest-rank p95 is not foldable, and
    /// thickness is non-negative so `max` is exact whenever one side is
    /// empty and a conservative upper envelope otherwise — the same rule
    /// [`crate::tile`]'s base-freeze and compaction use).
    pub fn merge(&mut self, later: &CellAggregate) {
        self.n += later.n;
        for (mine, theirs) in self.class_counts.iter_mut().zip(&later.class_counts) {
            *mine += *theirs;
        }
        self.ice_n += later.ice_n;
        self.ice_sum_m += later.ice_sum_m;
        self.min_freeboard_m = self.min_freeboard_m.min(later.min_freeboard_m);
        self.max_freeboard_m = self.max_freeboard_m.max(later.max_freeboard_m);
        self.t_n += later.t_n;
        self.t_sum_m += later.t_sum_m;
        self.t_w_sum += later.t_w_sum;
        self.t_wt_sum += later.t_wt_sum;
        self.t_p95_m = self.t_p95_m.max(later.t_p95_m);
    }
}

/// Refuses a `Replace` against a retention-archived source: the ledger
/// holds the source, the tile carries frozen base aggregates, and no
/// live sample of the source remains — its contribution lives only in
/// the inseparable base, so removal is impossible and a re-merge would
/// double-count. (Samples are canonically source-major, so the live
/// check is a binary search.)
fn guard_not_archived(tile: &Tile, source: u64) -> Result<(), CatalogError> {
    if !tile.base().is_empty()
        && tile.has_source(source)
        && tile
            .samples()
            .binary_search_by(|s| s.source.cmp(&source))
            .is_err()
    {
        return Err(CatalogError::ArchivedSource { source });
    }
    Ok(())
}

fn parse_ledger_filename(name: &str) -> Option<TimeKey> {
    let ym = name.strip_suffix(".ledger")?;
    if ym.len() != 6 || !ym.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    TimeKey::new(ym[..4].parse().ok()?, ym[4..6].parse().ok()?).ok()
}

fn parse_tile_filename(name: &str) -> Option<TileKey> {
    let stem = name.strip_suffix(".tile")?;
    let (ym, quadkey) = stem.split_once('_')?;
    if ym.len() != 6 || !ym.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let time = TimeKey::new(ym[..4].parse().ok()?, ym[4..6].parse().ok()?).ok()?;
    let tile = TileId::from_quadkey(quadkey).ok()?;
    Some(TileKey { time, tile })
}

// ---------------------------------------------------------------------------
// Fleet integration.
// ---------------------------------------------------------------------------

/// Catalog sink for [`FleetDriver`]: classify a fleet and land the
/// products in a catalog in one call. (Lives here, not in `seaice`,
/// because the catalog sits above the fleet layer in the crate graph.)
pub trait CatalogSink {
    /// Runs [`FleetDriver::classify_run`] over `sources` and ingests
    /// every resulting beam product into `catalog`.
    fn classify_into_catalog(
        &self,
        sources: &[(PathBuf, Beam)],
        models: &TrainedModels,
        catalog: &Catalog,
    ) -> Result<(IngestReport, StageReport), CatalogError>;

    /// [`CatalogSink::classify_into_catalog`] extended through the
    /// product family: classifies the fleet, enriches every beam with
    /// snow depth and hydrostatic thickness + 1-sigma
    /// ([`seaice_products::enrich_fleet`]), and lands the
    /// thickness-bearing samples in `catalog` — freeboard → thickness →
    /// served queries in one call. Enrichment rejecting its inputs
    /// ([`CatalogError::Product`]) aborts before anything is written.
    fn classify_thickness_into_catalog(
        &self,
        sources: &[(PathBuf, Beam)],
        models: &TrainedModels,
        snow: &dyn SnowDepthModel,
        retrieval: &ThicknessRetrieval,
        catalog: &Catalog,
    ) -> Result<(IngestReport, StageReport), CatalogError>;
}

impl CatalogSink for FleetDriver {
    fn classify_into_catalog(
        &self,
        sources: &[(PathBuf, Beam)],
        models: &TrainedModels,
        catalog: &Catalog,
    ) -> Result<(IngestReport, StageReport), CatalogError> {
        let (products, report) = self.classify_run(sources, models);
        let ingest = catalog.ingest_products(&products)?;
        Ok((ingest, report))
    }

    fn classify_thickness_into_catalog(
        &self,
        sources: &[(PathBuf, Beam)],
        models: &TrainedModels,
        snow: &dyn SnowDepthModel,
        retrieval: &ThicknessRetrieval,
        catalog: &Catalog,
    ) -> Result<(IngestReport, StageReport), CatalogError> {
        let (products, report) = self.classify_run(sources, models);
        let enriched = seaice_products::enrich_fleet(&products, snow, retrieval)
            .map_err(CatalogError::Product)?;
        let ingest = catalog.ingest_thickness_products(&enriched)?;
        Ok((ingest, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seaice::freeboard::FreeboardPoint;

    fn grid() -> GridConfig {
        GridConfig::new(MapPoint::new(-300_000.0, -1_300_000.0), 10_000.0, 2, 8).unwrap()
    }

    /// A synthetic beam product: `n` points on a straight map-space line
    /// starting at `(x0, y0)` stepping `(dx, dy)`, geographic coordinates
    /// via inverse projection (so ingest's forward projection recovers
    /// the intended map position).
    fn line_product(n: usize, x0: f64, y0: f64, dx: f64, dy: f64, fb0: f64) -> FreeboardProduct {
        let points = (0..n)
            .map(|i| {
                let m = MapPoint::new(x0 + i as f64 * dx, y0 + i as f64 * dy);
                let g = EPSG_3976.inverse(m);
                FreeboardPoint {
                    along_track_m: i as f64 * 2.0,
                    lat: g.lat,
                    lon: g.lon,
                    freeboard_m: fb0 + (i % 7) as f64 * 0.01,
                    class: SurfaceClass::ALL[i % 3],
                }
            })
            .collect();
        FreeboardProduct {
            name: "test line".into(),
            points,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("seaice_catalog_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ingest_then_query_roundtrip_and_reopen() {
        let dir = temp_dir("roundtrip");
        let catalog = Catalog::create(&dir, grid()).unwrap();
        let product = line_product(400, -304_000.0, -1_304_000.0, 20.0, 15.0, 0.2);
        let report = catalog
            .ingest_beam("20191104195311_05000210", 1, &product)
            .unwrap();
        assert_eq!(report.n_samples, 400);
        assert_eq!(report.n_out_of_domain, 0);
        assert!(report.n_tiles >= 1);

        let all = catalog
            .query_rect(&catalog.grid().domain(), TimeRange::all())
            .unwrap();
        all.check_consistency().unwrap();
        assert_eq!(all.n_samples, 400);
        assert_eq!(all.n_ice, all.class_counts[0] + all.class_counts[1]);
        assert!(all.mean_ice_freeboard_m > 0.19);

        // A half-domain rect sees a strict subset.
        let half = MapRect::new(
            MapPoint::new(-310_000.0, -1_310_000.0),
            MapPoint::new(-300_000.0, -1_300_000.0),
        );
        let sub = catalog.query_rect(&half, TimeRange::all()).unwrap();
        sub.check_consistency().unwrap();
        assert!(sub.n_samples > 0 && sub.n_samples < 400);

        // Reopen from disk: identical answers, bit for bit.
        let reopened = Catalog::open(&dir).unwrap();
        let all2 = reopened
            .query_rect(&reopened.grid().domain(), TimeRange::all())
            .unwrap();
        assert_eq!(all2, all);
        assert_eq!(
            all2.mean_ice_freeboard_m.to_bits(),
            all.mean_ice_freeboard_m.to_bits()
        );
        reopened.validate().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn temporal_layers_separate_and_merge() {
        let dir = temp_dir("layers");
        let catalog = Catalog::create(&dir, grid()).unwrap();
        let product = line_product(120, -302_000.0, -1_302_000.0, 25.0, 0.0, 0.3);
        catalog
            .ingest_beam("20190915010203_05000210", 0, &product)
            .unwrap();
        catalog
            .ingest_beam("20191104195311_05010210", 1, &product)
            .unwrap();

        assert_eq!(
            catalog.layers(),
            vec![
                TimeKey::new(2019, 9).unwrap(),
                TimeKey::new(2019, 11).unwrap()
            ]
        );
        let sept = catalog
            .query_rect(
                &catalog.grid().domain(),
                TimeRange::only(TimeKey::new(2019, 9).unwrap()),
            )
            .unwrap();
        assert_eq!(sept.n_samples, 120);
        let both = catalog.query_time_range(TimeRange::all()).unwrap();
        assert_eq!(both.len(), 2);
        assert_eq!(both[0].0, TimeKey::new(2019, 9).unwrap());
        assert_eq!(both[0].1.n_samples, 120);
        assert_eq!(both[1].1.n_samples, 120);

        // Point query merges layers chronologically: the first point of
        // the line was ingested into both layers.
        let g = EPSG_3976.inverse(MapPoint::new(-302_000.0, -1_302_000.0));
        let cell = catalog.query_point(g, TimeRange::all()).unwrap().unwrap();
        assert!(cell.agg.n >= 2);
        assert!(catalog
            .query_point(GeoPoint::new(-60.0, 10.0), TimeRange::all())
            .unwrap()
            .is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bbox_query_filters_exactly() {
        let dir = temp_dir("bbox");
        let catalog = Catalog::create(&dir, grid()).unwrap();
        let product = line_product(300, -305_000.0, -1_305_000.0, 30.0, 22.0, 0.25);
        catalog
            .ingest_beam("20191104195311_05000210", 2, &product)
            .unwrap();
        // A bbox spanning the whole domain matches everything…
        let dom = catalog.grid().domain();
        let sw = EPSG_3976.inverse(dom.min);
        let ne = EPSG_3976.inverse(dom.max);
        let se = EPSG_3976.inverse(MapPoint::new(dom.max.x, dom.min.y));
        let nw = EPSG_3976.inverse(MapPoint::new(dom.min.x, dom.max.y));
        let lats = [sw.lat, ne.lat, se.lat, nw.lat];
        let lons = [sw.lon, ne.lon, se.lon, nw.lon];
        let wide = BoundingBox {
            lon_min: lons.iter().cloned().fold(f64::INFINITY, f64::min),
            lon_max: lons.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            lat_min: lats.iter().cloned().fold(f64::INFINITY, f64::min),
            lat_max: lats.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        };
        let all = catalog.query_bbox(&wide, TimeRange::all()).unwrap();
        assert_eq!(all.n_samples, 300);
        // …and the exact per-sample filter agrees with a manual count
        // for a narrower box.
        let narrow = BoundingBox {
            lat_min: wide.lat_min,
            lat_max: 0.5 * (wide.lat_min + wide.lat_max),
            lon_min: wide.lon_min,
            lon_max: wide.lon_max,
        };
        let got = catalog.query_bbox(&narrow, TimeRange::all()).unwrap();
        let expect = product
            .points
            .iter()
            .filter(|p| narrow.contains(GeoPoint::new(p.lat, p.lon)))
            .count();
        assert_eq!(got.n_samples, expect);
        got.check_consistency().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_domain_samples_are_counted_not_stored() {
        let dir = temp_dir("oob");
        let catalog = Catalog::create(&dir, grid()).unwrap();
        // Line that starts inside and walks out of the 10 km half-extent.
        let product = line_product(200, -300_500.0, -1_300_000.0, 120.0, 0.0, 0.2);
        let report = catalog
            .ingest_beam("20191104195311_05000210", 1, &product)
            .unwrap();
        assert!(report.n_out_of_domain > 0);
        assert_eq!(report.n_samples + report.n_out_of_domain, 200);
        let stats = catalog.stats().unwrap();
        assert_eq!(stats.n_samples, report.n_samples);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gridded_cells_compose_the_domain() {
        let dir = temp_dir("cells");
        let catalog = Catalog::create(&dir, grid()).unwrap();
        let product = line_product(256, -303_000.0, -1_303_000.0, 24.0, 24.0, 0.3);
        catalog
            .ingest_beam("20191104195311_05000210", 0, &product)
            .unwrap();
        let cells = catalog
            .query_cells(&catalog.grid().domain(), TimeRange::all())
            .unwrap();
        assert!(!cells.is_empty());
        let total: u64 = cells.iter().map(|c| c.agg.n).sum();
        assert_eq!(total, 256);
        for c in &cells {
            assert!(catalog.grid().domain().contains(c.center));
            assert!(c.agg.min_freeboard_m <= c.agg.max_freeboard_m);
        }
        // Sorted by (tile, cell).
        assert!(cells
            .windows(2)
            .all(|w| (w[0].tile, w[0].cell) < (w[1].tile, w[1].cell)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_grid_is_rejected() {
        let dir = temp_dir("mismatch");
        let _first = Catalog::create(&dir, grid()).unwrap();
        let other =
            GridConfig::new(MapPoint::new(-300_000.0, -1_300_000.0), 20_000.0, 2, 8).unwrap();
        assert!(matches!(
            Catalog::create(&dir, other),
            Err(CatalogError::GridMismatch)
        ));
        // Same grid re-creates fine (idempotent open).
        assert!(Catalog::create(&dir, grid()).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_granule_id_is_rejected() {
        let dir = temp_dir("badid");
        let catalog = Catalog::create(&dir, grid()).unwrap();
        let product = line_product(4, -300_000.0, -1_300_000.0, 10.0, 0.0, 0.1);
        assert!(matches!(
            catalog.ingest_beam("granule-x", 0, &product),
            Err(CatalogError::BadGranuleId(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regression: a reader that faults a tile in from disk and installs
    /// it after the writer's newer version was LRU-evicted used to hand
    /// the next merge a stale base, silently dropping the intervening
    /// batch. The authoritative version index must make that impossible.
    #[test]
    fn stale_cache_resurrection_cannot_lose_updates() {
        let dir = temp_dir("stale");
        // Level-0 grid: every sample lands in the single root tile; one
        // cache slot so eviction is trivial to force.
        let g = GridConfig::new(MapPoint::new(-300_000.0, -1_300_000.0), 10_000.0, 0, 8).unwrap();
        let catalog = Catalog::create_with(
            &dir,
            g,
            CatalogOptions {
                shards: 1,
                cache_capacity: 1,
                cache_stripes: 1,
                ..CatalogOptions::default()
            },
        )
        .unwrap();
        let product = line_product(50, -302_000.0, -1_302_000.0, 20.0, 0.0, 0.2);
        catalog
            .ingest_beam("20191104195311_05000210", 0, &product)
            .unwrap();
        let key = *catalog
            .index
            .read()
            .unwrap()
            .keys()
            .next()
            .expect("one tile");
        let stale = catalog.load_tile(&key).unwrap().expect("v1 snapshot");
        assert_eq!(stale.version, 1);

        catalog
            .ingest_beam("20191104195311_05010210", 1, &product)
            .unwrap();
        // Evict v2 from the single cache slot, then resurrect the stale
        // v1 snapshot the way a racing reader would.
        let other = TileKey {
            time: TimeKey::new(2020, 1).unwrap(),
            tile: key.tile,
        };
        catalog
            .cache
            .insert(other, Arc::new(Tile::new(other.tile, other.time)));
        catalog.cache.insert(key, stale);

        // The next merge must base itself on the authoritative v2, and
        // readers must not serve the resurrected v1 either.
        catalog
            .ingest_beam("20191104195311_05020210", 2, &product)
            .unwrap();
        let whole = catalog
            .query_rect(&catalog.grid().domain(), TimeRange::all())
            .unwrap();
        assert_eq!(whole.n_samples, 150, "a batch was lost to a stale base");
        assert_eq!(catalog.stats().unwrap().n_samples, 150);
        catalog.validate().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn filename_parse_roundtrip() {
        let key = TileKey {
            time: TimeKey::new(2019, 11).unwrap(),
            tile: TileId::new(4, 9, 3).unwrap(),
        };
        let name = format!("201911_{}.tile", key.tile.quadkey());
        assert_eq!(parse_tile_filename(&name), Some(key));
        assert_eq!(parse_tile_filename("201911_0123.tmp"), None);
        assert_eq!(parse_tile_filename("20191_0123.tile"), None);
        assert_eq!(parse_tile_filename("201913_0123.tile"), None);
    }
}
