//! Offline catalog compaction: re-gridding, layer merging, and
//! retention.
//!
//! A live catalog only ever grows, and its grid is pinned by the
//! manifest (`GridMismatch` on open). [`compact`] is the offline escape
//! hatch: it rewrites a whole catalog into a **fresh directory** under
//! the destination's writer lease, and in one pass can
//!
//! - **re-grid** — re-bin every sample into a different [`GridConfig`]
//!   (level / cell-size / domain change) using the stored EPSG-3976
//!   coordinates, no re-projection needed;
//! - **merge layers** — fold monthly [`TimeKey`] layers into seasonal
//!   ones ([`LayerMap::Seasonal`]), southern-hemisphere meteorological
//!   seasons keyed by their starting month;
//! - **retire detail** — apply a retention horizon that drops
//!   segment-level samples from layers before a cutoff while freezing
//!   their per-cell aggregates into the tiles' base sections
//!   ([`crate::Tile::base`]), so cell/point composites keep answering
//!   bit-identically after the samples are gone.
//!
//! The identity compaction (same grid, [`LayerMap::Monthly`], no
//! retention) is pinned to answer `query_cells` / `stats` / the summary
//! queries **bit-identically** to the source catalog — compaction is a
//! rewrite, never a reinterpretation. Tile assembly runs rayon-parallel
//! over target tiles; every floating-point fold is deterministically
//! ordered (source layers chronological, samples canonical), so a
//! compaction of the same source is reproducible bit for bit.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use rayon::prelude::*;

use crate::cache::TileKey;
use crate::grid::{GridConfig, TileId, TimeKey};
use crate::lease::LeaseOptions;
use crate::store::{Catalog, CatalogOptions};
use crate::tile::{CellAggregate, SampleRecord, Tile};
use crate::CatalogError;

/// How source layers map onto destination layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LayerMap {
    /// Keep monthly layers as they are.
    #[default]
    Monthly,
    /// Fold months into southern-hemisphere meteorological seasons,
    /// keyed by the season's starting month: Dec–Feb → December of the
    /// starting year (January 2020 joins December 2019), Mar–May →
    /// March, Jun–Aug → June, Sep–Nov → September.
    Seasonal,
}

impl LayerMap {
    /// The destination layer for a source layer.
    pub fn map(&self, t: TimeKey) -> TimeKey {
        match self {
            LayerMap::Monthly => t,
            LayerMap::Seasonal => match t.month {
                12 => TimeKey {
                    year: t.year,
                    month: 12,
                },
                1 | 2 => TimeKey {
                    year: t.year.saturating_sub(1),
                    month: 12,
                },
                m => TimeKey {
                    year: t.year,
                    month: m - (m - 3) % 3,
                },
            },
        }
    }
}

/// What a compaction run should produce.
#[derive(Debug, Clone)]
pub struct CompactionConfig {
    /// The destination grid. Samples are re-binned through their stored
    /// projected coordinates; base aggregates move wholesale to the cell
    /// containing their source cell's centre.
    pub grid: GridConfig,
    /// Destination layer mapping.
    pub layers: LayerMap,
    /// Retention horizon: destination layers strictly before this key
    /// drop their segment-level samples and keep frozen per-cell
    /// aggregates (and their ledgers). `None` keeps every sample.
    pub retention: Option<TimeKey>,
    /// Concurrency options for the destination catalog.
    pub options: CatalogOptions,
    /// Writer-lease options for the destination directory.
    pub lease: LeaseOptions,
}

impl CompactionConfig {
    /// The identity rewrite for `grid`: monthly layers, no retention,
    /// default options, and a lease owned by `"compaction"`.
    pub fn rewrite(grid: GridConfig) -> CompactionConfig {
        CompactionConfig {
            grid,
            layers: LayerMap::Monthly,
            retention: None,
            options: CatalogOptions::default(),
            lease: LeaseOptions::new("compaction"),
        }
    }
}

/// What one compaction did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionReport {
    /// Tiles read from the source.
    pub n_source_tiles: usize,
    /// Tiles written to the destination.
    pub n_target_tiles: usize,
    /// Temporal layers in the source.
    pub n_layers_in: usize,
    /// Temporal layers in the destination.
    pub n_layers_out: usize,
    /// Samples read from the source.
    pub n_samples_in: usize,
    /// Samples carried into the destination segment-level.
    pub n_samples_out: usize,
    /// Samples retired into frozen base aggregates by retention.
    pub n_retired: usize,
    /// Samples dropped because they fall outside the destination grid.
    pub n_out_of_domain: usize,
}

/// One source tile's contribution to one destination tile.
struct Contribution {
    src: TileKey,
    samples: Vec<SampleRecord>,
    base: Vec<(u32, CellAggregate)>,
    ledger: Vec<u64>,
}

impl Contribution {
    fn empty(src: TileKey, ledger: &[u64]) -> Contribution {
        Contribution {
            src,
            samples: Vec::new(),
            base: Vec::new(),
            ledger: ledger.to_vec(),
        }
    }
}

/// Rewrites the catalog at `src_dir` into a fresh `dst_dir` according
/// to `cfg`, holding the destination's writer lease for the duration.
///
/// `dst_dir` must not already contain a catalog. The source is opened
/// read-only and is not modified; compacting a live store is safe to
/// *read* but the result snapshots whatever tiles the scan observed, so
/// run it against a quiesced source for a meaningful artifact.
pub fn compact(
    src_dir: &Path,
    dst_dir: &Path,
    cfg: &CompactionConfig,
) -> Result<CompactionReport, CatalogError> {
    if dst_dir.join("catalog.manifest").exists() {
        return Err(CatalogError::Corrupt(
            "compaction destination already holds a catalog",
        ));
    }
    let src = Catalog::open(src_dir)?;
    let dst = Catalog::create_writer(dst_dir, cfg.grid, cfg.options.clone(), &cfg.lease)?;

    let keys = src.all_keys();
    let mut report = CompactionReport {
        n_source_tiles: keys.len(),
        n_samples_in: src.stats()?.n_samples,
        ..CompactionReport::default()
    };
    report.n_layers_in = {
        let mut layers: Vec<TimeKey> = keys.iter().map(|k| k.time).collect();
        layers.dedup();
        layers.len()
    };

    // Pass 1 — parallel over source tiles: re-bin every sample (and
    // relocate every frozen base cell) into destination addresses.
    type TileContributions = (TimeKey, Vec<(TileId, Contribution)>, usize);
    let contributions: Vec<Result<TileContributions, CatalogError>> = (0..keys.len())
        .into_par_iter()
        .map(|i| {
            let key = &keys[i];
            let Some(tile) = src.load_tile(key)? else {
                return Ok((cfg.layers.map(key.time), Vec::new(), 0));
            };
            let mut n_out = 0usize;
            let mut per_target: BTreeMap<TileId, Contribution> = BTreeMap::new();
            for s in tile.samples() {
                match cfg.grid.locate(icesat_geo::MapPoint::new(s.x_m, s.y_m)) {
                    Some((target, cell)) => {
                        let mut s = *s;
                        s.cell = cell;
                        per_target
                            .entry(target)
                            .or_insert_with(|| Contribution::empty(*key, tile.sources()))
                            .samples
                            .push(s);
                    }
                    None => n_out += 1,
                }
            }
            // A base aggregate has no per-sample positions left; it
            // moves wholesale to the destination cell containing its
            // source cell's centre (aggregates are cell-resolution
            // products — documented precision of re-gridding them).
            for (&cell, agg) in tile.base() {
                let centre = src.grid().cell_center(key.tile, cell);
                match cfg.grid.locate(centre) {
                    Some((target, tcell)) => per_target
                        .entry(target)
                        .or_insert_with(|| Contribution::empty(*key, tile.sources()))
                        .base
                        .push((tcell, *agg)),
                    None => n_out += agg.n as usize,
                }
            }
            Ok((
                cfg.layers.map(key.time),
                per_target.into_iter().collect(),
                n_out,
            ))
        })
        .collect();

    // Group contributions by destination key, in deterministic source
    // order (the par_iter preserved `keys`' time-major order).
    let mut groups: BTreeMap<TileKey, Vec<Contribution>> = BTreeMap::new();
    for item in contributions {
        let (time, parts, n_out) = item?;
        report.n_out_of_domain += n_out;
        for (tile, c) in parts {
            groups.entry(TileKey { time, tile }).or_default().push(c);
        }
    }

    // Pass 2 — parallel over destination tiles: assemble and install.
    let groups: Vec<(TileKey, Vec<Contribution>)> = groups.into_iter().collect();
    let outcomes: Vec<Result<Option<(usize, usize)>, CatalogError>> = (0..groups.len())
        .into_par_iter()
        .map(|i| {
            let (key, contributions) = &groups[i];
            let mut contributions: Vec<&Contribution> = contributions.iter().collect();
            contributions.sort_by_key(|c| c.src);
            let mut samples: Vec<SampleRecord> = Vec::new();
            let mut base: BTreeMap<u32, CellAggregate> = BTreeMap::new();
            let mut union: BTreeSet<u64> = BTreeSet::new();
            for c in &contributions {
                samples.extend_from_slice(&c.samples);
                for (cell, agg) in &c.base {
                    base.entry(*cell)
                        .and_modify(|a| a.merge(agg))
                        .or_insert(*agg);
                }
                union.extend(c.ledger.iter().copied());
            }
            samples.sort_unstable_by(SampleRecord::canonical_cmp);
            let retire = cfg.retention.is_some_and(|cutoff| key.time < cutoff);
            // While no base is frozen the ledger must be exactly the
            // samples' sources (re-gridding can split a source tile
            // across targets its samples never reach); once a base
            // exists the union is the only sound superset.
            let ledger: Vec<u64> = if base.is_empty() && !retire {
                samples
                    .iter()
                    .map(|s| s.source)
                    .collect::<BTreeSet<u64>>()
                    .into_iter()
                    .collect()
            } else {
                union.into_iter().collect()
            };
            let mut tile = Tile::from_parts(key.tile, key.time, 1, samples, ledger, base);
            let mut retired = 0usize;
            if retire {
                retired = tile.freeze_detail();
            }
            let written = tile.samples().len();
            if written == 0 && tile.cells().is_empty() {
                // Nothing survived (an empty source tile): skip the file.
                return Ok(None);
            }
            dst.install_tile(*key, tile)?;
            Ok(Some((written, retired)))
        })
        .collect();
    for o in outcomes {
        if let Some((written, retired)) = o? {
            report.n_samples_out += written;
            report.n_retired += retired;
            report.n_target_tiles += 1;
        }
    }

    // Carry the completed-ingest sidecar ledgers across (union per
    // destination layer), so the compacted catalog keeps skipping
    // re-ingests of everything the source had completed.
    let mut sidecars: BTreeMap<TimeKey, BTreeSet<u64>> = BTreeMap::new();
    let mut src_layers: Vec<TimeKey> = keys.iter().map(|k| k.time).collect();
    src_layers.dedup();
    for time in src_layers {
        sidecars
            .entry(cfg.layers.map(time))
            .or_default()
            .extend(src.layer_ledger(time));
    }
    report.n_layers_out = dst.layers().len();
    for (time, sources) in sidecars {
        dst.install_layer_ledger(time, sources)?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seasonal_map_folds_months_into_season_starts() {
        let k = |y, m| TimeKey::new(y, m).unwrap();
        let map = LayerMap::Seasonal;
        assert_eq!(map.map(k(2019, 12)), k(2019, 12));
        assert_eq!(map.map(k(2020, 1)), k(2019, 12));
        assert_eq!(map.map(k(2020, 2)), k(2019, 12));
        assert_eq!(map.map(k(2020, 3)), k(2020, 3));
        assert_eq!(map.map(k(2020, 5)), k(2020, 3));
        assert_eq!(map.map(k(2020, 6)), k(2020, 6));
        assert_eq!(map.map(k(2020, 8)), k(2020, 6));
        assert_eq!(map.map(k(2020, 9)), k(2020, 9));
        assert_eq!(map.map(k(2020, 11)), k(2020, 9));
        assert_eq!(LayerMap::Monthly.map(k(2020, 7)), k(2020, 7));
    }
}
