//! Remote catalog access: a framed TCP client and the quadkey-prefix
//! shard router.
//!
//! [`CatalogClient`] speaks the `docs/PROTOCOL.md` wire protocol to one
//! [`crate::server::CatalogServer`] and mirrors the [`crate::Catalog`] query
//! API. [`ShardRouter`] composes several clients into one logical
//! catalog: each shard owns a set of quadkey prefixes ([`TileScope`]),
//! the router fans a query out to the shards whose tiles it could
//! touch, and merges the returned per-tile partials with the *same
//! fold* a local query uses — so the routed answer is bit-identical to
//! running the query on a single in-process catalog holding all the
//! data (pinned by `tests/served_equivalence.rs`).
//!
//! The client speaks protocol v2: every request frame carries a fresh
//! request id, and the server may answer in-flight requests **out of
//! order**. The `submit_*` methods expose that directly — each returns
//! a typed [`Pending`] handle, many can be outstanding on one
//! connection, and [`CatalogClient::wait`] collects them in any order
//! (frames for other requests are demultiplexed into their slots as
//! they arrive). The plain query methods are a sync facade over the
//! same machinery (submit immediately followed by wait), so a
//! non-pipelining caller sees exactly the v1 one-exchange-at-a-time
//! behaviour. Pipelined answers are bit-identical to in-process
//! queries (pinned by `tests/pipelined_equivalence.rs`).
//!
//! Both layers degrade gracefully instead of hanging (pinned by
//! `tests/chaos.rs`):
//!
//! - [`ClientConfig`] gives every request a wall-clock deadline
//!   (surfacing as a typed [`CatalogError::Timeout`]) and a
//!   [`RetryPolicy`] — bounded attempts with exponential backoff and
//!   seeded jitter. Query RPCs are read-only and the write RPCs are
//!   idempotent per granule/beam (a [`IngestMode::Skip`] re-ingest
//!   counts duplicates instead of double-applying them), so a retry
//!   can never corrupt the store; the sync facade transparently
//!   reconnects and re-runs the request on transport-class failures.
//!   Pipelined requests are *not* transparently retried: a transport
//!   failure fails every outstanding [`Pending`] on that connection
//!   with a typed error and the caller decides what to re-submit.
//! - [`ShardRouter`] accepts **replica groups** per scope
//!   ([`ReplicaSpec`]) and fails over within a group. A per-replica
//!   circuit breaker trips after consecutive transport failures
//!   (`Open`), stops sending traffic there, and recovers through
//!   half-open probes — either lazily after a cooldown or eagerly via a
//!   background [`crate::wire::Request::Ping`] prober thread
//!   ([`RouterConfig::probe_interval`]). When *no* replica for an owned
//!   scope is reachable, routed queries return a typed [`Routed`] value
//!   naming the missing scopes; the strict methods turn the same
//!   situation into [`CatalogError::Degraded`].

use std::collections::{BTreeMap, BTreeSet};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use icesat_geo::{BoundingBox, GeoPoint, EPSG_3976};
use seaice::freeboard::{FreeboardPoint, FreeboardProduct};
use seaice_obs::{next_trace_id, Counter, Histogram, MetricRegistry, Trace, TraceLog, TraceReport};

use crate::fault::splitmix64;
use crate::grid::{GridConfig, MapRect, TileScope, TimeKey, TimeRange};
use crate::server::ServerStats;
use crate::store::{
    CatalogStats, CellSummary, IngestMode, IngestReport, QuerySummary, TilePartial,
};
use crate::wire::{self, Request, Response};
use crate::CatalogError;
use seaice_products::BeamThickness;

/// Socket read-timeout tick: how often a blocked read wakes to check
/// the request deadline. Purely a polling granularity — data that
/// arrives sooner is returned immediately.
const READ_TICK: Duration = Duration::from_millis(25);

// ---------------------------------------------------------------------------
// Resilience configuration.
// ---------------------------------------------------------------------------

/// Bounded-retry schedule: exponential backoff with seeded jitter.
///
/// Retrying is *always* safe against a catalog server — every RPC is
/// read-only — so the only judgement in this policy is how long to keep
/// trying. The jitter is seeded (not wall-clock random) so a fault
/// schedule replays identically under the chaos harness.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first (`>= 1`).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Cap on any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the ±25% jitter applied to each backoff.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// No retries: one attempt, fail on the first transport error (the
    /// default — identical to the pre-resilience client).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// `max_attempts` total attempts with a 10 ms → 200 ms backoff
    /// ramp.
    pub fn attempts(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
            jitter_seed: 0x5eed_cafe,
        }
    }

    /// The backoff to sleep before attempt number `attempt` (1-based
    /// retry ordinal: attempt 0 is the first try and never sleeps).
    /// Exponential in the ordinal, capped, with deterministic ±25%
    /// jitter drawn from the seed and the ordinal.
    pub fn backoff(&self, attempt: u32) -> Duration {
        if attempt == 0 || self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.max_backoff);
        let mut state = self
            .jitter_seed
            .wrapping_add((attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let r = splitmix64(&mut state);
        // Jitter factor in [0.75, 1.25): full-throughput retries from
        // many clients must not re-collide on the same tick.
        let factor = 0.75 + (r % 1000) as f64 / 2000.0;
        Duration::from_secs_f64(exp.as_secs_f64() * factor)
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

/// Connection and per-request resilience settings for a
/// [`CatalogClient`].
#[derive(Debug, Clone, Default)]
pub struct ClientConfig {
    /// TCP connect timeout; `None` uses the OS default (which can be
    /// minutes — set this when talking to possibly-dead hosts).
    pub connect_timeout: Option<Duration>,
    /// Wall-clock deadline for one request attempt (send + full
    /// response stream). Expiry tears the connection down and surfaces
    /// as [`CatalogError::Timeout`] (possibly wrapped in
    /// [`CatalogError::RetriesExhausted`]). `None` waits forever.
    pub request_deadline: Option<Duration>,
    /// Retry schedule for transport-class failures.
    pub retry: RetryPolicy,
    /// When set, every request mints a fresh trace id
    /// ([`seaice_obs::next_trace_id`]), carries it in the wire frame so
    /// the server's span log picks it up, and records client-side spans
    /// (`backoff` / `connect` / `exchange`) retrievable via
    /// [`CatalogClient::last_trace`]. Off by default: untraced requests
    /// send trace id 0 and skip all span bookkeeping.
    pub trace: bool,
    /// Metric registry the client's counters and latency histograms
    /// register into; pass a catalog/server registry clone to merge
    /// into one scrape. The default is a fresh private registry.
    pub registry: MetricRegistry,
}

impl ClientConfig {
    /// A production-shaped preset: 1 s connect timeout, 2 s request
    /// deadline, 3 attempts.
    pub fn resilient() -> ClientConfig {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(1)),
            request_deadline: Some(Duration::from_secs(2)),
            retry: RetryPolicy::attempts(3),
            ..ClientConfig::default()
        }
    }
}

/// Pre-registered handles for the client's request metrics.
#[derive(Clone)]
struct ClientMetrics {
    /// Attempts started, including first tries (`client_attempts_total`).
    attempts: Counter,
    /// Attempts that were retries (`client_retries_total`).
    retries: Counter,
    /// Attempts that died on the request deadline
    /// (`client_deadline_hits_total`).
    deadline_hits: Counter,
    /// Wall clock of each successful exchange (`client_request_us`).
    request_us: Histogram,
}

impl ClientMetrics {
    fn new(registry: &MetricRegistry) -> ClientMetrics {
        ClientMetrics {
            attempts: registry.counter("client_attempts_total"),
            retries: registry.counter("client_retries_total"),
            deadline_hits: registry.counter("client_deadline_hits_total"),
            request_us: registry.histogram("client_request_us"),
        }
    }
}

/// A request deadline in flight: the expiry instant plus the configured
/// budget (kept so the typed error can name it).
#[derive(Debug, Clone, Copy)]
struct Deadline {
    at: Option<Instant>,
    budget: Duration,
}

impl Deadline {
    fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }
}

// ---------------------------------------------------------------------------
// Request multiplexing.
// ---------------------------------------------------------------------------

/// Accumulation slot of one in-flight request: streamed batch frames
/// pile up until the completing frame (anything that isn't a batch —
/// `Done`, a scalar, or an error) arrives.
#[derive(Default)]
struct Slot {
    batches: Vec<Response>,
    done: Option<Response>,
}

/// Client-side multiplexer state: the request-id allocator and the
/// in-flight slots frames demultiplex into.
#[derive(Default)]
struct Mux {
    next_id: u64,
    pending: BTreeMap<u64, Slot>,
    /// Why the in-flight set was cleared, when a transport failure
    /// killed a connection with requests outstanding — waits on the
    /// orphaned handles surface this instead of a confusing
    /// "unknown id".
    poisoned: Option<String>,
}

impl Mux {
    fn alloc_id(&mut self) -> u64 {
        // Ids start at 1: id 0 is the unmultiplexed sentinel the
        // manifest handshake uses.
        self.next_id += 1;
        self.next_id
    }
}

/// A typed handle to one pipelined request submitted with a
/// `submit_*` method. Redeem it with [`CatalogClient::wait`] — in any
/// order relative to other outstanding handles. Dropping a `Pending`
/// without waiting leaks its slot until the connection turns over
/// (harmless, but the response is read and discarded), hence
/// `#[must_use]`.
#[must_use = "a pipelined request completes only when waited on"]
pub struct Pending<T> {
    id: u64,
    finish: fn(Vec<Response>, Response) -> Result<T, CatalogError>,
}

/// Verifies the completing frame of a streamed exchange is a `Done`
/// trailer and hands back the batches plus the advertised count.
fn finish_stream(
    batches: Vec<Response>,
    done: Response,
) -> Result<(Vec<Response>, u64), CatalogError> {
    match done {
        Response::Done { n_records } => Ok((batches, n_records)),
        other => Err(unexpected(&other)),
    }
}

/// Checks a streamed record count against the `Done` trailer.
fn check_stream_count(got: usize, advertised: u64) -> Result<(), CatalogError> {
    if got as u64 != advertised {
        return Err(CatalogError::Protocol(format!(
            "stream advertised {advertised} records but carried {got}"
        )));
    }
    Ok(())
}

fn finish_tile_partials(
    batches: Vec<Response>,
    done: Response,
) -> Result<Vec<TilePartial>, CatalogError> {
    let (batches, advertised) = finish_stream(batches, done)?;
    let mut records = Vec::new();
    for batch in batches {
        match batch {
            Response::TileBatch(mut partials) => records.append(&mut partials),
            other => return Err(unexpected(&other)),
        }
    }
    check_stream_count(records.len(), advertised)?;
    Ok(records)
}

fn finish_summary(batches: Vec<Response>, done: Response) -> Result<QuerySummary, CatalogError> {
    Ok(QuerySummary::from_partials(finish_tile_partials(
        batches, done,
    )?))
}

fn finish_layer_records(
    batches: Vec<Response>,
    done: Response,
) -> Result<Vec<(TimeKey, TilePartial)>, CatalogError> {
    let (batches, advertised) = finish_stream(batches, done)?;
    let mut records = Vec::new();
    for batch in batches {
        match batch {
            Response::LayerBatch(mut layers) => records.append(&mut layers),
            other => return Err(unexpected(&other)),
        }
    }
    check_stream_count(records.len(), advertised)?;
    Ok(records)
}

fn finish_layers(
    batches: Vec<Response>,
    done: Response,
) -> Result<Vec<(TimeKey, QuerySummary)>, CatalogError> {
    Ok(fold_layer_records(finish_layer_records(batches, done)?))
}

fn finish_cells(batches: Vec<Response>, done: Response) -> Result<Vec<CellSummary>, CatalogError> {
    let (batches, advertised) = finish_stream(batches, done)?;
    let mut records = Vec::new();
    for batch in batches {
        match batch {
            Response::CellBatch(mut cells) => records.append(&mut cells),
            other => return Err(unexpected(&other)),
        }
    }
    check_stream_count(records.len(), advertised)?;
    Ok(records)
}

/// For scalar exchanges: no batch frame may precede the answer.
fn finish_scalar(batches: Vec<Response>, done: Response) -> Result<Response, CatalogError> {
    if let Some(stray) = batches.into_iter().next() {
        return Err(unexpected(&stray));
    }
    Ok(done)
}

fn finish_point(
    batches: Vec<Response>,
    done: Response,
) -> Result<Option<CellSummary>, CatalogError> {
    match finish_scalar(batches, done)? {
        Response::Point(cell) => Ok(cell),
        other => Err(unexpected(&other)),
    }
}

fn finish_pong(batches: Vec<Response>, done: Response) -> Result<ServerStats, CatalogError> {
    match finish_scalar(batches, done)? {
        Response::Pong(stats) => Ok(stats),
        other => Err(unexpected(&other)),
    }
}

fn finish_metrics(batches: Vec<Response>, done: Response) -> Result<String, CatalogError> {
    match finish_scalar(batches, done)? {
        Response::Metrics(text) => Ok(text),
        other => Err(unexpected(&other)),
    }
}

fn finish_ingested(batches: Vec<Response>, done: Response) -> Result<IngestReport, CatalogError> {
    match finish_scalar(batches, done)? {
        Response::Ingested(report) => Ok(report),
        other => Err(unexpected(&other)),
    }
}

/// A client connection to one catalog server.
///
/// The plain query methods run one exchange at a time; the `submit_*` /
/// [`CatalogClient::wait`] pair pipelines many requests on this one
/// connection (the server answers them concurrently and possibly out
/// of order). The handle itself is `&mut self` — open one client per
/// thread for thread-level concurrency. The constructor performs the
/// manifest handshake, so the grid is available immediately.
///
/// ```
/// use std::sync::Arc;
/// use seaice_catalog::{Catalog, CatalogClient, CatalogServer, GridConfig, TimeRange};
/// use icesat_geo::MapPoint;
///
/// let dir = std::env::temp_dir().join(format!("client_doc_{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let grid = GridConfig::around(MapPoint::new(0.0, -1_000_000.0), 50_000.0);
/// let catalog = Arc::new(Catalog::create(&dir, grid).unwrap());
/// let server = CatalogServer::serve(catalog, "127.0.0.1:0").unwrap();
///
/// let mut client = CatalogClient::connect(&server.addr().to_string()).unwrap();
/// let domain = client.grid().domain(); // from the manifest handshake
/// let summary = client.query_rect(&domain, TimeRange::all()).unwrap();
/// assert_eq!(summary.n_samples, 0); // empty store, served answer
///
/// server.shutdown();
/// # let _ = std::fs::remove_dir_all(&dir);
/// ```
pub struct CatalogClient {
    addr: String,
    /// `None` between a transport failure and the next attempt's
    /// reconnect.
    stream: Option<TcpStream>,
    /// `None` only before the first successful handshake.
    grid: Option<GridConfig>,
    config: ClientConfig,
    metrics: ClientMetrics,
    /// Request-id allocator and in-flight demultiplexing slots.
    mux: Mux,
    /// Ring of completed traced-request reports (newest last); empty
    /// unless [`ClientConfig::trace`] is on.
    trace_log: TraceLog,
}

/// Completed traced requests a client keeps for inspection.
const CLIENT_TRACE_LOG_CAP: usize = 32;

impl CatalogClient {
    /// Connects with default (non-resilient) configuration and performs
    /// the manifest handshake.
    pub fn connect(addr: &str) -> Result<CatalogClient, CatalogError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// [`CatalogClient::connect`] with explicit resilience settings;
    /// the initial connect + handshake runs under the same retry policy
    /// as requests.
    pub fn connect_with(addr: &str, config: ClientConfig) -> Result<CatalogClient, CatalogError> {
        let metrics = ClientMetrics::new(&config.registry);
        let mut client = CatalogClient {
            addr: addr.to_string(),
            stream: None,
            grid: None,
            config,
            metrics,
            mux: Mux::default(),
            trace_log: TraceLog::new(CLIENT_TRACE_LOG_CAP),
        };
        // Forces connect + handshake under the retry policy.
        client.with_retry(|_, _, _| Ok(()))?;
        Ok(client)
    }

    /// The served catalog's grid (from the connect-time handshake).
    pub fn grid(&self) -> &GridConfig {
        // `connect` only returns a client after the manifest handshake
        // succeeds, and nothing ever clears `grid`, so this is unreachable.
        // sanity: allow(panic_path) -- handshake completion is a construction invariant
        self.grid.as_ref().expect("handshake completed at connect")
    }

    /// Health probe: the server's serving counters, via
    /// [`Request::Ping`].
    pub fn ping(&mut self) -> Result<ServerStats, CatalogError> {
        match self.exchange_scalar(&Request::Ping)? {
            Response::Pong(stats) => Ok(stats),
            other => Err(unexpected(&other)),
        }
    }

    /// Full metric snapshot of the server, via
    /// [`Request::Introspect`]: sorted Prometheus-style exposition text
    /// (parse with [`seaice_obs::parse_exposition`]). Against a
    /// pre-introspection server this surfaces as
    /// [`CatalogError::Remote`] with `ERR_BAD_REQUEST` — the connection
    /// stays usable.
    pub fn introspect(&mut self) -> Result<String, CatalogError> {
        match self.exchange_scalar(&Request::Introspect)? {
            Response::Metrics(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// The metric registry this client records into.
    pub fn registry(&self) -> &MetricRegistry {
        &self.config.registry
    }

    /// The newest completed traced request, when [`ClientConfig::trace`]
    /// is on.
    pub fn last_trace(&self) -> Option<TraceReport> {
        self.trace_log.recent().pop()
    }

    /// Completed traced requests, oldest first (bounded ring).
    pub fn recent_traces(&self) -> Vec<TraceReport> {
        self.trace_log.recent()
    }

    // -- Resilient transport ---------------------------------------------

    /// True for failures where the exchange may not have completed and
    /// the connection can't be trusted: worth a reconnect + retry
    /// (read-only RPCs make that always safe). [`CatalogError::Remote`]
    /// is *not* transport-class — the server answered; the error is
    /// deterministic and the connection is at a clean frame boundary.
    fn is_transport(e: &CatalogError) -> bool {
        matches!(
            e,
            CatalogError::Io(_)
                | CatalogError::Protocol(_)
                | CatalogError::Artifact(_)
                | CatalogError::Timeout { .. }
        )
    }

    /// Runs `f` against a connected client, reconnecting and retrying
    /// on transport-class failures per the [`RetryPolicy`]. With
    /// retries exhausted, fails typed: the raw error when only one
    /// attempt was allowed (pre-resilience behaviour), otherwise
    /// [`CatalogError::RetriesExhausted`].
    ///
    /// `f` receives the trace id to carry in its request frame: 0
    /// (untraced) unless [`ClientConfig::trace`] minted one. Traced
    /// requests record `backoff` / `connect` / `exchange` spans and land
    /// their report in the client's trace ring whether they succeed or
    /// exhaust retries.
    fn with_retry<T>(
        &mut self,
        mut f: impl FnMut(&mut Self, Deadline, u64) -> Result<T, CatalogError>,
    ) -> Result<T, CatalogError> {
        let trace = self.config.trace.then(|| Trace::new(next_trace_id()));
        let trace_id = trace.as_ref().map_or(0, |t| t.id());
        let finish = |trace: Option<Trace>, log: &TraceLog| {
            if let Some(t) = trace {
                log.push(t.report());
            }
        };
        let attempts = self.config.retry.max_attempts.max(1);
        let mut last: Option<CatalogError> = None;
        for attempt in 0..attempts {
            self.metrics.attempts.inc();
            if attempt > 0 {
                self.metrics.retries.inc();
                let _span = trace.as_ref().map(|t| t.span("backoff"));
                std::thread::sleep(self.config.retry.backoff(attempt));
            }
            {
                let _span = trace.as_ref().map(|t| t.span("connect"));
                if let Err(e) = self.ensure_connected() {
                    last = Some(e);
                    continue;
                }
            }
            let deadline = self.deadline();
            let t0 = Instant::now();
            let outcome = {
                let _span = trace.as_ref().map(|t| t.span("exchange"));
                f(self, deadline, trace_id)
            };
            match outcome {
                Ok(v) => {
                    self.metrics.request_us.record(t0.elapsed());
                    finish(trace, &self.trace_log);
                    return Ok(v);
                }
                Err(e) if Self::is_transport(&e) => {
                    if matches!(e, CatalogError::Timeout { .. }) {
                        self.metrics.deadline_hits.inc();
                    }
                    // The stream may be mid-exchange: poison it so the
                    // next attempt reconnects (killing any pipelined
                    // requests that were sharing the connection).
                    self.poison_connection(
                        "a sync exchange hit a transport failure and retried on a fresh \
                         connection; pipelined requests on the old one are lost",
                    );
                    last = Some(e);
                }
                Err(e) => {
                    finish(trace, &self.trace_log);
                    return Err(e);
                }
            }
        }
        finish(trace, &self.trace_log);
        let Some(last) = last else {
            return Err(CatalogError::Protocol(
                "retry loop exited without recording an attempt".into(),
            ));
        };
        if attempts == 1 {
            Err(last)
        } else {
            Err(CatalogError::RetriesExhausted {
                attempts,
                last: Box::new(last),
            })
        }
    }

    /// Drops the stream and fails every in-flight pipelined request
    /// typed: later waits on their handles report `why`.
    fn poison_connection(&mut self, why: &str) {
        self.stream = None;
        if !self.mux.pending.is_empty() {
            self.mux.pending.clear();
            self.mux.poisoned = Some(why.to_string());
        }
    }

    fn deadline(&self) -> Deadline {
        Deadline {
            at: self.config.request_deadline.map(|d| Instant::now() + d),
            budget: self.config.request_deadline.unwrap_or(Duration::ZERO),
        }
    }

    /// Connects (honouring the connect timeout) and performs the
    /// manifest handshake if the stream is currently poisoned. Across
    /// reconnects the grid must not change — a shard silently replaced
    /// by one serving different data is a misconfiguration, not
    /// something to paper over.
    fn ensure_connected(&mut self) -> Result<(), CatalogError> {
        if self.stream.is_some() {
            return Ok(());
        }
        let mut stream = match self.config.connect_timeout {
            Some(timeout) => {
                let mut last: Option<std::io::Error> = None;
                let mut connected = None;
                for sockaddr in self.addr.as_str().to_socket_addrs()? {
                    match TcpStream::connect_timeout(&sockaddr, timeout) {
                        Ok(s) => {
                            connected = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                connected.ok_or_else(|| {
                    CatalogError::Io(last.unwrap_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::AddrNotAvailable,
                            "address resolved to nothing",
                        )
                    }))
                })?
            }
            None => TcpStream::connect(&self.addr)?,
        };
        let _ = stream.set_nodelay(true);
        // The read tick is what lets a blocked read observe the request
        // deadline; writes get the whole deadline budget outright.
        let _ = stream.set_read_timeout(Some(READ_TICK));
        let _ = stream.set_write_timeout(self.config.request_deadline);
        // Handshake on the local stream; it is only stored (making the
        // connection visible to submits) once the handshake succeeds.
        let deadline = self.deadline();
        let handshake = (|| {
            wire::write_message(&mut stream, &Request::Manifest)?;
            match Self::read_response(&mut stream, deadline)? {
                Response::Manifest(grid) => Ok(grid),
                other => Err(unexpected(&other)),
            }
        })();
        match handshake {
            Ok(grid) => {
                if self.grid.is_some_and(|prev| prev != grid) {
                    return Err(CatalogError::Protocol(
                        "server grid changed across a reconnect".into(),
                    ));
                }
                self.grid = Some(grid);
                self.stream = Some(stream);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Reads one response frame (ignoring its mux ids — used only for
    /// the handshake, the sole exchange on a fresh connection),
    /// honouring the deadline; maps error frames to
    /// [`CatalogError::Remote`] and deadline expiry to
    /// [`CatalogError::Timeout`].
    fn read_response(stream: &mut TcpStream, deadline: Deadline) -> Result<Response, CatalogError> {
        match wire::read_frame_cancellable(stream, || deadline.expired())? {
            Some(frame) => {
                match <Response as seaice::artifact::Artifact>::from_bytes(&frame.payload)? {
                    Response::Error { code, message } => {
                        Err(CatalogError::Remote { code, message })
                    }
                    response => Ok(response),
                }
            }
            None => {
                if deadline.expired() {
                    Err(CatalogError::Timeout {
                        after: deadline.budget,
                    })
                } else {
                    Err(CatalogError::Protocol(
                        "server closed the connection mid-exchange".into(),
                    ))
                }
            }
        }
    }

    // -- The pipelined core ----------------------------------------------

    /// Writes `request` on the connection under a fresh request id and
    /// registers its demultiplexing slot. Does *not* read anything —
    /// the returned handle is redeemed by [`CatalogClient::wait`], in
    /// any order relative to other outstanding handles. A write failure
    /// poisons the connection (every outstanding handle fails typed).
    fn submit_with<T>(
        &mut self,
        request: &Request,
        trace_id: u64,
        finish: fn(Vec<Response>, Response) -> Result<T, CatalogError>,
    ) -> Result<Pending<T>, CatalogError> {
        self.ensure_connected()?;
        let id = self.mux.alloc_id();
        let Some(stream) = self.stream.as_mut() else {
            return Err(CatalogError::Protocol(
                "connection vanished between connect and submit".into(),
            ));
        };
        if let Err(e) = wire::write_message_mux(stream, request, id, trace_id) {
            self.poison_connection(
                "a pipelined submit failed mid-write; the connection and every request \
                 in flight on it are lost",
            );
            return Err(e);
        }
        self.mux.pending.insert(id, Slot::default());
        Ok(Pending { id, finish })
    }

    /// [`CatalogClient::submit_with`] minting a trace id when
    /// [`ClientConfig::trace`] is on (the server's span log picks it
    /// up; client-side spans only cover sync exchanges).
    fn submit_traced<T>(
        &mut self,
        request: &Request,
        finish: fn(Vec<Response>, Response) -> Result<T, CatalogError>,
    ) -> Result<Pending<T>, CatalogError> {
        let trace_id = if self.config.trace {
            next_trace_id()
        } else {
            0
        };
        self.submit_with(request, trace_id, finish)
    }

    /// Blocks until `pending`'s request completes and returns its typed
    /// answer. Frames belonging to *other* in-flight requests are
    /// demultiplexed into their slots along the way, so handles may be
    /// waited on in any order — including an order different from
    /// completion order on the server. A transport failure (or
    /// deadline expiry) fails every outstanding request on the
    /// connection typed; an error *frame* fails only this request and
    /// the connection stays usable.
    pub fn wait<T>(&mut self, pending: Pending<T>) -> Result<T, CatalogError> {
        let deadline = self.deadline();
        self.wait_deadline(pending, deadline)
    }

    /// [`CatalogClient::wait`] under an explicit, possibly
    /// already-running deadline (the sync facade shares one deadline
    /// across its submit and wait).
    fn wait_deadline<T>(
        &mut self,
        pending: Pending<T>,
        deadline: Deadline,
    ) -> Result<T, CatalogError> {
        loop {
            match self.mux.pending.get(&pending.id) {
                None => {
                    let why = self.mux.poisoned.clone().unwrap_or_else(|| {
                        "request is not in flight (already waited on?)".to_string()
                    });
                    return Err(CatalogError::Protocol(why));
                }
                Some(slot) if slot.done.is_some() => {
                    let slot = self.mux.pending.remove(&pending.id).unwrap_or_default();
                    let Some(done) = slot.done else {
                        return Err(CatalogError::Protocol(
                            "request slot lost its completion between observation and \
                             removal"
                                .into(),
                        ));
                    };
                    if let Response::Error { code, message } = done {
                        return Err(CatalogError::Remote { code, message });
                    }
                    return (pending.finish)(slot.batches, done);
                }
                Some(_) => {}
            }
            let Some(stream) = self.stream.as_mut() else {
                let why = "connection lost with pipelined requests in flight; re-submit on a \
                     fresh connection"
                    .to_string();
                self.poison_connection(&why);
                return Err(CatalogError::Protocol(why));
            };
            match wire::read_frame_cancellable(stream, || deadline.expired()) {
                Ok(Some(frame)) => {
                    if let Err(e) = self.dispatch_frame(frame) {
                        self.poison_connection(
                            "an undecodable or misrouted response frame poisoned the \
                             connection; every request in flight on it is lost",
                        );
                        return Err(e);
                    }
                }
                Ok(None) => {
                    let expired = deadline.expired();
                    self.poison_connection(if expired {
                        "the request deadline expired with pipelined requests in flight"
                    } else {
                        "the server closed the connection with pipelined requests in flight"
                    });
                    return Err(if expired {
                        CatalogError::Timeout {
                            after: deadline.budget,
                        }
                    } else {
                        CatalogError::Protocol("server closed the connection mid-exchange".into())
                    });
                }
                Err(e) => {
                    self.poison_connection(
                        "a transport failure killed the connection; every request in \
                         flight on it is lost",
                    );
                    return Err(e);
                }
            }
        }
    }

    /// Routes one received frame into its request's slot. Batch frames
    /// accumulate; any other frame completes the slot. A frame for an
    /// id that is not in flight is a protocol violation (the stream
    /// cannot be trusted).
    fn dispatch_frame(&mut self, frame: wire::Frame) -> Result<(), CatalogError> {
        let response = <Response as seaice::artifact::Artifact>::from_bytes(&frame.payload)?;
        let Some(slot) = self.mux.pending.get_mut(&frame.request_id) else {
            return Err(CatalogError::Protocol(format!(
                "response frame for request id {} which is not in flight",
                frame.request_id
            )));
        };
        match response {
            Response::TileBatch(_) | Response::LayerBatch(_) | Response::CellBatch(_) => {
                slot.batches.push(response)
            }
            done => slot.done = Some(done),
        }
        Ok(())
    }

    /// Number of pipelined requests currently in flight.
    pub fn in_flight(&self) -> usize {
        self.mux.pending.len()
    }

    // -- Scoped partial/record transport --------------------------------

    /// Sends `request` and waits for its scalar answer (with deadline,
    /// reconnect, and retry per the config) — the sync facade over one
    /// submit + wait.
    fn exchange_scalar(&mut self, request: &Request) -> Result<Response, CatalogError> {
        self.with_retry(|client, deadline, trace_id| {
            let pending = client.submit_with(request, trace_id, finish_scalar)?;
            client.wait_deadline(pending, deadline)
        })
    }

    /// Sends `request` and collects its streamed answer through
    /// `finish` (with deadline, reconnect, and retry per the config).
    /// A retry re-runs the whole exchange from scratch (partial
    /// streams are discarded).
    fn exchange_stream<T>(
        &mut self,
        request: &Request,
        finish: fn(Vec<Response>, Response) -> Result<T, CatalogError>,
    ) -> Result<T, CatalogError> {
        self.with_retry(|client, deadline, trace_id| {
            let pending = client.submit_with(request, trace_id, finish)?;
            client.wait_deadline(pending, deadline)
        })
    }

    /// Scoped per-tile partials of a rect query (the shard-router
    /// transport behind [`CatalogClient::query_rect`]).
    pub fn query_rect_partials(
        &mut self,
        rect: &MapRect,
        time: TimeRange,
        scope: &TileScope,
    ) -> Result<Vec<TilePartial>, CatalogError> {
        self.exchange_stream(
            &Request::QueryRect {
                rect: *rect,
                time,
                scope: scope.clone(),
            },
            finish_tile_partials,
        )
    }

    /// Scoped per-tile partials of a bbox query.
    pub fn query_bbox_partials(
        &mut self,
        bbox: &BoundingBox,
        time: TimeRange,
        scope: &TileScope,
    ) -> Result<Vec<TilePartial>, CatalogError> {
        self.exchange_stream(
            &Request::QueryBbox {
                bbox: *bbox,
                time,
                scope: scope.clone(),
            },
            finish_tile_partials,
        )
    }

    /// Scoped per-layer, per-tile partials of a time-range query.
    pub fn query_time_range_partials(
        &mut self,
        time: TimeRange,
        scope: &TileScope,
    ) -> Result<Vec<(TimeKey, TilePartial)>, CatalogError> {
        self.exchange_stream(
            &Request::QueryTimeRange {
                time,
                scope: scope.clone(),
            },
            finish_layer_records,
        )
    }

    /// Scoped gridded composite cells.
    pub fn query_cells_scoped(
        &mut self,
        rect: &MapRect,
        time: TimeRange,
        scope: &TileScope,
    ) -> Result<Vec<CellSummary>, CatalogError> {
        self.exchange_stream(
            &Request::QueryCells {
                rect: *rect,
                time,
                scope: scope.clone(),
            },
            finish_cells,
        )
    }

    /// Scoped point probe.
    pub fn query_point_scoped(
        &mut self,
        point: GeoPoint,
        time: TimeRange,
        scope: &TileScope,
    ) -> Result<Option<CellSummary>, CatalogError> {
        match self.exchange_scalar(&Request::QueryPoint {
            point,
            time,
            scope: scope.clone(),
        })? {
            Response::Point(cell) => Ok(cell),
            other => Err(unexpected(&other)),
        }
    }

    /// Scoped counters + chronological layer list.
    pub fn scoped_stats(
        &mut self,
        scope: &TileScope,
    ) -> Result<(CatalogStats, Vec<TimeKey>), CatalogError> {
        match self.exchange_scalar(&Request::Stats {
            scope: scope.clone(),
        })? {
            Response::Stats { stats, layers } => Ok((stats, layers)),
            other => Err(unexpected(&other)),
        }
    }

    /// Scoped full-store invariant check; returns tiles checked.
    pub fn validate_scoped(&mut self, scope: &TileScope) -> Result<usize, CatalogError> {
        match self.exchange_scalar(&Request::Validate {
            scope: scope.clone(),
        })? {
            Response::Done { n_records } => Ok(n_records as usize),
            other => Err(unexpected(&other)),
        }
    }

    // -- The Catalog-mirroring convenience API ---------------------------

    /// Served [`crate::Catalog::query_rect`] — same fold, same bits.
    pub fn query_rect(
        &mut self,
        rect: &MapRect,
        time: TimeRange,
    ) -> Result<QuerySummary, CatalogError> {
        Ok(QuerySummary::from_partials(self.query_rect_partials(
            rect,
            time,
            &TileScope::all(),
        )?))
    }

    /// Served [`crate::Catalog::query_bbox`].
    pub fn query_bbox(
        &mut self,
        bbox: &BoundingBox,
        time: TimeRange,
    ) -> Result<QuerySummary, CatalogError> {
        Ok(QuerySummary::from_partials(self.query_bbox_partials(
            bbox,
            time,
            &TileScope::all(),
        )?))
    }

    /// Served [`crate::Catalog::query_point`].
    pub fn query_point(
        &mut self,
        point: GeoPoint,
        time: TimeRange,
    ) -> Result<Option<CellSummary>, CatalogError> {
        self.query_point_scoped(point, time, &TileScope::all())
    }

    /// Served [`crate::Catalog::query_time_range`].
    pub fn query_time_range(
        &mut self,
        time: TimeRange,
    ) -> Result<Vec<(TimeKey, QuerySummary)>, CatalogError> {
        Ok(fold_layer_records(
            self.query_time_range_partials(time, &TileScope::all())?,
        ))
    }

    /// Served [`crate::Catalog::query_cells`].
    pub fn query_cells(
        &mut self,
        rect: &MapRect,
        time: TimeRange,
    ) -> Result<Vec<CellSummary>, CatalogError> {
        self.query_cells_scoped(rect, time, &TileScope::all())
    }

    /// Served [`crate::Catalog::stats`].
    pub fn stats(&mut self) -> Result<CatalogStats, CatalogError> {
        Ok(self.scoped_stats(&TileScope::all())?.0)
    }

    /// Served [`crate::Catalog::validate`].
    pub fn validate(&mut self) -> Result<(), CatalogError> {
        self.validate_scoped(&TileScope::all()).map(|_| ())
    }

    // -- Served writes ----------------------------------------------------

    /// Served [`crate::Catalog::ingest_beam`]: streams one beam's
    /// freeboard product at the server, which merges it under its own
    /// writer lease. Skip-mode duplicate policy (idempotent, so the
    /// configured retry policy is safe to apply).
    pub fn ingest_beam(
        &mut self,
        granule_id: &str,
        beam_index: usize,
        product: &FreeboardProduct,
    ) -> Result<IngestReport, CatalogError> {
        self.ingest_beam_with(granule_id, beam_index, product, IngestMode::Skip)
    }

    /// [`CatalogClient::ingest_beam`] with an explicit re-ingest
    /// policy. A read-only server ([`crate::ServerConfig::allow_writes`]
    /// off) answers with a typed [`CatalogError::Remote`] carrying
    /// [`crate::wire::ERR_READ_ONLY`].
    pub fn ingest_beam_with(
        &mut self,
        granule_id: &str,
        beam_index: usize,
        product: &FreeboardProduct,
        mode: IngestMode,
    ) -> Result<IngestReport, CatalogError> {
        match self.exchange_scalar(&Request::IngestSamples {
            granule_id: granule_id.to_string(),
            beam: beam_index as u32,
            mode,
            product: product.clone(),
        })? {
            Response::Ingested(report) => Ok(report),
            other => Err(unexpected(&other)),
        }
    }

    /// Served [`crate::Catalog::ingest_thickness_beam`]: Skip-mode
    /// duplicate policy.
    pub fn ingest_thickness_beam(
        &mut self,
        beam: &BeamThickness,
    ) -> Result<IngestReport, CatalogError> {
        self.ingest_thickness_beam_with(beam, IngestMode::Skip)
    }

    /// [`CatalogClient::ingest_thickness_beam`] with an explicit
    /// re-ingest policy.
    pub fn ingest_thickness_beam_with(
        &mut self,
        beam: &BeamThickness,
        mode: IngestMode,
    ) -> Result<IngestReport, CatalogError> {
        match self.exchange_scalar(&Request::IngestThickness {
            mode,
            beam: beam.clone(),
        })? {
            Response::Ingested(report) => Ok(report),
            other => Err(unexpected(&other)),
        }
    }

    // -- The pipelined submit API -----------------------------------------

    /// Pipelined [`CatalogClient::query_rect`]: submits without
    /// reading; redeem with [`CatalogClient::wait`].
    pub fn submit_query_rect(
        &mut self,
        rect: &MapRect,
        time: TimeRange,
    ) -> Result<Pending<QuerySummary>, CatalogError> {
        self.submit_traced(
            &Request::QueryRect {
                rect: *rect,
                time,
                scope: TileScope::all(),
            },
            finish_summary,
        )
    }

    /// Pipelined [`CatalogClient::query_bbox`].
    pub fn submit_query_bbox(
        &mut self,
        bbox: &BoundingBox,
        time: TimeRange,
    ) -> Result<Pending<QuerySummary>, CatalogError> {
        self.submit_traced(
            &Request::QueryBbox {
                bbox: *bbox,
                time,
                scope: TileScope::all(),
            },
            finish_summary,
        )
    }

    /// Pipelined [`CatalogClient::query_point`].
    pub fn submit_query_point(
        &mut self,
        point: GeoPoint,
        time: TimeRange,
    ) -> Result<Pending<Option<CellSummary>>, CatalogError> {
        self.submit_traced(
            &Request::QueryPoint {
                point,
                time,
                scope: TileScope::all(),
            },
            finish_point,
        )
    }

    /// Pipelined [`CatalogClient::query_time_range`].
    pub fn submit_query_time_range(
        &mut self,
        time: TimeRange,
    ) -> Result<Pending<Vec<(TimeKey, QuerySummary)>>, CatalogError> {
        self.submit_traced(
            &Request::QueryTimeRange {
                time,
                scope: TileScope::all(),
            },
            finish_layers,
        )
    }

    /// Pipelined [`CatalogClient::query_cells`].
    pub fn submit_query_cells(
        &mut self,
        rect: &MapRect,
        time: TimeRange,
    ) -> Result<Pending<Vec<CellSummary>>, CatalogError> {
        self.submit_traced(
            &Request::QueryCells {
                rect: *rect,
                time,
                scope: TileScope::all(),
            },
            finish_cells,
        )
    }

    /// Pipelined [`CatalogClient::ping`].
    pub fn submit_ping(&mut self) -> Result<Pending<ServerStats>, CatalogError> {
        self.submit_traced(&Request::Ping, finish_pong)
    }

    /// Pipelined [`CatalogClient::introspect`].
    pub fn submit_introspect(&mut self) -> Result<Pending<String>, CatalogError> {
        self.submit_traced(&Request::Introspect, finish_metrics)
    }

    /// Pipelined [`CatalogClient::ingest_beam_with`]: the server
    /// answers ingest RPCs concurrently with queries in flight on this
    /// same connection.
    pub fn submit_ingest_beam(
        &mut self,
        granule_id: &str,
        beam_index: usize,
        product: &FreeboardProduct,
        mode: IngestMode,
    ) -> Result<Pending<IngestReport>, CatalogError> {
        self.submit_traced(
            &Request::IngestSamples {
                granule_id: granule_id.to_string(),
                beam: beam_index as u32,
                mode,
                product: product.clone(),
            },
            finish_ingested,
        )
    }

    /// Pipelined [`CatalogClient::ingest_thickness_beam_with`].
    pub fn submit_ingest_thickness(
        &mut self,
        beam: &BeamThickness,
        mode: IngestMode,
    ) -> Result<Pending<IngestReport>, CatalogError> {
        self.submit_traced(
            &Request::IngestThickness {
                mode,
                beam: beam.clone(),
            },
            finish_ingested,
        )
    }
}

fn unexpected(response: &Response) -> CatalogError {
    CatalogError::Protocol(format!("unexpected response frame: {response:?}"))
}

/// Groups `(layer, partial)` records by layer and folds each layer with
/// the canonical summary fold, chronological output — the shared merge
/// behind local, single-served, and sharded time-range queries.
fn fold_layer_records(records: Vec<(TimeKey, TilePartial)>) -> Vec<(TimeKey, QuerySummary)> {
    let mut by_layer: BTreeMap<TimeKey, Vec<TilePartial>> = BTreeMap::new();
    for (time, partial) in records {
        by_layer.entry(time).or_default().push(partial);
    }
    by_layer
        .into_iter()
        .map(|(time, partials)| (time, QuerySummary::from_partials(partials)))
        .collect()
}

// ---------------------------------------------------------------------------
// Shard routing.
// ---------------------------------------------------------------------------

/// One shard of a sharded catalog deployment: a server address plus the
/// quadkey prefixes it owns.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Server address (`host:port`).
    pub addr: String,
    /// The quadkey prefixes this shard owns.
    pub scope: TileScope,
}

impl ShardSpec {
    /// A spec from an address and prefix strings.
    pub fn new(addr: impl Into<String>, prefixes: &[&str]) -> Result<ShardSpec, CatalogError> {
        Ok(ShardSpec {
            addr: addr.into(),
            scope: TileScope::of(prefixes)?,
        })
    }
}

/// One scope of a replicated deployment: every address serves the same
/// data for the same quadkey prefixes; the router fails over between
/// them.
#[derive(Debug, Clone)]
pub struct ReplicaSpec {
    /// Replica server addresses (`host:port`), preference order.
    pub addrs: Vec<String>,
    /// The quadkey prefixes this replica group owns.
    pub scope: TileScope,
}

impl ReplicaSpec {
    /// A spec from addresses and prefix strings.
    pub fn new(addrs: &[&str], prefixes: &[&str]) -> Result<ReplicaSpec, CatalogError> {
        Ok(ReplicaSpec {
            addrs: addrs.iter().map(|a| a.to_string()).collect(),
            scope: TileScope::of(prefixes)?,
        })
    }
}

/// Router-level resilience settings.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Per-replica-connection settings (deadline, retry, connect
    /// timeout).
    pub client: ClientConfig,
    /// Consecutive transport failures that trip a replica's breaker
    /// open.
    pub breaker_threshold: u32,
    /// How long an open breaker blocks traffic before allowing one
    /// half-open probe attempt.
    pub breaker_cooldown: Duration,
    /// When set, a background thread pings tripped replicas at this
    /// interval and closes their breakers as soon as they answer —
    /// recovery without waiting for live traffic to probe.
    pub probe_interval: Option<Duration>,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            client: ClientConfig::default(),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(1),
            probe_interval: None,
        }
    }
}

/// Circuit-breaker state of one replica connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: traffic flows.
    Closed,
    /// Tripped: traffic is blocked until the cooldown elapses.
    Open,
    /// Cooldown elapsed: the next request (or background ping) is a
    /// probe — success closes the breaker, failure re-opens it.
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
}

/// Shared state-transition counters
/// (`router_breaker_transitions_total{to="…"}`) — one set per router,
/// shared by every replica's breaker.
#[derive(Clone)]
struct BreakerMetrics {
    to_closed: Counter,
    to_open: Counter,
    to_half_open: Counter,
}

impl BreakerMetrics {
    fn new(registry: &MetricRegistry) -> BreakerMetrics {
        let to = |s| registry.counter_with("router_breaker_transitions_total", &[("to", s)]);
        BreakerMetrics {
            to_closed: to("closed"),
            to_open: to("open"),
            to_half_open: to("half_open"),
        }
    }
}

/// Per-replica circuit breaker: trips open after
/// [`RouterConfig::breaker_threshold`] consecutive transport failures,
/// blocks traffic for the cooldown, then lets a single half-open probe
/// decide. Shared (`Arc`) between the query path and the background
/// prober.
struct Breaker {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<BreakerInner>,
    metrics: BreakerMetrics,
}

impl Breaker {
    fn new(threshold: u32, cooldown: Duration, metrics: BreakerMetrics) -> Breaker {
        Breaker {
            threshold: threshold.max(1),
            cooldown,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
            }),
            metrics,
        }
    }

    /// May traffic flow? Flips `Open` → `HalfOpen` once the cooldown
    /// elapses (the caller becomes the probe).
    fn allows(&self) -> bool {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match g.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                let cooled = g.opened_at.is_some_and(|at| at.elapsed() >= self.cooldown);
                if cooled {
                    g.state = BreakerState::HalfOpen;
                    self.metrics.to_half_open.inc();
                }
                cooled
            }
        }
    }

    fn on_success(&self) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if g.state != BreakerState::Closed {
            self.metrics.to_closed.inc();
        }
        g.state = BreakerState::Closed;
        g.consecutive_failures = 0;
        g.opened_at = None;
    }

    fn on_failure(&self) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.consecutive_failures += 1;
        if g.state == BreakerState::HalfOpen || g.consecutive_failures >= self.threshold {
            if g.state != BreakerState::Open {
                self.metrics.to_open.inc();
            }
            g.state = BreakerState::Open;
            g.opened_at = Some(Instant::now());
        }
    }

    fn state(&self) -> BreakerState {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).state
    }
}

struct Replica {
    addr: String,
    /// `None` until (re)connected; dropped on transport failure.
    client: Option<CatalogClient>,
    breaker: Arc<Breaker>,
}

struct Group {
    scope: TileScope,
    replicas: Vec<Replica>,
}

/// How a replica group answered (or didn't).
enum GroupOutcome<T> {
    /// Some replica answered.
    Ok(T),
    /// Every replica was unreachable (transport-class failures or
    /// breakers open): the scope is missing from the answer.
    Unreachable,
    /// A reachable replica answered with a catalog-side error —
    /// deterministic, so it propagates instead of degrading.
    Failed(CatalogError),
}

/// A routed answer that may be missing scopes: `value` covers every
/// reachable scope, `missing` names (in shard-map order) the scopes no
/// replica could answer for. The strict query methods return
/// [`CatalogError::Degraded`] instead; this type is for callers that
/// prefer a partial answer over none.
#[derive(Debug, Clone)]
pub struct Routed<T> {
    /// The answer over every reachable scope.
    pub value: T,
    /// Scopes with no reachable replica (empty = complete).
    pub missing: Vec<TileScope>,
}

impl<T> Routed<T> {
    /// True when every owned scope answered.
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty()
    }

    /// The value if complete, else a typed [`CatalogError::Degraded`]
    /// naming the missing scopes.
    pub fn into_complete(self) -> Result<T, CatalogError> {
        if self.missing.is_empty() {
            Ok(self.value)
        } else {
            Err(CatalogError::Degraded {
                missing: self.missing,
            })
        }
    }
}

/// A client-side router over shard servers that answers queries
/// bit-identically to one in-process catalog holding all the data.
///
/// Construction verifies the shard map: scopes must be pairwise
/// disjoint (no prefix may contain another's), every shard must serve
/// the same grid, and — when the prefix lengths make the check cheap —
/// the scopes must jointly cover the whole quadkey space at the grid's
/// level, so no tile silently belongs to nobody.
///
/// Each scope may be served by several replicas
/// ([`ShardRouter::connect_replicated`]): queries fail over within the
/// group, per-replica circuit breakers keep traffic off dead servers,
/// and an optional background prober pings tripped replicas back into
/// rotation. The `*_routed` query methods return [`Routed`] partial
/// answers naming unreachable scopes; the plain methods demand
/// completeness and fail with [`CatalogError::Degraded`] otherwise.
pub struct ShardRouter {
    groups: Vec<Group>,
    grid: GridConfig,
    config: RouterConfig,
    prober: Option<Prober>,
    /// Routed answers that came back missing at least one scope
    /// (`router_degraded_total`).
    degraded: Counter,
}

struct Prober {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for ShardRouter {
    fn drop(&mut self) {
        if let Some(prober) = self.prober.as_mut() {
            prober.stop.store(true, Ordering::SeqCst);
            if let Some(handle) = prober.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

impl ShardRouter {
    /// Connects to every shard (one replica each, default resilience)
    /// and verifies the shard map. Any unreachable shard fails the
    /// construction.
    pub fn connect(specs: &[ShardSpec]) -> Result<ShardRouter, CatalogError> {
        let groups: Vec<ReplicaSpec> = specs
            .iter()
            .map(|s| ReplicaSpec {
                addrs: vec![s.addr.clone()],
                scope: s.scope.clone(),
            })
            .collect();
        Self::connect_replicated(&groups, RouterConfig::default())
    }

    /// Connects a replicated deployment and verifies the shard map. At
    /// least one replica per scope must be reachable (the grid must be
    /// learnable for every scope); the rest start with tripped breakers
    /// and rejoin via half-open probes.
    pub fn connect_replicated(
        specs: &[ReplicaSpec],
        config: RouterConfig,
    ) -> Result<ShardRouter, CatalogError> {
        if specs.is_empty() {
            return Err(CatalogError::Protocol("no shards configured".into()));
        }
        let label = |spec: &ReplicaSpec| spec.addrs.join("|");
        for spec in specs {
            if spec.addrs.is_empty() {
                return Err(CatalogError::Protocol(
                    "a replica group has no addresses".into(),
                ));
            }
            if spec.scope.is_all() && specs.len() > 1 {
                return Err(CatalogError::Protocol(format!(
                    "shard {} owns everything but is not the only shard",
                    label(spec)
                )));
            }
        }
        for (i, a) in specs.iter().enumerate() {
            for b in specs.iter().skip(i + 1) {
                if a.scope.overlaps(&b.scope) {
                    return Err(CatalogError::Protocol(format!(
                        "shard scopes overlap: {} and {}",
                        label(a),
                        label(b)
                    )));
                }
            }
        }
        let breaker_metrics = BreakerMetrics::new(&config.client.registry);
        let degraded = config.client.registry.counter("router_degraded_total");
        let mut groups = Vec::with_capacity(specs.len());
        let mut grid: Option<GridConfig> = None;
        for spec in specs {
            let mut replicas = Vec::with_capacity(spec.addrs.len());
            let mut connected_any = false;
            let mut last_err: Option<CatalogError> = None;
            for addr in &spec.addrs {
                let breaker = Arc::new(Breaker::new(
                    config.breaker_threshold,
                    config.breaker_cooldown,
                    breaker_metrics.clone(),
                ));
                match CatalogClient::connect_with(addr, config.client.clone()) {
                    Ok(client) => {
                        match grid {
                            None => grid = Some(*client.grid()),
                            Some(g) if g != *client.grid() => {
                                return Err(CatalogError::Protocol(
                                    "shards disagree on the catalog grid".into(),
                                ))
                            }
                            Some(_) => {}
                        }
                        connected_any = true;
                        replicas.push(Replica {
                            addr: addr.clone(),
                            client: Some(client),
                            breaker,
                        });
                    }
                    Err(e) => {
                        breaker.on_failure();
                        last_err = Some(e);
                        replicas.push(Replica {
                            addr: addr.clone(),
                            client: None,
                            breaker,
                        });
                    }
                }
            }
            if !connected_any {
                return Err(last_err.unwrap_or_else(|| {
                    CatalogError::Protocol(format!(
                        "shard {} lists no replica addresses",
                        label(spec)
                    ))
                }));
            }
            groups.push(Group {
                scope: spec.scope.clone(),
                replicas,
            });
        }
        let Some(grid) = grid else {
            return Err(CatalogError::Protocol(
                "router configured with no shards: no grid to route against".into(),
            ));
        };
        // A prefix longer than the grid level can never match a tile —
        // that shard's tiles would silently belong to nobody.
        for (i, group) in groups.iter().enumerate() {
            if let Some(p) = group
                .scope
                .prefixes()
                .iter()
                .find(|p| p.len() > grid.level as usize)
            {
                return Err(CatalogError::Protocol(format!(
                    "shard {} prefix '{p}' is deeper than the grid level {}",
                    label(&specs[i]),
                    grid.level
                )));
            }
        }
        let mut router = ShardRouter {
            groups,
            grid,
            config,
            prober: None,
            degraded,
        };
        router.check_covering()?;
        router.spawn_prober();
        Ok(router)
    }

    /// Starts the background half-open prober when configured: pings
    /// every non-`Closed` replica each interval over a fresh throwaway
    /// connection (sockets are never shared across threads) and closes
    /// its breaker on a pong.
    fn spawn_prober(&mut self) {
        let Some(interval) = self.config.probe_interval else {
            return;
        };
        let targets: Vec<(String, Arc<Breaker>)> = self
            .groups
            .iter()
            .flat_map(|g| {
                g.replicas
                    .iter()
                    .map(|r| (r.addr.clone(), Arc::clone(&r.breaker)))
            })
            .collect();
        let mut probe_config = self.config.client.clone();
        probe_config.retry = RetryPolicy::none();
        probe_config.connect_timeout = probe_config
            .connect_timeout
            .or(Some(Duration::from_millis(500)));
        probe_config.request_deadline = probe_config
            .request_deadline
            .or(Some(Duration::from_secs(1)));
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let tick = Duration::from_millis(20);
            let mut since_probe = Duration::ZERO;
            loop {
                if thread_stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(tick);
                since_probe += tick;
                if since_probe < interval {
                    continue;
                }
                since_probe = Duration::ZERO;
                for (addr, breaker) in &targets {
                    if thread_stop.load(Ordering::SeqCst) {
                        return;
                    }
                    if breaker.state() == BreakerState::Closed {
                        continue;
                    }
                    let pong = CatalogClient::connect_with(addr, probe_config.clone())
                        .and_then(|mut probe| probe.ping());
                    match pong {
                        Ok(_) => breaker.on_success(),
                        Err(_) => breaker.on_failure(),
                    }
                }
            }
        });
        self.prober = Some(Prober {
            stop,
            handle: Some(handle),
        });
    }

    /// Rejects shard maps that leave level-`L` quadkeys unowned, where
    /// `L` is the longest configured prefix (already verified to be
    /// within the grid level). Skipped only when a single shard owns
    /// everything or the check would enumerate more than 4^8 keys.
    fn check_covering(&self) -> Result<(), CatalogError> {
        if self.groups.len() == 1 && self.groups[0].scope.is_all() {
            return Ok(());
        }
        let max_len = self
            .groups
            .iter()
            .flat_map(|g| g.scope.prefixes().iter())
            .map(|p| p.len())
            .max()
            .unwrap_or(0);
        if max_len == 0 || max_len > 8 {
            return Ok(());
        }
        let mut key = vec![b'0'; max_len];
        for mut i in 0..(1usize << (2 * max_len)) {
            for digit in key.iter_mut().rev() {
                *digit = b'0' + (i & 3) as u8;
                i >>= 2;
            }
            // sanity: allow(panic_path) -- every byte of `key` was written as `b'0' + (i & 3)` just above, so the slice is always ASCII
            let key_str = std::str::from_utf8(&key).expect("ascii digits");
            let owners = self
                .groups
                .iter()
                .filter(|g| {
                    g.scope
                        .prefixes()
                        .iter()
                        .any(|p| key_str.starts_with(p.as_str()))
                })
                .count();
            if owners != 1 {
                return Err(CatalogError::Protocol(format!(
                    "quadkey prefix '{key_str}' is owned by {owners} shards (want exactly 1)"
                )));
            }
        }
        Ok(())
    }

    /// The shared grid (from the shard manifests).
    pub fn grid(&self) -> &GridConfig {
        &self.grid
    }

    /// Number of scopes (replica groups) routed over.
    pub fn n_shards(&self) -> usize {
        self.groups.len()
    }

    /// The metric registry the router's breaker-transition and
    /// degraded-answer counters record into (shared with its replica
    /// clients via [`RouterConfig::client`]).
    pub fn registry(&self) -> &MetricRegistry {
        &self.config.client.registry
    }

    /// Breaker state of every replica, grouped by scope in shard-map
    /// order — observability for operators and the chaos suite.
    pub fn replica_states(&self) -> Vec<Vec<(String, BreakerState)>> {
        self.groups
            .iter()
            .map(|g| {
                g.replicas
                    .iter()
                    .map(|r| (r.addr.clone(), r.breaker.state()))
                    .collect()
            })
            .collect()
    }

    /// Groups owning at least one of `candidates` (indices).
    fn owners_of(&self, candidates: &[crate::grid::TileId]) -> Vec<usize> {
        (0..self.groups.len())
            .filter(|&i| candidates.iter().any(|t| self.groups[i].scope.matches(t)))
            .collect()
    }

    /// Runs `run` against the replicas of group `gi`, failing over in
    /// preference order. Breakers gate which replicas see traffic;
    /// transport failures trip them, catalog-side errors don't (the
    /// server *answered*).
    fn group_call<T>(
        &mut self,
        gi: usize,
        run: impl Fn(&mut CatalogClient, &TileScope) -> Result<T, CatalogError>,
    ) -> GroupOutcome<T> {
        let client_config = self.config.client.clone();
        let grid = self.grid;
        let group = &mut self.groups[gi];
        let scope = group.scope.clone();
        let mut reachable_err: Option<CatalogError> = None;
        for replica in group.replicas.iter_mut() {
            if !replica.breaker.allows() {
                continue;
            }
            if replica.client.is_none() {
                match CatalogClient::connect_with(&replica.addr, client_config.clone()) {
                    Ok(client) if *client.grid() == grid => replica.client = Some(client),
                    Ok(_) => {
                        // A replica serving a different grid is not a
                        // failover target — misrouted data is worse
                        // than a missing scope.
                        replica.breaker.on_failure();
                        continue;
                    }
                    Err(_) => {
                        replica.breaker.on_failure();
                        continue;
                    }
                }
            }
            let Some(client) = replica.client.as_mut() else {
                continue;
            };
            match run(client, &scope) {
                Ok(v) => {
                    replica.breaker.on_success();
                    return GroupOutcome::Ok(v);
                }
                Err(e)
                    if CatalogClient::is_transport(&e)
                        || matches!(e, CatalogError::RetriesExhausted { .. }) =>
                {
                    replica.breaker.on_failure();
                    replica.client = None;
                }
                Err(e) => {
                    // Reachable but failing catalog-side: deterministic,
                    // still worth trying a healthier replica.
                    replica.breaker.on_success();
                    reachable_err = Some(e);
                }
            }
        }
        match reachable_err {
            Some(e) => GroupOutcome::Failed(e),
            None => GroupOutcome::Unreachable,
        }
    }

    /// Verifies shard answers cover disjoint tiles, then folds.
    fn merge_partials(per_shard: Vec<Vec<TilePartial>>) -> Result<QuerySummary, CatalogError> {
        let mut seen: BTreeSet<crate::grid::TileId> = BTreeSet::new();
        let mut all: Vec<TilePartial> = Vec::new();
        for partials in per_shard {
            for p in partials {
                if !seen.insert(p.tile) {
                    return Err(CatalogError::Protocol(
                        "two shards answered for the same tile".into(),
                    ));
                }
                all.push(p);
            }
        }
        Ok(QuerySummary::from_partials(all))
    }

    /// Fans `run` out to the groups in `owners`, collecting per-group
    /// results and the scopes that were unreachable.
    fn fan_out<T>(
        &mut self,
        owners: Vec<usize>,
        run: impl Fn(&mut CatalogClient, &TileScope) -> Result<T, CatalogError>,
    ) -> Result<(Vec<T>, Vec<TileScope>), CatalogError> {
        let mut results = Vec::with_capacity(owners.len());
        let mut missing = Vec::new();
        for i in owners {
            match self.group_call(i, &run) {
                GroupOutcome::Ok(v) => results.push(v),
                GroupOutcome::Unreachable => missing.push(self.groups[i].scope.clone()),
                GroupOutcome::Failed(e) => return Err(e),
            }
        }
        if !missing.is_empty() {
            self.degraded.inc();
        }
        Ok((results, missing))
    }

    /// Routed [`crate::Catalog::query_rect`] with degradation: merges
    /// bit-identically over every reachable owner scope and names the
    /// unreachable ones.
    pub fn query_rect_routed(
        &mut self,
        rect: &MapRect,
        time: TimeRange,
    ) -> Result<Routed<QuerySummary>, CatalogError> {
        let candidates = self.grid.tiles_overlapping(rect);
        let owners = self.owners_of(&candidates);
        let (per_shard, missing) =
            self.fan_out(owners, |c, scope| c.query_rect_partials(rect, time, scope))?;
        Ok(Routed {
            value: Self::merge_partials(per_shard)?,
            missing,
        })
    }

    /// Routed [`crate::Catalog::query_rect`] — fans out to the shards owning
    /// candidate tiles and merges bit-identically; every owner scope
    /// must be reachable.
    pub fn query_rect(
        &mut self,
        rect: &MapRect,
        time: TimeRange,
    ) -> Result<QuerySummary, CatalogError> {
        self.query_rect_routed(rect, time)?.into_complete()
    }

    /// Routed [`crate::Catalog::query_bbox`] with degradation.
    pub fn query_bbox_routed(
        &mut self,
        bbox: &BoundingBox,
        time: TimeRange,
    ) -> Result<Routed<QuerySummary>, CatalogError> {
        let cover = self.grid.bbox_cover(bbox);
        let candidates = self.grid.tiles_overlapping(&cover);
        let owners = self.owners_of(&candidates);
        let (per_shard, missing) =
            self.fan_out(owners, |c, scope| c.query_bbox_partials(bbox, time, scope))?;
        Ok(Routed {
            value: Self::merge_partials(per_shard)?,
            missing,
        })
    }

    /// Routed [`crate::Catalog::query_bbox`].
    pub fn query_bbox(
        &mut self,
        bbox: &BoundingBox,
        time: TimeRange,
    ) -> Result<QuerySummary, CatalogError> {
        self.query_bbox_routed(bbox, time)?.into_complete()
    }

    /// Routed [`crate::Catalog::query_point`] with degradation — exactly one
    /// group owns the point's tile, so a degraded answer carries
    /// `value: None` and names that scope.
    pub fn query_point_routed(
        &mut self,
        point: GeoPoint,
        time: TimeRange,
    ) -> Result<Routed<Option<CellSummary>>, CatalogError> {
        let m = EPSG_3976.forward(point);
        let complete = |value| Routed {
            value,
            missing: Vec::new(),
        };
        let Some((tile, _)) = self.grid.locate(m) else {
            return Ok(complete(None));
        };
        let Some(i) = (0..self.groups.len()).find(|&i| self.groups[i].scope.matches(&tile)) else {
            return Ok(complete(None));
        };
        match self.group_call(i, |c, scope| c.query_point_scoped(point, time, scope)) {
            GroupOutcome::Ok(cell) => Ok(complete(cell)),
            GroupOutcome::Unreachable => {
                self.degraded.inc();
                Ok(Routed {
                    value: None,
                    missing: vec![self.groups[i].scope.clone()],
                })
            }
            GroupOutcome::Failed(e) => Err(e),
        }
    }

    /// Routed [`crate::Catalog::query_point`] — exactly one shard owns the
    /// point's tile.
    pub fn query_point(
        &mut self,
        point: GeoPoint,
        time: TimeRange,
    ) -> Result<Option<CellSummary>, CatalogError> {
        self.query_point_routed(point, time)?.into_complete()
    }

    /// Routed [`crate::Catalog::query_time_range`] with degradation.
    pub fn query_time_range_routed(
        &mut self,
        time: TimeRange,
    ) -> Result<Routed<Vec<(TimeKey, QuerySummary)>>, CatalogError> {
        let owners: Vec<usize> = (0..self.groups.len()).collect();
        let (per_shard, missing) =
            self.fan_out(owners, |c, scope| c.query_time_range_partials(time, scope))?;
        let mut records: Vec<(TimeKey, TilePartial)> = Vec::new();
        let mut seen: BTreeSet<(TimeKey, crate::grid::TileId)> = BTreeSet::new();
        for shard_records in per_shard {
            for (t, p) in shard_records {
                if !seen.insert((t, p.tile)) {
                    return Err(CatalogError::Protocol(
                        "two shards answered for the same layer tile".into(),
                    ));
                }
                records.push((t, p));
            }
        }
        Ok(Routed {
            value: fold_layer_records(records),
            missing,
        })
    }

    /// Routed [`crate::Catalog::query_time_range`].
    pub fn query_time_range(
        &mut self,
        time: TimeRange,
    ) -> Result<Vec<(TimeKey, QuerySummary)>, CatalogError> {
        self.query_time_range_routed(time)?.into_complete()
    }

    /// Routed [`crate::Catalog::query_cells`] with degradation — shard
    /// results concatenate (scopes are spatial, so a tile's layers
    /// never split) and sort by `(tile, cell)` exactly like the local
    /// composite.
    pub fn query_cells_routed(
        &mut self,
        rect: &MapRect,
        time: TimeRange,
    ) -> Result<Routed<Vec<CellSummary>>, CatalogError> {
        let candidates = self.grid.tiles_overlapping(rect);
        let owners = self.owners_of(&candidates);
        let (per_shard, missing) =
            self.fan_out(owners, |c, scope| c.query_cells_scoped(rect, time, scope))?;
        let mut cells: Vec<CellSummary> = per_shard.into_iter().flatten().collect();
        cells.sort_unstable_by_key(|c| (c.tile, c.cell));
        if cells
            .windows(2)
            .any(|w| (w[0].tile, w[0].cell) == (w[1].tile, w[1].cell))
        {
            return Err(CatalogError::Protocol(
                "two shards answered for the same cell".into(),
            ));
        }
        Ok(Routed {
            value: cells,
            missing,
        })
    }

    /// Routed [`crate::Catalog::query_cells`].
    pub fn query_cells(
        &mut self,
        rect: &MapRect,
        time: TimeRange,
    ) -> Result<Vec<CellSummary>, CatalogError> {
        self.query_cells_routed(rect, time)?.into_complete()
    }

    /// Routed [`crate::Catalog::stats`] with degradation: tile/sample counts
    /// sum across reachable shards, layer sets union, cache counters
    /// sum.
    pub fn stats_routed(&mut self) -> Result<Routed<CatalogStats>, CatalogError> {
        let owners: Vec<usize> = (0..self.groups.len()).collect();
        let (per_shard, missing) = self.fan_out(owners, |c, scope| c.scoped_stats(scope))?;
        let mut n_tiles = 0usize;
        let mut n_samples = 0usize;
        let mut n_thickness = 0usize;
        let mut cache = crate::cache::CacheStats::default();
        let mut layers: BTreeSet<TimeKey> = BTreeSet::new();
        for (stats, shard_layers) in per_shard {
            n_tiles += stats.n_tiles;
            n_samples += stats.n_samples;
            n_thickness += stats.n_thickness;
            cache.hits += stats.cache.hits;
            cache.misses += stats.cache.misses;
            cache.evictions += stats.cache.evictions;
            layers.extend(shard_layers);
        }
        Ok(Routed {
            value: CatalogStats {
                n_layers: layers.len(),
                n_tiles,
                n_samples,
                n_thickness,
                cache,
            },
            missing,
        })
    }

    /// Routed [`crate::Catalog::stats`]: tile/sample counts sum across shards,
    /// layer sets union, cache counters sum.
    pub fn stats(&mut self) -> Result<CatalogStats, CatalogError> {
        self.stats_routed()?.into_complete()
    }

    /// Routed [`crate::Catalog::validate`] with degradation; the value is
    /// total tiles checked across reachable shards.
    pub fn validate_routed(&mut self) -> Result<Routed<usize>, CatalogError> {
        let owners: Vec<usize> = (0..self.groups.len()).collect();
        let (per_shard, missing) = self.fan_out(owners, |c, scope| c.validate_scoped(scope))?;
        Ok(Routed {
            value: per_shard.into_iter().sum(),
            missing,
        })
    }

    /// Routed [`crate::Catalog::validate`]; returns total tiles checked.
    pub fn validate(&mut self) -> Result<usize, CatalogError> {
        self.validate_routed()?.into_complete()
    }
}

// ---------------------------------------------------------------------------
// Shard-partitioned ingest.
// ---------------------------------------------------------------------------

/// Splits one beam product into per-shard products by the owning scope
/// of each point's tile: point `i` of the input lands in output `j` iff
/// `scopes[j]` owns the tile its projected position falls in. Points
/// outside the grid domain (or outside every scope) are dropped —
/// exactly the points a direct [`crate::Catalog::ingest_beam`] would count out
/// of domain. Relative point order is preserved, so per-shard catalogs
/// ingest the same canonical samples a monolithic catalog would.
pub fn partition_product(
    grid: &GridConfig,
    scopes: &[TileScope],
    product: &FreeboardProduct,
) -> Vec<FreeboardProduct> {
    let mut outputs: Vec<Vec<FreeboardPoint>> = vec![Vec::new(); scopes.len()];
    for p in &product.points {
        let m = EPSG_3976.forward(GeoPoint::new(p.lat, p.lon));
        let Some((tile, _)) = grid.locate(m) else {
            continue;
        };
        if let Some(j) = scopes.iter().position(|s| s.matches(&tile)) {
            outputs[j].push(*p);
        }
    }
    outputs
        .into_iter()
        .map(|points| FreeboardProduct {
            name: product.name.clone(),
            points,
        })
        .collect()
}

/// [`partition_product`] over a fleet run's per-beam products: returns
/// one product list per scope, ready for per-shard
/// [`crate::Catalog::ingest_beam`] calls keyed by the original granule/beam.
pub fn partition_products(
    grid: &GridConfig,
    scopes: &[TileScope],
    products: &[seaice::fleet::BeamProducts],
) -> Vec<Vec<(String, usize, FreeboardProduct)>> {
    let mut out: Vec<Vec<(String, usize, FreeboardProduct)>> = vec![Vec::new(); scopes.len()];
    for bp in products {
        let split = partition_product(grid, scopes, &bp.freeboard);
        for (j, product) in split.into_iter().enumerate() {
            if !product.points.is_empty() {
                out[j].push((bp.granule_id.clone(), bp.beam.index(), product));
            }
        }
    }
    out
}

/// [`partition_product`] for thickness-enriched beams: splits one
/// [`seaice_products::BeamThickness`] into per-shard beams by the owning
/// scope of each point's tile, preserving the snow/thickness fields
/// verbatim so per-shard [`crate::Catalog::ingest_thickness_beam`] calls
/// land the same canonical samples a monolithic catalog would.
pub fn partition_thickness(
    grid: &GridConfig,
    scopes: &[TileScope],
    beam: &seaice_products::BeamThickness,
) -> Vec<seaice_products::BeamThickness> {
    let mut outputs: Vec<Vec<seaice_products::ProductPoint>> = vec![Vec::new(); scopes.len()];
    for p in &beam.points {
        let m = EPSG_3976.forward(GeoPoint::new(p.lat, p.lon));
        let Some((tile, _)) = grid.locate(m) else {
            continue;
        };
        if let Some(j) = scopes.iter().position(|s| s.matches(&tile)) {
            outputs[j].push(*p);
        }
    }
    outputs
        .into_iter()
        .map(|points| seaice_products::BeamThickness {
            granule_id: beam.granule_id.clone(),
            beam: beam.beam,
            snow_model: beam.snow_model.clone(),
            points,
        })
        .collect()
}
