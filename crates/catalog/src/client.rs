//! Remote catalog access: a framed TCP client and the quadkey-prefix
//! shard router.
//!
//! [`CatalogClient`] speaks the `docs/PROTOCOL.md` wire protocol to one
//! [`crate::server::CatalogServer`] and mirrors the [`crate::Catalog`] query
//! API. [`ShardRouter`] composes several clients into one logical
//! catalog: each shard owns a set of quadkey prefixes ([`TileScope`]),
//! the router fans a query out to the shards whose tiles it could
//! touch, and merges the returned per-tile partials with the *same
//! fold* a local query uses — so the routed answer is bit-identical to
//! running the query on a single in-process catalog holding all the
//! data (pinned by `tests/served_equivalence.rs`).

use std::collections::{BTreeMap, BTreeSet};
use std::net::TcpStream;

use icesat_geo::{BoundingBox, GeoPoint, EPSG_3976};
use seaice::freeboard::{FreeboardPoint, FreeboardProduct};

use crate::grid::{GridConfig, MapRect, TileScope, TimeKey, TimeRange};
use crate::store::{CatalogStats, CellSummary, QuerySummary, TilePartial};
use crate::wire::{self, Request, Response};
use crate::CatalogError;

/// A client connection to one catalog server.
///
/// One request is in flight at a time (`&mut self`); open one client
/// per reader thread for concurrency. The constructor performs the
/// manifest handshake, so the grid is available immediately.
///
/// ```
/// use std::sync::Arc;
/// use seaice_catalog::{Catalog, CatalogClient, CatalogServer, GridConfig, TimeRange};
/// use icesat_geo::MapPoint;
///
/// let dir = std::env::temp_dir().join(format!("client_doc_{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let grid = GridConfig::around(MapPoint::new(0.0, -1_000_000.0), 50_000.0);
/// let catalog = Arc::new(Catalog::create(&dir, grid).unwrap());
/// let server = CatalogServer::serve(catalog, "127.0.0.1:0").unwrap();
///
/// let mut client = CatalogClient::connect(&server.addr().to_string()).unwrap();
/// let domain = client.grid().domain(); // from the manifest handshake
/// let summary = client.query_rect(&domain, TimeRange::all()).unwrap();
/// assert_eq!(summary.n_samples, 0); // empty store, served answer
///
/// server.shutdown();
/// # let _ = std::fs::remove_dir_all(&dir);
/// ```
pub struct CatalogClient {
    stream: TcpStream,
    grid: GridConfig,
}

impl CatalogClient {
    /// Connects and performs the manifest handshake.
    pub fn connect(addr: &str) -> Result<CatalogClient, CatalogError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = CatalogClient {
            stream,
            // Placeholder until the handshake answers.
            grid: GridConfig::around(icesat_geo::MapPoint::new(0.0, 0.0), 1.0),
        };
        match client.exchange_scalar(&Request::Manifest)? {
            Response::Manifest(grid) => client.grid = grid,
            other => return Err(unexpected(&other)),
        }
        Ok(client)
    }

    /// The served catalog's grid (from the connect-time handshake).
    pub fn grid(&self) -> &GridConfig {
        &self.grid
    }

    // -- Scoped partial/record transport --------------------------------

    /// Sends `request` and reads exactly one response frame.
    fn exchange_scalar(&mut self, request: &Request) -> Result<Response, CatalogError> {
        wire::write_message(&mut self.stream, request)?;
        self.next_response()
    }

    fn next_response(&mut self) -> Result<Response, CatalogError> {
        match wire::read_message::<Response>(&mut self.stream)? {
            Some(Response::Error { code, message }) => Err(CatalogError::Remote { code, message }),
            Some(response) => Ok(response),
            None => Err(CatalogError::Protocol(
                "server closed the connection mid-exchange".into(),
            )),
        }
    }

    /// Sends `request` and collects a streamed batch response,
    /// verifying the `Done` trailer's record count.
    fn collect_stream<T>(
        &mut self,
        request: &Request,
        mut take: impl FnMut(Response) -> Result<Vec<T>, CatalogError>,
    ) -> Result<Vec<T>, CatalogError> {
        wire::write_message(&mut self.stream, request)?;
        let mut records: Vec<T> = Vec::new();
        loop {
            match self.next_response()? {
                Response::Done { n_records } => {
                    if records.len() as u64 != n_records {
                        return Err(CatalogError::Protocol(format!(
                            "stream advertised {n_records} records but carried {}",
                            records.len()
                        )));
                    }
                    return Ok(records);
                }
                other => records.append(&mut take(other)?),
            }
        }
    }

    /// Scoped per-tile partials of a rect query (the shard-router
    /// transport behind [`CatalogClient::query_rect`]).
    pub fn query_rect_partials(
        &mut self,
        rect: &MapRect,
        time: TimeRange,
        scope: &TileScope,
    ) -> Result<Vec<TilePartial>, CatalogError> {
        self.collect_stream(
            &Request::QueryRect {
                rect: *rect,
                time,
                scope: scope.clone(),
            },
            |r| match r {
                Response::TileBatch(batch) => Ok(batch),
                other => Err(unexpected(&other)),
            },
        )
    }

    /// Scoped per-tile partials of a bbox query.
    pub fn query_bbox_partials(
        &mut self,
        bbox: &BoundingBox,
        time: TimeRange,
        scope: &TileScope,
    ) -> Result<Vec<TilePartial>, CatalogError> {
        self.collect_stream(
            &Request::QueryBbox {
                bbox: *bbox,
                time,
                scope: scope.clone(),
            },
            |r| match r {
                Response::TileBatch(batch) => Ok(batch),
                other => Err(unexpected(&other)),
            },
        )
    }

    /// Scoped per-layer, per-tile partials of a time-range query.
    pub fn query_time_range_partials(
        &mut self,
        time: TimeRange,
        scope: &TileScope,
    ) -> Result<Vec<(TimeKey, TilePartial)>, CatalogError> {
        self.collect_stream(
            &Request::QueryTimeRange {
                time,
                scope: scope.clone(),
            },
            |r| match r {
                Response::LayerBatch(batch) => Ok(batch),
                other => Err(unexpected(&other)),
            },
        )
    }

    /// Scoped gridded composite cells.
    pub fn query_cells_scoped(
        &mut self,
        rect: &MapRect,
        time: TimeRange,
        scope: &TileScope,
    ) -> Result<Vec<CellSummary>, CatalogError> {
        self.collect_stream(
            &Request::QueryCells {
                rect: *rect,
                time,
                scope: scope.clone(),
            },
            |r| match r {
                Response::CellBatch(batch) => Ok(batch),
                other => Err(unexpected(&other)),
            },
        )
    }

    /// Scoped point probe.
    pub fn query_point_scoped(
        &mut self,
        point: GeoPoint,
        time: TimeRange,
        scope: &TileScope,
    ) -> Result<Option<CellSummary>, CatalogError> {
        match self.exchange_scalar(&Request::QueryPoint {
            point,
            time,
            scope: scope.clone(),
        })? {
            Response::Point(cell) => Ok(cell),
            other => Err(unexpected(&other)),
        }
    }

    /// Scoped counters + chronological layer list.
    pub fn scoped_stats(
        &mut self,
        scope: &TileScope,
    ) -> Result<(CatalogStats, Vec<TimeKey>), CatalogError> {
        match self.exchange_scalar(&Request::Stats {
            scope: scope.clone(),
        })? {
            Response::Stats { stats, layers } => Ok((stats, layers)),
            other => Err(unexpected(&other)),
        }
    }

    /// Scoped full-store invariant check; returns tiles checked.
    pub fn validate_scoped(&mut self, scope: &TileScope) -> Result<usize, CatalogError> {
        match self.exchange_scalar(&Request::Validate {
            scope: scope.clone(),
        })? {
            Response::Done { n_records } => Ok(n_records as usize),
            other => Err(unexpected(&other)),
        }
    }

    // -- The Catalog-mirroring convenience API ---------------------------

    /// Served [`crate::Catalog::query_rect`] — same fold, same bits.
    pub fn query_rect(
        &mut self,
        rect: &MapRect,
        time: TimeRange,
    ) -> Result<QuerySummary, CatalogError> {
        Ok(QuerySummary::from_partials(self.query_rect_partials(
            rect,
            time,
            &TileScope::all(),
        )?))
    }

    /// Served [`crate::Catalog::query_bbox`].
    pub fn query_bbox(
        &mut self,
        bbox: &BoundingBox,
        time: TimeRange,
    ) -> Result<QuerySummary, CatalogError> {
        Ok(QuerySummary::from_partials(self.query_bbox_partials(
            bbox,
            time,
            &TileScope::all(),
        )?))
    }

    /// Served [`crate::Catalog::query_point`].
    pub fn query_point(
        &mut self,
        point: GeoPoint,
        time: TimeRange,
    ) -> Result<Option<CellSummary>, CatalogError> {
        self.query_point_scoped(point, time, &TileScope::all())
    }

    /// Served [`crate::Catalog::query_time_range`].
    pub fn query_time_range(
        &mut self,
        time: TimeRange,
    ) -> Result<Vec<(TimeKey, QuerySummary)>, CatalogError> {
        Ok(fold_layer_records(
            self.query_time_range_partials(time, &TileScope::all())?,
        ))
    }

    /// Served [`crate::Catalog::query_cells`].
    pub fn query_cells(
        &mut self,
        rect: &MapRect,
        time: TimeRange,
    ) -> Result<Vec<CellSummary>, CatalogError> {
        self.query_cells_scoped(rect, time, &TileScope::all())
    }

    /// Served [`crate::Catalog::stats`].
    pub fn stats(&mut self) -> Result<CatalogStats, CatalogError> {
        Ok(self.scoped_stats(&TileScope::all())?.0)
    }

    /// Served [`crate::Catalog::validate`].
    pub fn validate(&mut self) -> Result<(), CatalogError> {
        self.validate_scoped(&TileScope::all()).map(|_| ())
    }
}

fn unexpected(response: &Response) -> CatalogError {
    CatalogError::Protocol(format!("unexpected response frame: {response:?}"))
}

/// Groups `(layer, partial)` records by layer and folds each layer with
/// the canonical summary fold, chronological output — the shared merge
/// behind local, single-served, and sharded time-range queries.
fn fold_layer_records(records: Vec<(TimeKey, TilePartial)>) -> Vec<(TimeKey, QuerySummary)> {
    let mut by_layer: BTreeMap<TimeKey, Vec<TilePartial>> = BTreeMap::new();
    for (time, partial) in records {
        by_layer.entry(time).or_default().push(partial);
    }
    by_layer
        .into_iter()
        .map(|(time, partials)| (time, QuerySummary::from_partials(partials)))
        .collect()
}

// ---------------------------------------------------------------------------
// Shard routing.
// ---------------------------------------------------------------------------

/// One shard of a sharded catalog deployment: a server address plus the
/// quadkey prefixes it owns.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Server address (`host:port`).
    pub addr: String,
    /// The quadkey prefixes this shard owns.
    pub scope: TileScope,
}

impl ShardSpec {
    /// A spec from an address and prefix strings.
    pub fn new(addr: impl Into<String>, prefixes: &[&str]) -> Result<ShardSpec, CatalogError> {
        Ok(ShardSpec {
            addr: addr.into(),
            scope: TileScope::of(prefixes)?,
        })
    }
}

/// A client-side router over shard servers that answers queries
/// bit-identically to one in-process catalog holding all the data.
///
/// Construction verifies the shard map: scopes must be pairwise
/// disjoint (no prefix may contain another's), every shard must serve
/// the same grid, and — when the prefix lengths make the check cheap —
/// the scopes must jointly cover the whole quadkey space at the grid's
/// level, so no tile silently belongs to nobody.
pub struct ShardRouter {
    shards: Vec<(CatalogClient, TileScope)>,
    grid: GridConfig,
}

impl ShardRouter {
    /// Connects to every shard and verifies the shard map.
    pub fn connect(specs: &[ShardSpec]) -> Result<ShardRouter, CatalogError> {
        if specs.is_empty() {
            return Err(CatalogError::Protocol("no shards configured".into()));
        }
        for spec in specs {
            if spec.scope.is_all() && specs.len() > 1 {
                return Err(CatalogError::Protocol(format!(
                    "shard {} owns everything but is not the only shard",
                    spec.addr
                )));
            }
        }
        for (i, a) in specs.iter().enumerate() {
            for b in specs.iter().skip(i + 1) {
                if a.scope.overlaps(&b.scope) {
                    return Err(CatalogError::Protocol(format!(
                        "shard scopes overlap: {} and {}",
                        a.addr, b.addr
                    )));
                }
            }
        }
        let mut shards = Vec::with_capacity(specs.len());
        for spec in specs {
            shards.push((CatalogClient::connect(&spec.addr)?, spec.scope.clone()));
        }
        let grid = *shards[0].0.grid();
        for (client, _) in &shards {
            if *client.grid() != grid {
                return Err(CatalogError::Protocol(
                    "shards disagree on the catalog grid".into(),
                ));
            }
        }
        // A prefix longer than the grid level can never match a tile —
        // that shard's tiles would silently belong to nobody.
        for (i, (_, scope)) in shards.iter().enumerate() {
            if let Some(p) = scope
                .prefixes()
                .iter()
                .find(|p| p.len() > grid.level as usize)
            {
                return Err(CatalogError::Protocol(format!(
                    "shard {} prefix '{p}' is deeper than the grid level {}",
                    specs[i].addr, grid.level
                )));
            }
        }
        let router = ShardRouter { shards, grid };
        router.check_covering()?;
        Ok(router)
    }

    /// Rejects shard maps that leave level-`L` quadkeys unowned, where
    /// `L` is the longest configured prefix (already verified to be
    /// within the grid level). Skipped only when a single shard owns
    /// everything or the check would enumerate more than 4^8 keys.
    fn check_covering(&self) -> Result<(), CatalogError> {
        if self.shards.len() == 1 && self.shards[0].1.is_all() {
            return Ok(());
        }
        let max_len = self
            .shards
            .iter()
            .flat_map(|(_, s)| s.prefixes().iter())
            .map(|p| p.len())
            .max()
            .unwrap_or(0);
        if max_len == 0 || max_len > 8 {
            return Ok(());
        }
        let mut key = vec![b'0'; max_len];
        for mut i in 0..(1usize << (2 * max_len)) {
            for digit in key.iter_mut().rev() {
                *digit = b'0' + (i & 3) as u8;
                i >>= 2;
            }
            let key_str = std::str::from_utf8(&key).expect("ascii digits");
            let owners = self
                .shards
                .iter()
                .filter(|(_, scope)| {
                    scope
                        .prefixes()
                        .iter()
                        .any(|p| key_str.starts_with(p.as_str()))
                })
                .count();
            if owners != 1 {
                return Err(CatalogError::Protocol(format!(
                    "quadkey prefix '{key_str}' is owned by {owners} shards (want exactly 1)"
                )));
            }
        }
        Ok(())
    }

    /// The shared grid (from the shard manifests).
    pub fn grid(&self) -> &GridConfig {
        &self.grid
    }

    /// Number of shards routed over.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shards owning at least one of `candidates` (indices).
    fn owners_of(&self, candidates: &[crate::grid::TileId]) -> Vec<usize> {
        (0..self.shards.len())
            .filter(|&i| candidates.iter().any(|t| self.shards[i].1.matches(t)))
            .collect()
    }

    /// Verifies shard answers cover disjoint tiles, then folds.
    fn merge_partials(per_shard: Vec<Vec<TilePartial>>) -> Result<QuerySummary, CatalogError> {
        let mut seen: BTreeSet<crate::grid::TileId> = BTreeSet::new();
        let mut all: Vec<TilePartial> = Vec::new();
        for partials in per_shard {
            for p in partials {
                if !seen.insert(p.tile) {
                    return Err(CatalogError::Protocol(
                        "two shards answered for the same tile".into(),
                    ));
                }
                all.push(p);
            }
        }
        Ok(QuerySummary::from_partials(all))
    }

    /// Routed [`crate::Catalog::query_rect`] — fans out to the shards owning
    /// candidate tiles and merges bit-identically.
    pub fn query_rect(
        &mut self,
        rect: &MapRect,
        time: TimeRange,
    ) -> Result<QuerySummary, CatalogError> {
        let candidates = self.grid.tiles_overlapping(rect);
        let owners = self.owners_of(&candidates);
        let mut per_shard = Vec::with_capacity(owners.len());
        for i in owners {
            let scope = self.shards[i].1.clone();
            per_shard.push(self.shards[i].0.query_rect_partials(rect, time, &scope)?);
        }
        Self::merge_partials(per_shard)
    }

    /// Routed [`crate::Catalog::query_bbox`].
    pub fn query_bbox(
        &mut self,
        bbox: &BoundingBox,
        time: TimeRange,
    ) -> Result<QuerySummary, CatalogError> {
        let cover = self.grid.bbox_cover(bbox);
        let candidates = self.grid.tiles_overlapping(&cover);
        let owners = self.owners_of(&candidates);
        let mut per_shard = Vec::with_capacity(owners.len());
        for i in owners {
            let scope = self.shards[i].1.clone();
            per_shard.push(self.shards[i].0.query_bbox_partials(bbox, time, &scope)?);
        }
        Self::merge_partials(per_shard)
    }

    /// Routed [`crate::Catalog::query_point`] — exactly one shard owns the
    /// point's tile.
    pub fn query_point(
        &mut self,
        point: GeoPoint,
        time: TimeRange,
    ) -> Result<Option<CellSummary>, CatalogError> {
        let m = EPSG_3976.forward(point);
        let Some((tile, _)) = self.grid.locate(m) else {
            return Ok(None);
        };
        let Some(i) = (0..self.shards.len()).find(|&i| self.shards[i].1.matches(&tile)) else {
            return Ok(None);
        };
        let scope = self.shards[i].1.clone();
        self.shards[i].0.query_point_scoped(point, time, &scope)
    }

    /// Routed [`crate::Catalog::query_time_range`].
    pub fn query_time_range(
        &mut self,
        time: TimeRange,
    ) -> Result<Vec<(TimeKey, QuerySummary)>, CatalogError> {
        let mut records: Vec<(TimeKey, TilePartial)> = Vec::new();
        let mut seen: BTreeSet<(TimeKey, crate::grid::TileId)> = BTreeSet::new();
        for i in 0..self.shards.len() {
            let scope = self.shards[i].1.clone();
            for (t, p) in self.shards[i].0.query_time_range_partials(time, &scope)? {
                if !seen.insert((t, p.tile)) {
                    return Err(CatalogError::Protocol(
                        "two shards answered for the same layer tile".into(),
                    ));
                }
                records.push((t, p));
            }
        }
        Ok(fold_layer_records(records))
    }

    /// Routed [`crate::Catalog::query_cells`] — shard results concatenate
    /// (scopes are spatial, so a tile's layers never split) and sort by
    /// `(tile, cell)` exactly like the local composite.
    pub fn query_cells(
        &mut self,
        rect: &MapRect,
        time: TimeRange,
    ) -> Result<Vec<CellSummary>, CatalogError> {
        let candidates = self.grid.tiles_overlapping(rect);
        let owners = self.owners_of(&candidates);
        let mut cells: Vec<CellSummary> = Vec::new();
        for i in owners {
            let scope = self.shards[i].1.clone();
            cells.extend(self.shards[i].0.query_cells_scoped(rect, time, &scope)?);
        }
        cells.sort_unstable_by_key(|c| (c.tile, c.cell));
        if cells
            .windows(2)
            .any(|w| (w[0].tile, w[0].cell) == (w[1].tile, w[1].cell))
        {
            return Err(CatalogError::Protocol(
                "two shards answered for the same cell".into(),
            ));
        }
        Ok(cells)
    }

    /// Routed [`crate::Catalog::stats`]: tile/sample counts sum across shards,
    /// layer sets union, cache counters sum.
    pub fn stats(&mut self) -> Result<CatalogStats, CatalogError> {
        let mut n_tiles = 0usize;
        let mut n_samples = 0usize;
        let mut n_thickness = 0usize;
        let mut cache = crate::cache::CacheStats::default();
        let mut layers: BTreeSet<TimeKey> = BTreeSet::new();
        for i in 0..self.shards.len() {
            let scope = self.shards[i].1.clone();
            let (stats, shard_layers) = self.shards[i].0.scoped_stats(&scope)?;
            n_tiles += stats.n_tiles;
            n_samples += stats.n_samples;
            n_thickness += stats.n_thickness;
            cache.hits += stats.cache.hits;
            cache.misses += stats.cache.misses;
            cache.evictions += stats.cache.evictions;
            layers.extend(shard_layers);
        }
        Ok(CatalogStats {
            n_layers: layers.len(),
            n_tiles,
            n_samples,
            n_thickness,
            cache,
        })
    }

    /// Routed [`crate::Catalog::validate`]; returns total tiles checked.
    pub fn validate(&mut self) -> Result<usize, CatalogError> {
        let mut checked = 0usize;
        for i in 0..self.shards.len() {
            let scope = self.shards[i].1.clone();
            checked += self.shards[i].0.validate_scoped(&scope)?;
        }
        Ok(checked)
    }
}

// ---------------------------------------------------------------------------
// Shard-partitioned ingest.
// ---------------------------------------------------------------------------

/// Splits one beam product into per-shard products by the owning scope
/// of each point's tile: point `i` of the input lands in output `j` iff
/// `scopes[j]` owns the tile its projected position falls in. Points
/// outside the grid domain (or outside every scope) are dropped —
/// exactly the points a direct [`crate::Catalog::ingest_beam`] would count out
/// of domain. Relative point order is preserved, so per-shard catalogs
/// ingest the same canonical samples a monolithic catalog would.
pub fn partition_product(
    grid: &GridConfig,
    scopes: &[TileScope],
    product: &FreeboardProduct,
) -> Vec<FreeboardProduct> {
    let mut outputs: Vec<Vec<FreeboardPoint>> = vec![Vec::new(); scopes.len()];
    for p in &product.points {
        let m = EPSG_3976.forward(GeoPoint::new(p.lat, p.lon));
        let Some((tile, _)) = grid.locate(m) else {
            continue;
        };
        if let Some(j) = scopes.iter().position(|s| s.matches(&tile)) {
            outputs[j].push(*p);
        }
    }
    outputs
        .into_iter()
        .map(|points| FreeboardProduct {
            name: product.name.clone(),
            points,
        })
        .collect()
}

/// [`partition_product`] over a fleet run's per-beam products: returns
/// one product list per scope, ready for per-shard
/// [`crate::Catalog::ingest_beam`] calls keyed by the original granule/beam.
pub fn partition_products(
    grid: &GridConfig,
    scopes: &[TileScope],
    products: &[seaice::fleet::BeamProducts],
) -> Vec<Vec<(String, usize, FreeboardProduct)>> {
    let mut out: Vec<Vec<(String, usize, FreeboardProduct)>> = vec![Vec::new(); scopes.len()];
    for bp in products {
        let split = partition_product(grid, scopes, &bp.freeboard);
        for (j, product) in split.into_iter().enumerate() {
            if !product.points.is_empty() {
                out[j].push((bp.granule_id.clone(), bp.beam.index(), product));
            }
        }
    }
    out
}

/// [`partition_product`] for thickness-enriched beams: splits one
/// [`seaice_products::BeamThickness`] into per-shard beams by the owning
/// scope of each point's tile, preserving the snow/thickness fields
/// verbatim so per-shard [`crate::Catalog::ingest_thickness_beam`] calls
/// land the same canonical samples a monolithic catalog would.
pub fn partition_thickness(
    grid: &GridConfig,
    scopes: &[TileScope],
    beam: &seaice_products::BeamThickness,
) -> Vec<seaice_products::BeamThickness> {
    let mut outputs: Vec<Vec<seaice_products::ProductPoint>> = vec![Vec::new(); scopes.len()];
    for p in &beam.points {
        let m = EPSG_3976.forward(GeoPoint::new(p.lat, p.lon));
        let Some((tile, _)) = grid.locate(m) else {
            continue;
        };
        if let Some(j) = scopes.iter().position(|s| s.matches(&tile)) {
            outputs[j].push(*p);
        }
    }
    outputs
        .into_iter()
        .map(|points| seaice_products::BeamThickness {
            granule_id: beam.granule_id.clone(),
            beam: beam.beam,
            snow_model: beam.snow_model.clone(),
            points,
        })
        .collect()
}
