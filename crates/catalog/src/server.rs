//! The catalog's TCP serving front-end: an epoll-backed event loop
//! multiplexing pipelined requests over a fixed worker pool.
//!
//! [`CatalogServer`] puts a nonblocking listener in front of an
//! in-process [`Catalog`]. One **event-loop thread** owns every socket:
//! it accepts connections, accumulates bytes into per-connection read
//! buffers, extracts checksummed frames, and flushes queued response
//! frames back out. Decoding and answering happens on a **fixed worker
//! pool** ([`ServerConfig::workers`]): each complete frame becomes a
//! job tagged with its connection and request id, workers answer
//! concurrently, and response frames are queued per connection in
//! completion order — so responses to pipelined requests may return
//! **out of order** and streamed batches of different requests
//! **interleave**, each frame carrying the request id that routes it
//! (protocol v2, `docs/PROTOCOL.md`). A connection that never
//! pipelines observes exactly the one-exchange-at-a-time v1 behaviour.
//!
//! Summary queries are answered as **per-tile partial** streams, not
//! pre-folded summaries: the client performs the final fold with the
//! same code a local query uses ([`crate::QuerySummary::from_partials`]),
//! which is what makes a query fanned out over shard servers — or
//! multiplexed over one — bit-identical to the single-process answer.
//!
//! With [`ServerConfig::allow_writes`], the server also executes
//! **served writes** ([`crate::wire::Request::IngestSamples`] /
//! [`crate::wire::Request::IngestThickness`]): a remote producer
//! streams products at this server and the merge runs under the
//! server's own catalog handle — and therefore under its writer lease,
//! with the same self-fencing rules as an in-process ingest. Servers
//! default to read-only and answer write RPCs with a typed
//! [`crate::wire::ERR_READ_ONLY`] error frame.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mio::{Events, Interest, Poll, Token, Waker};
use seaice::artifact::{Artifact, ArtifactError};
use seaice_obs::{Counter, Gauge, Histogram, MetricRegistry, Trace, TraceLog, TraceReport};

use crate::store::Catalog;
use crate::wire::{
    self, Request, Response, BATCH_RECORDS, ERR_BAD_REQUEST, ERR_BAD_VERSION, ERR_CATALOG,
    ERR_DUP_REQUEST, ERR_READ_ONLY,
};
use crate::CatalogError;

/// Event-loop tick: bounds how stale an idle-timeout / shutdown check
/// can be when no I/O is happening.
const POLL_TICK: Duration = Duration::from_millis(50);

/// Worker threads when [`ServerConfig::workers`] is 0.
const DEFAULT_WORKERS: usize = 4;

/// Traced-request reports retained for `Introspect` scrapes.
const TRACE_LOG_CAP: usize = 32;

/// Read chunk per readable event; the read loop drains the socket, so
/// this only bounds the per-syscall transfer.
const READ_CHUNK: usize = 64 * 1024;

const LISTENER: Token = Token(0);
const WAKER: Token = Token(1);
/// Connection tokens start here (0/1 are the listener and waker).
const FIRST_CONN: usize = 2;

/// Serving configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerConfig {
    /// Drop a connection that completes no request for this long —
    /// dead or wedged clients (including slow-loris partial frames)
    /// can't pin server state forever. A connection with requests in
    /// flight or responses still flushing is never idle. `None` (the
    /// default) keeps connections for as long as the peer holds them
    /// open. Dropped connections are counted in
    /// [`ServerStats::idle_dropped`].
    pub idle_timeout: Option<Duration>,
    /// Fixed worker-pool size answering requests (0 = default 4).
    /// Requests beyond this many run concurrently queue FIFO
    /// (`server_worker_queue_depth`).
    pub workers: usize,
    /// Accept served-write RPCs (`IngestSamples` / `IngestThickness`),
    /// executing merges under this server's own catalog handle (and
    /// writer lease). Off by default: a read-only server answers write
    /// RPCs with a typed [`ERR_READ_ONLY`] error frame and the
    /// connection survives.
    pub allow_writes: bool,
}

/// Monotonic serving counters (server lifetime). Also the payload of a
/// [`crate::wire::Response::Pong`] health-probe reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests decoded and dispatched.
    pub requests: u64,
    /// Records streamed across all batch frames.
    pub records_streamed: u64,
    /// Error frames sent.
    pub errors: u64,
    /// Connections dropped by the idle timeout
    /// ([`ServerConfig::idle_timeout`]).
    pub idle_dropped: u64,
}

/// Request-kind labels, indexed by [`kind_index`]. Also the `kind`
/// label values of the per-kind `server_requests_total` /
/// `server_request_us` metrics.
const KIND_LABELS: [&str; 12] = [
    "manifest",
    "query_rect",
    "query_bbox",
    "query_point",
    "query_time_range",
    "query_cells",
    "stats",
    "validate",
    "ping",
    "introspect",
    "ingest_samples",
    "ingest_thickness",
];

/// Index of a request into the per-kind metric arrays.
fn kind_index(request: &Request) -> usize {
    match request {
        Request::Manifest => 0,
        Request::QueryRect { .. } => 1,
        Request::QueryBbox { .. } => 2,
        Request::QueryPoint { .. } => 3,
        Request::QueryTimeRange { .. } => 4,
        Request::QueryCells { .. } => 5,
        Request::Stats { .. } => 6,
        Request::Validate { .. } => 7,
        Request::Ping => 8,
        Request::Introspect => 9,
        Request::IngestSamples { .. } => 10,
        Request::IngestThickness { .. } => 11,
    }
}

/// The server's registered metric handles. The plain lifetime counters
/// (the `ServerStats` payload of a Pong) and the exposition metrics
/// are the *same cells* — the registry hands out shared handles — so a
/// health probe and an `Introspect` scrape can never disagree.
struct Counters {
    connections: Counter,
    connections_open: Gauge,
    requests: Counter,
    records_streamed: Counter,
    errors: Counter,
    idle_dropped: Counter,
    malformed: Counter,
    /// Requests accepted by the event loop whose completion has not
    /// yet been observed (`server_requests_in_flight`) — under
    /// multiplexing this exceeds the connection count.
    requests_in_flight: Gauge,
    /// Jobs waiting for a worker (`server_worker_queue_depth`).
    queue_depth: Gauge,
    requests_by_kind: [Counter; KIND_LABELS.len()],
    request_us_by_kind: [Histogram; KIND_LABELS.len()],
    trace_log: TraceLog,
}

impl Counters {
    fn new(registry: &MetricRegistry) -> Counters {
        Counters {
            connections: registry.counter("server_connections_total"),
            connections_open: registry.gauge("server_connections_open"),
            requests: registry.counter("server_requests_total"),
            records_streamed: registry.counter("server_records_streamed_total"),
            errors: registry.counter("server_errors_total"),
            idle_dropped: registry.counter("server_idle_dropped_total"),
            malformed: registry.counter("server_requests_malformed_total"),
            requests_in_flight: registry.gauge("server_requests_in_flight"),
            queue_depth: registry.gauge("server_worker_queue_depth"),
            requests_by_kind: KIND_LABELS
                .map(|kind| registry.counter_with("server_requests_total", &[("kind", kind)])),
            request_us_by_kind: KIND_LABELS
                .map(|kind| registry.histogram_with("server_request_us", &[("kind", kind)])),
            trace_log: TraceLog::new(TRACE_LOG_CAP),
        }
    }

    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.get(),
            requests: self.requests.get(),
            records_streamed: self.records_streamed.get(),
            errors: self.errors.get(),
            idle_dropped: self.idle_dropped.get(),
        }
    }
}

// ---------------------------------------------------------------------------
// Loop ↔ worker shared state.
// ---------------------------------------------------------------------------

/// Write side of one connection, shared between the event loop (which
/// flushes) and workers (which enqueue response frames).
struct ConnShared {
    id: usize,
    /// Encoded frames awaiting flush, FIFO. Each worker `send` pushes
    /// one frame, so streamed batches of different requests interleave
    /// naturally in enqueue order.
    out: Mutex<VecDeque<Vec<u8>>>,
    /// Request ids live on this connection; a reused live id is a
    /// typed [`ERR_DUP_REQUEST`] error. Shared because retirement must
    /// happen on the worker *before* the terminal response frame is
    /// enqueued — a client that has read its whole response must be
    /// free to reuse the id immediately (the v1 one-exchange idiom
    /// sends every request as id 0).
    in_flight: Mutex<HashSet<u64>>,
    /// Set by the loop when the socket dies (workers stop producing
    /// for it) or by a worker on an unrecoverable send failure (the
    /// loop then closes the socket).
    dead: AtomicBool,
}

impl ConnShared {
    fn in_flight(&self) -> std::sync::MutexGuard<'_, HashSet<u64>> {
        self.in_flight.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// One decoded-frame job for the worker pool.
struct Job {
    conn: Arc<ConnShared>,
    request_id: u64,
    trace_id: u64,
    payload: Vec<u8>,
    /// Frame-arrival instant: `server_request_us` measures arrival →
    /// response queued, so queue wait under load is part of p99.
    t0: Instant,
}

/// A worker finished (or abandoned) a request id on a connection.
struct Completion {
    conn_id: usize,
    request_id: u64,
}

struct JobQueue {
    jobs: VecDeque<Job>,
    stop: bool,
}

/// Everything the loop and the workers share.
struct Shared {
    queue: Mutex<JobQueue>,
    available: Condvar,
    completions: Mutex<Vec<Completion>>,
    /// Connections with freshly queued output, awaiting a flush.
    dirty: Mutex<Vec<usize>>,
    waker: Waker,
    shutdown: AtomicBool,
}

impl Shared {
    /// Queues `job` for the pool.
    fn submit(&self, job: Job, counters: &Counters) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.jobs.push_back(job);
        counters.queue_depth.set(q.jobs.len() as i64);
        drop(q);
        self.available.notify_one();
    }

    /// Marks a connection as having pending output and wakes the loop.
    fn mark_dirty(&self, conn_id: usize) {
        self.dirty
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(conn_id);
        let _ = self.waker.wake();
    }

    /// Reports a finished request id and wakes the loop.
    fn complete(&self, conn_id: usize, request_id: u64) {
        self.completions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Completion {
                conn_id,
                request_id,
            });
        let _ = self.waker.wake();
    }
}

// ---------------------------------------------------------------------------
// The server handle.
// ---------------------------------------------------------------------------

/// A running catalog server. Dropping it (or calling
/// [`CatalogServer::shutdown`]) stops the event loop, drains the
/// worker pool, and closes the listener.
pub struct CatalogServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    loop_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<Counters>,
    registry: MetricRegistry,
}

impl CatalogServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `catalog` with default configuration. Returns as
    /// soon as the listener is live; use [`CatalogServer::addr`] for
    /// the bound address.
    pub fn serve(catalog: Arc<Catalog>, addr: &str) -> Result<CatalogServer, CatalogError> {
        Self::serve_with(catalog, addr, ServerConfig::default())
    }

    /// [`CatalogServer::serve`] with explicit [`ServerConfig`].
    pub fn serve_with(
        catalog: Arc<Catalog>,
        addr: &str,
        config: ServerConfig,
    ) -> Result<CatalogServer, CatalogError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        // The server registers its metrics in the catalog's registry,
        // so one Introspect scrape snapshots the whole process: serve
        // path, tile cache, ingest stages, and lease events together.
        let registry = catalog.registry().clone();
        let counters = Arc::new(Counters::new(&registry));

        let mut poll = Poll::new()?;
        poll.register(&listener, LISTENER, Interest::READABLE)?;
        let waker = Waker::new(&mut poll, WAKER)?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(JobQueue {
                jobs: VecDeque::new(),
                stop: false,
            }),
            available: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            dirty: Mutex::new(Vec::new()),
            waker,
            shutdown: AtomicBool::new(false),
        });

        let n_workers = if config.workers == 0 {
            DEFAULT_WORKERS
        } else {
            config.workers
        };
        let mut workers = Vec::with_capacity(n_workers);
        for _ in 0..n_workers {
            let catalog = Arc::clone(&catalog);
            let shared = Arc::clone(&shared);
            let counters = Arc::clone(&counters);
            workers.push(std::thread::spawn(move || {
                worker_main(&catalog, &shared, &counters, config);
            }));
        }

        let loop_shared = Arc::clone(&shared);
        let loop_counters = Arc::clone(&counters);
        let loop_thread = std::thread::spawn(move || {
            event_loop(poll, listener, &loop_shared, &loop_counters, config);
        });

        Ok(CatalogServer {
            addr: local,
            shared,
            loop_thread: Some(loop_thread),
            workers,
            counters,
            registry,
        })
    }

    /// The bound listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Lifetime serving counters.
    pub fn stats(&self) -> ServerStats {
        self.counters.snapshot()
    }

    /// The metric registry this server records into (shared with its
    /// catalog). What an `Introspect` scrape renders.
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    /// The most recent traced-request breakdowns (requests whose frame
    /// carried a non-zero trace id), oldest first.
    pub fn recent_traces(&self) -> Vec<TraceReport> {
        self.counters.trace_log.recent()
    }

    /// Stops the event loop, drains the worker pool, and closes the
    /// listener. Idempotent through `Drop`.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = self.shared.waker.wake();
        if let Some(handle) = self.loop_thread.take() {
            let _ = handle.join();
        }
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.stop = true;
        }
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for CatalogServer {
    fn drop(&mut self) {
        if self.loop_thread.is_some() {
            self.stop();
        }
    }
}

// ---------------------------------------------------------------------------
// The event loop.
// ---------------------------------------------------------------------------

/// Loop-owned state of one connection. The socket and read buffer are
/// touched only here; the write queue lives in [`ConnShared`].
struct Conn {
    stream: TcpStream,
    shared: Arc<ConnShared>,
    read_buf: Vec<u8>,
    /// The frame currently flushing (popped off the shared queue) and
    /// how much of it has hit the socket.
    current: Option<(Vec<u8>, usize)>,
    /// Reset when a request completes; a connection with nothing in
    /// flight, nothing to flush, and no completion for
    /// [`ServerConfig::idle_timeout`] is dropped.
    last_activity: Instant,
    /// Whether the socket is currently registered for write interest.
    write_interest: bool,
}

impl Conn {
    fn has_output(&self) -> bool {
        self.current.is_some()
            || !self
                .shared
                .out
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
    }
}

/// Why a connection ends (all paths converge on `close_conn`).
enum Close {
    /// EOF / idle / shutdown-type endings.
    Clean,
    /// Framing violation or transport failure.
    Broken,
}

fn event_loop(
    mut poll: Poll,
    listener: TcpListener,
    shared: &Shared,
    counters: &Counters,
    config: ServerConfig,
) {
    let mut events = Events::with_capacity(1024);
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_id = FIRST_CONN;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if poll.poll(&mut events, Some(POLL_TICK)).is_err() {
            // A failing selector is unrecoverable; shut the loop down
            // rather than spinning.
            break;
        }
        let mut touched: Vec<usize> = Vec::new();
        for event in &events {
            match event.token() {
                LISTENER => accept_ready(&listener, &mut poll, &mut conns, &mut next_id, counters),
                WAKER => {}
                Token(id) => {
                    if event.is_readable() {
                        touched.push(id);
                        if let Some(conn) = conns.get_mut(&id) {
                            if let Err(close) = read_ready(conn, shared, counters, config) {
                                close_conn(&mut poll, &mut conns, id, close, counters);
                                continue;
                            }
                        }
                    }
                    if event.is_writable() {
                        touched.push(id);
                    }
                }
            }
        }
        // Completions: retire in-flight ids and reset idle clocks.
        let completions =
            std::mem::take(&mut *shared.completions.lock().unwrap_or_else(|e| e.into_inner()));
        for completion in completions {
            if let Some(conn) = conns.get_mut(&completion.conn_id) {
                // Usually already retired by the worker's terminal
                // flush; this sweep catches delivery-failure paths.
                conn.shared.in_flight().remove(&completion.request_id);
                conn.last_activity = Instant::now();
            }
            counters.requests_in_flight.add(-1);
        }
        // Flush wherever output appeared (worker enqueues) or the
        // socket asked for it (writable events, fresh reads).
        let mut dirty =
            std::mem::take(&mut *shared.dirty.lock().unwrap_or_else(|e| e.into_inner()));
        dirty.extend(touched);
        dirty.sort_unstable();
        dirty.dedup();
        for id in dirty {
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            if let Err(close) = flush_conn(conn, &poll) {
                close_conn(&mut poll, &mut conns, id, close, counters);
            }
        }
        // Maintenance: close worker-killed connections, then apply the
        // idle timeout to connections with no work anywhere.
        let doomed: Vec<usize> = conns
            .iter()
            .filter(|(_, c)| c.shared.dead.load(Ordering::SeqCst))
            .map(|(&id, _)| id)
            .collect();
        for id in doomed {
            close_conn(&mut poll, &mut conns, id, Close::Broken, counters);
        }
        if let Some(limit) = config.idle_timeout {
            let idle: Vec<usize> = conns
                .iter()
                .filter(|(_, c)| {
                    c.shared.in_flight().is_empty()
                        && !c.has_output()
                        && c.last_activity.elapsed() > limit
                })
                .map(|(&id, _)| id)
                .collect();
            for id in idle {
                counters.idle_dropped.inc();
                close_conn(&mut poll, &mut conns, id, Close::Clean, counters);
            }
        }
    }
    // Shutdown: drop every connection (peers observe EOF) and mark
    // their shared halves dead so in-flight workers stop producing.
    for (_, conn) in conns.drain() {
        conn.shared.dead.store(true, Ordering::SeqCst);
        let _ = poll.deregister(&conn.stream);
    }
}

/// Accepts every pending connection (the listener is level-triggered,
/// but draining per event keeps accept latency flat under bursts).
fn accept_ready(
    listener: &TcpListener,
    poll: &mut Poll,
    conns: &mut HashMap<usize, Conn>,
    next_id: &mut usize,
    counters: &Counters,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // Transient accept failures (fd exhaustion, aborted
            // handshakes): skip; the next readable event retries.
            Err(_) => return,
        };
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let _ = stream.set_nodelay(true);
        let id = *next_id;
        *next_id += 1;
        if poll
            .register(&stream, Token(id), Interest::READABLE)
            .is_err()
        {
            continue;
        }
        counters.connections.inc();
        counters.connections_open.add(1);
        conns.insert(
            id,
            Conn {
                stream,
                shared: Arc::new(ConnShared {
                    id,
                    out: Mutex::new(VecDeque::new()),
                    in_flight: Mutex::new(HashSet::new()),
                    dead: AtomicBool::new(false),
                }),
                read_buf: Vec::new(),
                current: None,
                last_activity: Instant::now(),
                write_interest: false,
            },
        );
    }
}

/// Drains the socket into the read buffer and extracts every complete
/// frame: valid frames become worker jobs (or duplicate-id error
/// frames); frame-level violations close the connection.
fn read_ready(
    conn: &mut Conn,
    shared: &Shared,
    counters: &Counters,
    config: ServerConfig,
) -> Result<(), Close> {
    let mut chunk = [0u8; READ_CHUNK];
    let mut saw_eof = false;
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                saw_eof = true;
                break;
            }
            Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(Close::Broken),
        }
    }
    loop {
        match wire::try_extract_frame(&conn.read_buf) {
            Ok(Some((frame, consumed))) => {
                conn.read_buf.drain(..consumed);
                // A live duplicate id cannot be dispatched — the two
                // responses would be indistinguishable to the client.
                if !conn.shared.in_flight().insert(frame.request_id) {
                    counters.errors.inc();
                    enqueue_error(
                        &conn.shared,
                        shared,
                        frame.request_id,
                        frame.trace_id,
                        ERR_DUP_REQUEST,
                        format!("request id {} is already in flight", frame.request_id),
                    );
                    continue;
                }
                counters.requests_in_flight.add(1);
                shared.submit(
                    Job {
                        conn: Arc::clone(&conn.shared),
                        request_id: frame.request_id,
                        trace_id: frame.trace_id,
                        payload: frame.payload,
                        t0: Instant::now(),
                    },
                    counters,
                );
            }
            Ok(None) => break,
            // Framing violations (bad checksum, hostile length) are
            // unrecoverable: the stream cannot be re-synchronised.
            Err(_) => return Err(Close::Broken),
        }
    }
    // EOF after a partial frame is a truncation; either way the peer
    // is gone. In-flight requests keep running — their frames go to a
    // dead connection and are discarded (`_ = config`-independent).
    if saw_eof {
        return Err(Close::Clean);
    }
    let _ = config;
    Ok(())
}

/// Queues one error frame from the loop thread (dup-id rejections).
fn enqueue_error(
    conn: &ConnShared,
    shared: &Shared,
    request_id: u64,
    trace_id: u64,
    code: u16,
    message: String,
) {
    let response = Response::Error { code, message };
    if let Ok(frame) = wire::encode_frame(&response.to_bytes(), request_id, trace_id) {
        conn.out
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(frame);
        shared.mark_dirty(conn.id);
    }
}

/// Writes queued frames until the socket blocks or the queue drains,
/// keeping write interest registered exactly while output is pending.
fn flush_conn(conn: &mut Conn, poll: &Poll) -> Result<(), Close> {
    loop {
        if conn.current.is_none() {
            conn.current = conn
                .shared
                .out
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
                .map(|frame| (frame, 0));
        }
        let Some((frame, written)) = conn.current.as_mut() else {
            break;
        };
        match conn.stream.write(&frame[*written..]) {
            Ok(0) => return Err(Close::Broken),
            Ok(n) => {
                *written += n;
                if *written == frame.len() {
                    conn.current = None;
                }
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(Close::Broken),
        }
    }
    let want_write = conn.has_output();
    if want_write != conn.write_interest {
        let interest = if want_write {
            Interest::READABLE | Interest::WRITABLE
        } else {
            Interest::READABLE
        };
        if poll
            .reregister(&conn.stream, Token(conn.shared.id), interest)
            .is_err()
        {
            return Err(Close::Broken);
        }
        conn.write_interest = want_write;
    }
    Ok(())
}

/// Tears a connection down on any exit path: marks the shared half
/// dead (workers stop producing for it), deregisters, and balances the
/// open-connections gauge.
fn close_conn(
    poll: &mut Poll,
    conns: &mut HashMap<usize, Conn>,
    id: usize,
    _close: Close,
    counters: &Counters,
) {
    if let Some(conn) = conns.remove(&id) {
        conn.shared.dead.store(true, Ordering::SeqCst);
        let _ = poll.deregister(&conn.stream);
        counters.connections_open.add(-1);
    }
}

// ---------------------------------------------------------------------------
// The worker pool.
// ---------------------------------------------------------------------------

fn worker_main(catalog: &Catalog, shared: &Shared, counters: &Counters, config: ServerConfig) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    counters.queue_depth.set(q.jobs.len() as i64);
                    break Some(job);
                }
                if q.stop {
                    break None;
                }
                let (guard, _) = shared
                    .available
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        let Some(job) = job else {
            return;
        };
        let conn_id = job.conn.id;
        let request_id = job.request_id;
        handle_job(catalog, shared, counters, config, job);
        shared.complete(conn_id, request_id);
    }
}

/// Decodes and answers one frame on a worker thread.
fn handle_job(
    catalog: &Catalog,
    shared: &Shared,
    counters: &Counters,
    config: ServerConfig,
    job: Job,
) {
    let sink = FrameSink {
        conn: &job.conn,
        shared,
        request_id: job.request_id,
        trace_id: job.trace_id,
        held: std::cell::RefCell::new(None),
    };
    // A request is counted only once it decodes — malformed frames
    // get their own counter instead of inflating `requests` with
    // entries no per-kind metric accounts for.
    let request = match Request::from_bytes(&job.payload) {
        Ok(request) => request,
        Err(e) => {
            // The frame boundary is intact, so the connection survives
            // a malformed message.
            let code = match e {
                ArtifactError::BadMagic | ArtifactError::BadVersion(_) => ERR_BAD_VERSION,
                _ => ERR_BAD_REQUEST,
            };
            counters.malformed.inc();
            counters.errors.inc();
            let _ = sink
                .send(&Response::Error {
                    code,
                    message: e.to_string(),
                })
                .and_then(|()| sink.finish());
            return;
        }
    };
    let kind = kind_index(&request);
    counters.requests.inc();
    counters.requests_by_kind[kind].inc();
    // A non-zero frame trace id asks for a server-side breakdown.
    let trace = (job.trace_id != 0).then(|| Trace::new(job.trace_id));
    let outcome = respond(catalog, &sink, request, counters, &trace, config);
    // Observations land *before* the terminal frame is released: a
    // client that has seen its exchange complete can never scrape a
    // registry that has not counted it yet.
    counters.request_us_by_kind[kind].record(job.t0.elapsed());
    if let Some(trace) = trace {
        counters.trace_log.push(trace.report());
    }
    let outcome = outcome.and_then(|()| sink.finish());
    if outcome.is_err() {
        // The response could not be delivered whole (encode failure or
        // the connection died mid-stream): kill the connection so the
        // client sees a drop, never a truncated exchange.
        job.conn.dead.store(true, Ordering::SeqCst);
        let _ = shared.waker.wake();
    }
}

/// A worker's handle for sending response frames: each frame is
/// encoded with the request's ids and queued on the connection.
///
/// The sink holds back the most recently sent frame and releases it on
/// the *next* send — so the terminal frame of a response leaves only at
/// [`FrameSink::finish`], strictly after the request's metrics are
/// recorded. A client that reads a complete response and immediately
/// scrapes `Introspect` therefore always sees that request counted; the
/// held frame costs nothing to streaming interleave because every
/// earlier frame is released as soon as its successor is encoded.
struct FrameSink<'a> {
    conn: &'a ConnShared,
    shared: &'a Shared,
    request_id: u64,
    trace_id: u64,
    held: std::cell::RefCell<Option<Vec<u8>>>,
}

impl FrameSink<'_> {
    fn send(&self, response: &Response) -> Result<(), CatalogError> {
        let frame = wire::encode_frame(&response.to_bytes(), self.request_id, self.trace_id)?;
        let prev = self.held.borrow_mut().replace(frame);
        match prev {
            Some(prev) => self.deliver(prev),
            None => Ok(()),
        }
    }

    /// Releases the held terminal frame. Call after the request's
    /// observations are recorded; until then the client cannot have
    /// seen the exchange complete. The request id is retired first, so
    /// a client that reads its full response may reuse the id on its
    /// very next frame without racing the completion queue.
    fn finish(&self) -> Result<(), CatalogError> {
        self.conn.in_flight().remove(&self.request_id);
        let last = self.held.borrow_mut().take();
        match last {
            Some(last) => self.deliver(last),
            None => Ok(()),
        }
    }

    fn deliver(&self, frame: Vec<u8>) -> Result<(), CatalogError> {
        if self.conn.dead.load(Ordering::SeqCst) {
            return Err(CatalogError::Protocol(
                "connection closed with the response in flight".into(),
            ));
        }
        self.conn
            .out
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(frame);
        self.shared.mark_dirty(self.conn.id);
        Ok(())
    }
}

/// Answers one request. `Err` means the response could not be
/// delivered (dead connection / encode failure); catalog-side failures
/// become error frames and keep the connection alive. When `trace` is
/// set (the request frame carried a non-zero trace id), the query and
/// streaming phases record spans into it.
fn respond(
    catalog: &Catalog,
    sink: &FrameSink<'_>,
    request: Request,
    counters: &Counters,
    trace: &Option<Trace>,
    config: ServerConfig,
) -> Result<(), CatalogError> {
    /// Streams `records` as batch frames + a `Done` trailer. Chunking
    /// honours both the record cap and the per-frame byte budget, so no
    /// batch can ever hit the frame cap and poison the connection.
    /// Batches are carved off by moving (no per-record clone); the
    /// ranges tile the records front to back. Each batch is queued as
    /// its own frame, which is what lets batches of concurrently
    /// streaming requests interleave on the wire.
    fn stream_batches<T: seaice::artifact::Codec>(
        sink: &FrameSink<'_>,
        counters: &Counters,
        trace: &Option<Trace>,
        records: Vec<T>,
        make: impl Fn(Vec<T>) -> Response,
    ) -> Result<(), CatalogError> {
        let _span = trace.as_ref().map(|t| t.span("stream"));
        let total = records.len() as u64;
        let ranges = wire::batch_ranges(&records, BATCH_RECORDS, wire::MAX_BATCH_BYTES);
        let mut records = records;
        for range in ranges {
            let rest = records.split_off(range.len());
            let batch = std::mem::replace(&mut records, rest);
            sink.send(&make(batch))?;
        }
        counters.records_streamed.add(total);
        sink.send(&Response::Done { n_records: total })
    }

    /// Converts a catalog-side failure into an error frame.
    fn fail(
        sink: &FrameSink<'_>,
        counters: &Counters,
        e: CatalogError,
    ) -> Result<(), CatalogError> {
        counters.errors.inc();
        sink.send(&Response::Error {
            code: ERR_CATALOG,
            message: e.to_string(),
        })
    }

    /// Opens a `"query"` span for the catalog-access phase.
    fn query_span(trace: &Option<Trace>) -> Option<seaice_obs::SpanGuard> {
        trace.as_ref().map(|t| t.span("query"))
    }

    /// Refuses a write RPC on a read-only server.
    fn read_only(sink: &FrameSink<'_>, counters: &Counters) -> Result<(), CatalogError> {
        counters.errors.inc();
        sink.send(&Response::Error {
            code: ERR_READ_ONLY,
            message: "server does not accept served writes (allow_writes is off)".into(),
        })
    }

    match request {
        Request::Manifest => sink.send(&Response::Manifest(*catalog.grid())),
        Request::QueryRect { rect, time, scope } => {
            let queried = {
                let _span = query_span(trace);
                catalog.query_rect_partials(&rect, time, &scope)
            };
            match queried {
                Ok(partials) => {
                    stream_batches(sink, counters, trace, partials, Response::TileBatch)
                }
                Err(e) => fail(sink, counters, e),
            }
        }
        Request::QueryBbox { bbox, time, scope } => {
            let queried = {
                let _span = query_span(trace);
                catalog.query_bbox_partials(&bbox, time, &scope)
            };
            match queried {
                Ok(partials) => {
                    stream_batches(sink, counters, trace, partials, Response::TileBatch)
                }
                Err(e) => fail(sink, counters, e),
            }
        }
        Request::QueryPoint { point, time, scope } => {
            let queried = {
                let _span = query_span(trace);
                catalog.query_point_scoped(point, time, &scope)
            };
            match queried {
                Ok(cell) => sink.send(&Response::Point(cell)),
                Err(e) => fail(sink, counters, e),
            }
        }
        Request::QueryTimeRange { time, scope } => {
            let queried = {
                let _span = query_span(trace);
                catalog.query_time_range_partials(time, &scope)
            };
            match queried {
                Ok(layers) => {
                    let records: Vec<(crate::grid::TimeKey, crate::store::TilePartial)> = layers
                        .into_iter()
                        .flat_map(|(t, partials)| partials.into_iter().map(move |p| (t, p)))
                        .collect();
                    stream_batches(sink, counters, trace, records, Response::LayerBatch)
                }
                Err(e) => fail(sink, counters, e),
            }
        }
        Request::QueryCells { rect, time, scope } => {
            let queried = {
                let _span = query_span(trace);
                catalog.query_cells_scoped(&rect, time, &scope)
            };
            match queried {
                Ok(cells) => stream_batches(sink, counters, trace, cells, Response::CellBatch),
                Err(e) => fail(sink, counters, e),
            }
        }
        Request::Stats { scope } => {
            let (stats, layers) = catalog.scoped_stats(&scope);
            sink.send(&Response::Stats { stats, layers })
        }
        Request::Validate { scope } => match catalog.validate_scoped(&scope) {
            Ok(checked) => sink.send(&Response::Done {
                n_records: checked as u64,
            }),
            Err(e) => fail(sink, counters, e),
        },
        // No catalog access: a ping must stay cheap and answerable even
        // when the store is busy — it measures the serve path, not the
        // query path.
        Request::Ping => sink.send(&Response::Pong(counters.snapshot())),
        // The full observability snapshot: every metric the catalog and
        // this server registered, plus the recent traced-request
        // breakdowns, as text exposition lines.
        Request::Introspect => {
            let mut text = catalog.expose();
            counters.trace_log.expose_into(&mut text);
            sink.send(&Response::Metrics(text))
        }
        // Served writes: the merge runs on this worker under the
        // server's catalog handle — and so under its writer lease,
        // heartbeating and self-fencing exactly like an in-process
        // ingest. Lease loss (or any catalog failure) is an ERR_CATALOG
        // error frame; the connection survives.
        Request::IngestSamples {
            granule_id,
            beam,
            mode,
            product,
        } => {
            if !config.allow_writes {
                return read_only(sink, counters);
            }
            let merged = {
                let _span = trace.as_ref().map(|t| t.span("ingest"));
                catalog.ingest_beam_with(&granule_id, beam as usize, &product, mode)
            };
            match merged {
                Ok(report) => sink.send(&Response::Ingested(report)),
                Err(e) => fail(sink, counters, e),
            }
        }
        Request::IngestThickness { mode, beam } => {
            if !config.allow_writes {
                return read_only(sink, counters);
            }
            let merged = {
                let _span = trace.as_ref().map(|t| t.span("ingest"));
                catalog.ingest_thickness_beam_with(&beam, mode)
            };
            match merged {
                Ok(report) => sink.send(&Response::Ingested(report)),
                Err(e) => fail(sink, counters, e),
            }
        }
    }
}
