//! The catalog's TCP serving front-end.
//!
//! [`CatalogServer`] puts a threaded `std::net` listener in front of an
//! in-process [`Catalog`]: an accept loop hands each connection to its
//! own handler thread, and every handler answers framed
//! [`crate::wire::Request`]s with streamed [`crate::wire::Response`]
//! frames — so any number of remote readers can hit one store while a
//! leased writer keeps ingesting into it ([`Catalog`]'s reader/writer
//! rules make that safe in-process, and the server is just another set
//! of reader threads).
//!
//! Summary queries are answered as **per-tile partial** streams, not
//! pre-folded summaries: the client performs the final fold with the
//! same code a local query uses ([`crate::QuerySummary::from_partials`]),
//! which is what makes a query fanned out over shard servers
//! bit-identical to the single-process answer. See `docs/PROTOCOL.md`
//! for the normative wire spec.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use seaice::artifact::{Artifact, ArtifactError};
use seaice_obs::{Counter, Gauge, Histogram, MetricRegistry, Trace, TraceLog, TraceReport};

use crate::store::Catalog;
use crate::wire::{
    self, Request, Response, BATCH_RECORDS, ERR_BAD_REQUEST, ERR_BAD_VERSION, ERR_CATALOG,
};
use crate::CatalogError;

/// How often an idle connection wakes to check for shutdown.
const IDLE_TICK: Duration = Duration::from_millis(100);

/// Traced-request reports retained for `Introspect` scrapes.
const TRACE_LOG_CAP: usize = 32;

/// Serving configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerConfig {
    /// Drop a connection that completes no request for this long —
    /// dead or wedged clients can't pin handler threads forever. The
    /// timeout also bounds how long a half-sent frame may trickle in.
    /// `None` (the default) keeps connections for as long as the peer
    /// holds them open. Dropped connections are counted in
    /// [`ServerStats::idle_dropped`].
    pub idle_timeout: Option<Duration>,
}

/// Monotonic serving counters (server lifetime). Also the payload of a
/// [`crate::wire::Response::Pong`] health-probe reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests decoded and dispatched.
    pub requests: u64,
    /// Records streamed across all batch frames.
    pub records_streamed: u64,
    /// Error frames sent.
    pub errors: u64,
    /// Connections dropped by the idle timeout
    /// ([`ServerConfig::idle_timeout`]).
    pub idle_dropped: u64,
}

/// Request-kind labels, indexed by [`kind_index`]. Also the `kind`
/// label values of the per-kind `server_requests_total` /
/// `server_request_us` metrics.
const KIND_LABELS: [&str; 10] = [
    "manifest",
    "query_rect",
    "query_bbox",
    "query_point",
    "query_time_range",
    "query_cells",
    "stats",
    "validate",
    "ping",
    "introspect",
];

/// Index of a request into the per-kind metric arrays.
fn kind_index(request: &Request) -> usize {
    match request {
        Request::Manifest => 0,
        Request::QueryRect { .. } => 1,
        Request::QueryBbox { .. } => 2,
        Request::QueryPoint { .. } => 3,
        Request::QueryTimeRange { .. } => 4,
        Request::QueryCells { .. } => 5,
        Request::Stats { .. } => 6,
        Request::Validate { .. } => 7,
        Request::Ping => 8,
        Request::Introspect => 9,
    }
}

/// The server's registered metric handles. The plain lifetime counters
/// (the `ServerStats` payload of a Pong) and the exposition metrics
/// are the *same cells* — the registry hands out shared handles — so a
/// health probe and an `Introspect` scrape can never disagree.
struct Counters {
    connections: Counter,
    connections_open: Gauge,
    requests: Counter,
    records_streamed: Counter,
    errors: Counter,
    idle_dropped: Counter,
    malformed: Counter,
    requests_by_kind: [Counter; KIND_LABELS.len()],
    request_us_by_kind: [Histogram; KIND_LABELS.len()],
    trace_log: TraceLog,
}

impl Counters {
    fn new(registry: &MetricRegistry) -> Counters {
        Counters {
            connections: registry.counter("server_connections_total"),
            connections_open: registry.gauge("server_connections_open"),
            requests: registry.counter("server_requests_total"),
            records_streamed: registry.counter("server_records_streamed_total"),
            errors: registry.counter("server_errors_total"),
            idle_dropped: registry.counter("server_idle_dropped_total"),
            malformed: registry.counter("server_requests_malformed_total"),
            requests_by_kind: KIND_LABELS
                .map(|kind| registry.counter_with("server_requests_total", &[("kind", kind)])),
            request_us_by_kind: KIND_LABELS
                .map(|kind| registry.histogram_with("server_request_us", &[("kind", kind)])),
            trace_log: TraceLog::new(TRACE_LOG_CAP),
        }
    }

    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.get(),
            requests: self.requests.get(),
            records_streamed: self.records_streamed.get(),
            errors: self.errors.get(),
            idle_dropped: self.idle_dropped.get(),
        }
    }
}

/// A running catalog server. Dropping it (or calling
/// [`CatalogServer::shutdown`]) stops the accept loop, drains handler
/// threads, and closes the listener.
pub struct CatalogServer {
    addr: SocketAddr,
    /// A clone of the listening socket, kept so shutdown can flip the
    /// shared O_NONBLOCK flag and unblock the accept loop even when a
    /// wake-up self-connection is impossible (e.g. a `0.0.0.0` bind).
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    counters: Arc<Counters>,
    registry: MetricRegistry,
}

impl CatalogServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `catalog` with default configuration. Returns as
    /// soon as the listener is live; use [`CatalogServer::addr`] for
    /// the bound address.
    pub fn serve(catalog: Arc<Catalog>, addr: &str) -> Result<CatalogServer, CatalogError> {
        Self::serve_with(catalog, addr, ServerConfig::default())
    }

    /// [`CatalogServer::serve`] with explicit [`ServerConfig`].
    pub fn serve_with(
        catalog: Arc<Catalog>,
        addr: &str,
        config: ServerConfig,
    ) -> Result<CatalogServer, CatalogError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let listener_clone = listener.try_clone()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        // The server registers its metrics in the catalog's registry,
        // so one Introspect scrape snapshots the whole process: serve
        // path, tile cache, ingest stages, and lease events together.
        let registry = catalog.registry().clone();
        let counters = Arc::new(Counters::new(&registry));

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_handlers = Arc::clone(&handlers);
        let accept_counters = Arc::clone(&counters);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match stream {
                    Ok(stream) => stream,
                    // Transient accept failures (fd exhaustion, aborted
                    // handshakes, the nonblocking shutdown flip): back
                    // off instead of spinning the core.
                    Err(_) => {
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    }
                };
                accept_counters.connections.inc();
                let catalog = Arc::clone(&catalog);
                let stop = Arc::clone(&accept_shutdown);
                let counters = Arc::clone(&accept_counters);
                let handle = std::thread::spawn(move || {
                    handle_connection(&catalog, stream, &stop, &counters, config);
                });
                let mut handlers = accept_handlers.lock().unwrap_or_else(|e| e.into_inner());
                // Reap finished connections as new ones arrive, so a
                // long-lived server doesn't accumulate one handle per
                // connection it ever served.
                let mut live = Vec::with_capacity(handlers.len() + 1);
                for h in handlers.drain(..) {
                    if h.is_finished() {
                        let _ = h.join();
                    } else {
                        live.push(h);
                    }
                }
                *handlers = live;
                handlers.push(handle);
            }
        });

        Ok(CatalogServer {
            addr: local,
            listener: listener_clone,
            shutdown,
            accept_thread: Some(accept_thread),
            handlers,
            counters,
            registry,
        })
    }

    /// The bound listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Lifetime serving counters.
    pub fn stats(&self) -> ServerStats {
        self.counters.snapshot()
    }

    /// The metric registry this server records into (shared with its
    /// catalog). What an `Introspect` scrape renders.
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    /// The most recent traced-request breakdowns (requests whose frame
    /// carried a non-zero trace id), oldest first.
    pub fn recent_traces(&self) -> Vec<TraceReport> {
        self.counters.trace_log.recent()
    }

    /// Stops accepting, drains every handler thread, and closes the
    /// listener. Idempotent through `Drop`.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop: flip the shared socket nonblocking
        // (accept returns immediately from now on) and additionally try
        // a throwaway wake-up connection for platforms where a blocked
        // accept doesn't observe the flag change.
        let _ = self.listener.set_nonblocking(true);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let handles = std::mem::take(&mut *self.handlers.lock().unwrap_or_else(|e| e.into_inner()));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for CatalogServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop();
        }
    }
}

/// One connection's request loop: framed requests in, framed (possibly
/// streamed) responses out, until clean EOF, shutdown, idle timeout, or
/// a broken stream.
fn handle_connection(
    catalog: &Catalog,
    mut stream: TcpStream,
    stop: &AtomicBool,
    counters: &Counters,
    config: ServerConfig,
) {
    let _ = stream.set_read_timeout(Some(IDLE_TICK));
    let _ = stream.set_nodelay(true);
    counters.connections_open.add(1);
    // Balances the gauge on every exit path of the request loop.
    struct OpenGuard<'a>(&'a Gauge);
    impl Drop for OpenGuard<'_> {
        fn drop(&mut self) {
            self.0.add(-1);
        }
    }
    let _open = OpenGuard(&counters.connections_open);
    // Reset whenever a request completes; a connection that neither
    // finishes a request nor closes within the idle timeout is dropped.
    let mut last_activity = Instant::now();
    loop {
        let idle = |last: Instant| {
            config
                .idle_timeout
                .is_some_and(|limit| last.elapsed() > limit)
        };
        let (frame, trace_id) = match wire::read_frame_cancellable(&mut stream, || {
            stop.load(Ordering::SeqCst) || idle(last_activity)
        }) {
            Ok(Some(frame)) => frame,
            // Clean EOF, shutdown tick, or idle drop.
            Ok(None) => {
                if !stop.load(Ordering::SeqCst) && idle(last_activity) {
                    counters.idle_dropped.inc();
                }
                return;
            }
            // Framing violations are unrecoverable: drop the connection.
            Err(_) => return,
        };
        // A request is counted only once it decodes — malformed frames
        // get their own counter instead of inflating `requests` with
        // entries no per-kind metric accounts for.
        let request = match Request::from_bytes(&frame) {
            Ok(request) => request,
            Err(e) => {
                // The frame boundary is intact, so the connection can
                // survive a malformed message.
                let code = match e {
                    ArtifactError::BadMagic | ArtifactError::BadVersion(_) => ERR_BAD_VERSION,
                    _ => ERR_BAD_REQUEST,
                };
                counters.malformed.inc();
                counters.errors.inc();
                let frame = Response::Error {
                    code,
                    message: e.to_string(),
                };
                if wire::write_message_traced(&mut stream, &frame, trace_id).is_err() {
                    return;
                }
                continue;
            }
        };
        let kind = kind_index(&request);
        counters.requests.inc();
        counters.requests_by_kind[kind].inc();
        // A non-zero frame trace id asks for a server-side breakdown.
        let trace = (trace_id != 0).then(|| Trace::new(trace_id));
        let t0 = Instant::now();
        let outcome = respond(catalog, &mut stream, request, counters, trace_id, &trace);
        counters.request_us_by_kind[kind].record(t0.elapsed());
        if let Some(trace) = trace {
            counters.trace_log.push(trace.report());
        }
        if outcome.is_err() {
            return;
        }
        last_activity = Instant::now();
    }
}

/// Sends one response frame (echoing the request's trace id),
/// surfacing only transport failures (which end the connection).
fn send(stream: &mut TcpStream, response: &Response, trace_id: u64) -> Result<(), CatalogError> {
    wire::write_message_traced(stream, response, trace_id)
}

/// Answers one request. `Err` means the transport broke; catalog-side
/// failures become error frames and keep the connection alive. When
/// `trace` is set (the request frame carried a non-zero trace id), the
/// query and streaming phases record spans into it.
fn respond(
    catalog: &Catalog,
    stream: &mut TcpStream,
    request: Request,
    counters: &Counters,
    trace_id: u64,
    trace: &Option<Trace>,
) -> Result<(), CatalogError> {
    /// Streams `records` as batch frames + a `Done` trailer. Chunking
    /// honours both the record cap and the per-frame byte budget, so no
    /// batch can ever hit the frame cap and poison the connection.
    /// Batches are carved off by moving (no per-record clone); the
    /// ranges tile the records front to back.
    fn stream_batches<T: seaice::artifact::Codec>(
        stream: &mut TcpStream,
        counters: &Counters,
        trace_id: u64,
        trace: &Option<Trace>,
        records: Vec<T>,
        make: impl Fn(Vec<T>) -> Response,
    ) -> Result<(), CatalogError> {
        let _span = trace.as_ref().map(|t| t.span("stream"));
        let total = records.len() as u64;
        let ranges = wire::batch_ranges(&records, BATCH_RECORDS, wire::MAX_BATCH_BYTES);
        let mut records = records;
        for range in ranges {
            let rest = records.split_off(range.len());
            let batch = std::mem::replace(&mut records, rest);
            wire::write_message_traced(stream, &make(batch), trace_id)?;
        }
        counters.records_streamed.add(total);
        wire::write_message_traced(stream, &Response::Done { n_records: total }, trace_id)
    }

    /// Converts a catalog-side failure into an error frame.
    fn fail(
        stream: &mut TcpStream,
        counters: &Counters,
        trace_id: u64,
        e: CatalogError,
    ) -> Result<(), CatalogError> {
        counters.errors.inc();
        wire::write_message_traced(
            stream,
            &Response::Error {
                code: ERR_CATALOG,
                message: e.to_string(),
            },
            trace_id,
        )
    }

    /// Opens a `"query"` span for the catalog-access phase.
    fn query_span(trace: &Option<Trace>) -> Option<seaice_obs::SpanGuard> {
        trace.as_ref().map(|t| t.span("query"))
    }

    match request {
        Request::Manifest => send(stream, &Response::Manifest(*catalog.grid()), trace_id),
        Request::QueryRect { rect, time, scope } => {
            let queried = {
                let _span = query_span(trace);
                catalog.query_rect_partials(&rect, time, &scope)
            };
            match queried {
                Ok(partials) => stream_batches(
                    stream,
                    counters,
                    trace_id,
                    trace,
                    partials,
                    Response::TileBatch,
                ),
                Err(e) => fail(stream, counters, trace_id, e),
            }
        }
        Request::QueryBbox { bbox, time, scope } => {
            let queried = {
                let _span = query_span(trace);
                catalog.query_bbox_partials(&bbox, time, &scope)
            };
            match queried {
                Ok(partials) => stream_batches(
                    stream,
                    counters,
                    trace_id,
                    trace,
                    partials,
                    Response::TileBatch,
                ),
                Err(e) => fail(stream, counters, trace_id, e),
            }
        }
        Request::QueryPoint { point, time, scope } => {
            let queried = {
                let _span = query_span(trace);
                catalog.query_point_scoped(point, time, &scope)
            };
            match queried {
                Ok(cell) => send(stream, &Response::Point(cell), trace_id),
                Err(e) => fail(stream, counters, trace_id, e),
            }
        }
        Request::QueryTimeRange { time, scope } => {
            let queried = {
                let _span = query_span(trace);
                catalog.query_time_range_partials(time, &scope)
            };
            match queried {
                Ok(layers) => {
                    let records: Vec<(crate::grid::TimeKey, crate::store::TilePartial)> = layers
                        .into_iter()
                        .flat_map(|(t, partials)| partials.into_iter().map(move |p| (t, p)))
                        .collect();
                    stream_batches(
                        stream,
                        counters,
                        trace_id,
                        trace,
                        records,
                        Response::LayerBatch,
                    )
                }
                Err(e) => fail(stream, counters, trace_id, e),
            }
        }
        Request::QueryCells { rect, time, scope } => {
            let queried = {
                let _span = query_span(trace);
                catalog.query_cells_scoped(&rect, time, &scope)
            };
            match queried {
                Ok(cells) => stream_batches(
                    stream,
                    counters,
                    trace_id,
                    trace,
                    cells,
                    Response::CellBatch,
                ),
                Err(e) => fail(stream, counters, trace_id, e),
            }
        }
        Request::Stats { scope } => {
            let (stats, layers) = catalog.scoped_stats(&scope);
            send(stream, &Response::Stats { stats, layers }, trace_id)
        }
        Request::Validate { scope } => match catalog.validate_scoped(&scope) {
            Ok(checked) => send(
                stream,
                &Response::Done {
                    n_records: checked as u64,
                },
                trace_id,
            ),
            Err(e) => fail(stream, counters, trace_id, e),
        },
        // No catalog access: a ping must stay cheap and answerable even
        // when the store is busy — it measures the serve path, not the
        // query path.
        Request::Ping => send(stream, &Response::Pong(counters.snapshot()), trace_id),
        // The full observability snapshot: every metric the catalog and
        // this server registered, plus the recent traced-request
        // breakdowns, as text exposition lines.
        Request::Introspect => {
            let mut text = catalog.expose();
            counters.trace_log.expose_into(&mut text);
            send(stream, &Response::Metrics(text), trace_id)
        }
    }
}
