//! The catalog's TCP serving front-end.
//!
//! [`CatalogServer`] puts a threaded `std::net` listener in front of an
//! in-process [`Catalog`]: an accept loop hands each connection to its
//! own handler thread, and every handler answers framed
//! [`crate::wire::Request`]s with streamed [`crate::wire::Response`]
//! frames — so any number of remote readers can hit one store while a
//! leased writer keeps ingesting into it ([`Catalog`]'s reader/writer
//! rules make that safe in-process, and the server is just another set
//! of reader threads).
//!
//! Summary queries are answered as **per-tile partial** streams, not
//! pre-folded summaries: the client performs the final fold with the
//! same code a local query uses ([`crate::QuerySummary::from_partials`]),
//! which is what makes a query fanned out over shard servers
//! bit-identical to the single-process answer. See `docs/PROTOCOL.md`
//! for the normative wire spec.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use seaice::artifact::{Artifact, ArtifactError};

use crate::store::Catalog;
use crate::wire::{
    self, Request, Response, BATCH_RECORDS, ERR_BAD_REQUEST, ERR_BAD_VERSION, ERR_CATALOG,
};
use crate::CatalogError;

/// How often an idle connection wakes to check for shutdown.
const IDLE_TICK: Duration = Duration::from_millis(100);

/// Serving configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerConfig {
    /// Drop a connection that completes no request for this long —
    /// dead or wedged clients can't pin handler threads forever. The
    /// timeout also bounds how long a half-sent frame may trickle in.
    /// `None` (the default) keeps connections for as long as the peer
    /// holds them open. Dropped connections are counted in
    /// [`ServerStats::idle_dropped`].
    pub idle_timeout: Option<Duration>,
}

/// Monotonic serving counters (server lifetime). Also the payload of a
/// [`crate::wire::Response::Pong`] health-probe reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests decoded and dispatched.
    pub requests: u64,
    /// Records streamed across all batch frames.
    pub records_streamed: u64,
    /// Error frames sent.
    pub errors: u64,
    /// Connections dropped by the idle timeout
    /// ([`ServerConfig::idle_timeout`]).
    pub idle_dropped: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    records_streamed: AtomicU64,
    errors: AtomicU64,
    idle_dropped: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            records_streamed: self.records_streamed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            idle_dropped: self.idle_dropped.load(Ordering::Relaxed),
        }
    }
}

/// A running catalog server. Dropping it (or calling
/// [`CatalogServer::shutdown`]) stops the accept loop, drains handler
/// threads, and closes the listener.
pub struct CatalogServer {
    addr: SocketAddr,
    /// A clone of the listening socket, kept so shutdown can flip the
    /// shared O_NONBLOCK flag and unblock the accept loop even when a
    /// wake-up self-connection is impossible (e.g. a `0.0.0.0` bind).
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    counters: Arc<Counters>,
}

impl CatalogServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `catalog` with default configuration. Returns as
    /// soon as the listener is live; use [`CatalogServer::addr`] for
    /// the bound address.
    pub fn serve(catalog: Arc<Catalog>, addr: &str) -> Result<CatalogServer, CatalogError> {
        Self::serve_with(catalog, addr, ServerConfig::default())
    }

    /// [`CatalogServer::serve`] with explicit [`ServerConfig`].
    pub fn serve_with(
        catalog: Arc<Catalog>,
        addr: &str,
        config: ServerConfig,
    ) -> Result<CatalogServer, CatalogError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let listener_clone = listener.try_clone()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let counters = Arc::new(Counters::default());

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_handlers = Arc::clone(&handlers);
        let accept_counters = Arc::clone(&counters);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match stream {
                    Ok(stream) => stream,
                    // Transient accept failures (fd exhaustion, aborted
                    // handshakes, the nonblocking shutdown flip): back
                    // off instead of spinning the core.
                    Err(_) => {
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    }
                };
                accept_counters.connections.fetch_add(1, Ordering::Relaxed);
                let catalog = Arc::clone(&catalog);
                let stop = Arc::clone(&accept_shutdown);
                let counters = Arc::clone(&accept_counters);
                let handle = std::thread::spawn(move || {
                    handle_connection(&catalog, stream, &stop, &counters, config);
                });
                let mut handlers = accept_handlers.lock().unwrap_or_else(|e| e.into_inner());
                // Reap finished connections as new ones arrive, so a
                // long-lived server doesn't accumulate one handle per
                // connection it ever served.
                let mut live = Vec::with_capacity(handlers.len() + 1);
                for h in handlers.drain(..) {
                    if h.is_finished() {
                        let _ = h.join();
                    } else {
                        live.push(h);
                    }
                }
                *handlers = live;
                handlers.push(handle);
            }
        });

        Ok(CatalogServer {
            addr: local,
            listener: listener_clone,
            shutdown,
            accept_thread: Some(accept_thread),
            handlers,
            counters,
        })
    }

    /// The bound listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Lifetime serving counters.
    pub fn stats(&self) -> ServerStats {
        self.counters.snapshot()
    }

    /// Stops accepting, drains every handler thread, and closes the
    /// listener. Idempotent through `Drop`.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop: flip the shared socket nonblocking
        // (accept returns immediately from now on) and additionally try
        // a throwaway wake-up connection for platforms where a blocked
        // accept doesn't observe the flag change.
        let _ = self.listener.set_nonblocking(true);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let handles = std::mem::take(&mut *self.handlers.lock().unwrap_or_else(|e| e.into_inner()));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for CatalogServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop();
        }
    }
}

/// One connection's request loop: framed requests in, framed (possibly
/// streamed) responses out, until clean EOF, shutdown, idle timeout, or
/// a broken stream.
fn handle_connection(
    catalog: &Catalog,
    mut stream: TcpStream,
    stop: &AtomicBool,
    counters: &Counters,
    config: ServerConfig,
) {
    let _ = stream.set_read_timeout(Some(IDLE_TICK));
    let _ = stream.set_nodelay(true);
    // Reset whenever a request completes; a connection that neither
    // finishes a request nor closes within the idle timeout is dropped.
    let mut last_activity = Instant::now();
    loop {
        let idle = |last: Instant| {
            config
                .idle_timeout
                .is_some_and(|limit| last.elapsed() > limit)
        };
        let frame = match wire::read_frame_cancellable(&mut stream, || {
            stop.load(Ordering::SeqCst) || idle(last_activity)
        }) {
            Ok(Some(frame)) => frame,
            // Clean EOF, shutdown tick, or idle drop.
            Ok(None) => {
                if !stop.load(Ordering::SeqCst) && idle(last_activity) {
                    counters.idle_dropped.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
            // Framing violations are unrecoverable: drop the connection.
            Err(_) => return,
        };
        counters.requests.fetch_add(1, Ordering::Relaxed);
        let request = match Request::from_bytes(&frame) {
            Ok(request) => request,
            Err(e) => {
                // The frame boundary is intact, so the connection can
                // survive a malformed message.
                let code = match e {
                    ArtifactError::BadMagic | ArtifactError::BadVersion(_) => ERR_BAD_VERSION,
                    _ => ERR_BAD_REQUEST,
                };
                counters.errors.fetch_add(1, Ordering::Relaxed);
                let frame = Response::Error {
                    code,
                    message: e.to_string(),
                };
                if wire::write_message(&mut stream, &frame).is_err() {
                    return;
                }
                continue;
            }
        };
        if respond(catalog, &mut stream, request, counters).is_err() {
            return;
        }
        last_activity = Instant::now();
    }
}

/// Sends one response frame, surfacing only transport failures (which
/// end the connection).
fn send(stream: &mut TcpStream, response: &Response) -> Result<(), CatalogError> {
    wire::write_message(stream, response)
}

/// Answers one request. `Err` means the transport broke; catalog-side
/// failures become error frames and keep the connection alive.
fn respond(
    catalog: &Catalog,
    stream: &mut TcpStream,
    request: Request,
    counters: &Counters,
) -> Result<(), CatalogError> {
    /// Streams `records` as batch frames + a `Done` trailer. Chunking
    /// honours both the record cap and the per-frame byte budget, so no
    /// batch can ever hit the frame cap and poison the connection.
    /// Batches are carved off by moving (no per-record clone); the
    /// ranges tile the records front to back.
    fn stream_batches<T: seaice::artifact::Codec>(
        stream: &mut TcpStream,
        counters: &Counters,
        records: Vec<T>,
        make: impl Fn(Vec<T>) -> Response,
    ) -> Result<(), CatalogError> {
        let total = records.len() as u64;
        let ranges = wire::batch_ranges(&records, BATCH_RECORDS, wire::MAX_BATCH_BYTES);
        let mut records = records;
        for range in ranges {
            let rest = records.split_off(range.len());
            let batch = std::mem::replace(&mut records, rest);
            wire::write_message(stream, &make(batch))?;
        }
        counters
            .records_streamed
            .fetch_add(total, Ordering::Relaxed);
        wire::write_message(stream, &Response::Done { n_records: total })
    }

    /// Converts a catalog-side failure into an error frame.
    fn fail(
        stream: &mut TcpStream,
        counters: &Counters,
        e: CatalogError,
    ) -> Result<(), CatalogError> {
        counters.errors.fetch_add(1, Ordering::Relaxed);
        wire::write_message(
            stream,
            &Response::Error {
                code: ERR_CATALOG,
                message: e.to_string(),
            },
        )
    }

    match request {
        Request::Manifest => send(stream, &Response::Manifest(*catalog.grid())),
        Request::QueryRect { rect, time, scope } => {
            match catalog.query_rect_partials(&rect, time, &scope) {
                Ok(partials) => stream_batches(stream, counters, partials, Response::TileBatch),
                Err(e) => fail(stream, counters, e),
            }
        }
        Request::QueryBbox { bbox, time, scope } => {
            match catalog.query_bbox_partials(&bbox, time, &scope) {
                Ok(partials) => stream_batches(stream, counters, partials, Response::TileBatch),
                Err(e) => fail(stream, counters, e),
            }
        }
        Request::QueryPoint { point, time, scope } => {
            match catalog.query_point_scoped(point, time, &scope) {
                Ok(cell) => send(stream, &Response::Point(cell)),
                Err(e) => fail(stream, counters, e),
            }
        }
        Request::QueryTimeRange { time, scope } => {
            match catalog.query_time_range_partials(time, &scope) {
                Ok(layers) => {
                    let records: Vec<(crate::grid::TimeKey, crate::store::TilePartial)> = layers
                        .into_iter()
                        .flat_map(|(t, partials)| partials.into_iter().map(move |p| (t, p)))
                        .collect();
                    stream_batches(stream, counters, records, Response::LayerBatch)
                }
                Err(e) => fail(stream, counters, e),
            }
        }
        Request::QueryCells { rect, time, scope } => {
            match catalog.query_cells_scoped(&rect, time, &scope) {
                Ok(cells) => stream_batches(stream, counters, cells, Response::CellBatch),
                Err(e) => fail(stream, counters, e),
            }
        }
        Request::Stats { scope } => {
            let (stats, layers) = catalog.scoped_stats(&scope);
            send(stream, &Response::Stats { stats, layers })
        }
        Request::Validate { scope } => match catalog.validate_scoped(&scope) {
            Ok(checked) => send(
                stream,
                &Response::Done {
                    n_records: checked as u64,
                },
            ),
            Err(e) => fail(stream, counters, e),
        },
        // No catalog access: a ping must stay cheap and answerable even
        // when the store is busy — it measures the serve path, not the
        // query path.
        Request::Ping => send(stream, &Response::Pong(counters.snapshot())),
    }
}
