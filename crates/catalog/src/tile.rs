//! Tile contents: segment-level samples, per-cell aggregates, and the
//! per-tile **source ledger** that makes ingest idempotent.
//!
//! A tile is the unit of storage, caching, and atomic update. It carries
//! every ingested sample (segment-level detail for re-gridding and exact
//! bbox filtering) **canonically sorted**, and per-cell aggregates
//! derived from that order. Canonical order is what makes the catalog
//! ingest-order invariant: a tile's samples are a set, the sort gives the
//! set one byte-exact representation, and every floating-point reduction
//! (cell sums, query summaries) runs in that order — so two catalogs
//! built from the same granules in any order answer queries bit
//! identically.
//!
//! Format v2 (`SIT1` v2, decoding v1 transparently) adds two sections
//! after the samples:
//!
//! - the **ledger**: the sorted stable source ids (`(granule, beam)`
//!   FNV hashes) whose samples this tile holds — what lets a re-ingest
//!   be skipped (`IngestMode::Skip`) or replaced (`IngestMode::Replace`)
//!   per tile, with crash-atomicity inherited from the atomic tile
//!   replacement;
//! - the **base aggregates**: frozen per-cell contributions of samples
//!   dropped by a compaction retention horizon. The effective cell
//!   aggregates are defined as the base plus the live samples pushed in
//!   canonical order, so a tile keeps answering cell/point queries bit
//!   identically after its segment-level detail is retired.
//!
//! Format v3 (decoding v1 and v2 transparently) carries the thickness
//! product family:
//!
//! - every [`SampleRecord`] gains `thickness_m` / `thickness_sigma_m`
//!   fields. A sample **bears** thickness iff `thickness_sigma_m > 0`
//!   (every real retrieval has a positive σ; see `seaice-products`) —
//!   freeboard-only ingests and decoded v1/v2 records carry `0/0`,
//!   the documented "absent/zeroed" encoding;
//! - every [`CellAggregate`] gains thickness statistics over bearing
//!   samples: count/sum (plain mean), inverse-variance weights (IVW
//!   mean + combined σ), and a nearest-rank p95;
//! - the tile header gains a bearing-sample count (`n_thickness`) so
//!   the store index can answer thickness stats without decoding
//!   payloads.
//!
//! v1/v2 buffers decode with zeroed thickness and upgrade in place on
//! the next persist, exactly as the v1 → v2 migration did.
//!
//! Live cell aggregates remain derived data rebuilt on decode, which
//! doubles as a consistency check.

use std::collections::{BTreeMap, BTreeSet};

use icesat_scene::SurfaceClass;
use seaice::artifact::{Artifact, ArtifactError, Codec, Reader, Writer};

use crate::grid::{TileId, TimeKey};

/// One classified, freeboard-carrying 2 m segment inside a tile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleRecord {
    /// Stable hash of `(granule id, beam)` — the ingest source.
    pub source: u64,
    /// Along-track position within the source beam, metres.
    pub along_track_m: f64,
    /// Geodetic latitude, degrees.
    pub lat: f64,
    /// Longitude, degrees.
    pub lon: f64,
    /// EPSG-3976 easting, metres.
    pub x_m: f64,
    /// EPSG-3976 northing, metres.
    pub y_m: f64,
    /// Freeboard, metres.
    pub freeboard_m: f64,
    /// Classified surface type.
    pub class: SurfaceClass,
    /// Row-major aggregate-cell index within the owning tile.
    pub cell: u32,
    /// Retrieved ice thickness, metres (0 when not thickness-bearing).
    pub thickness_m: f64,
    /// 1-σ thickness uncertainty, metres. `> 0` iff the sample bears a
    /// retrieved thickness; freeboard-only ingests and v1/v2 decodes
    /// carry 0.
    pub thickness_sigma_m: f64,
}

impl SampleRecord {
    /// Stable source id for a `(granule, beam)` pair: FNV-1a over the
    /// granule id bytes and the beam index. Independent of ingest order
    /// (unlike an interning table), so sorted tiles are too.
    pub fn source_id(granule_id: &str, beam_index: usize) -> u64 {
        crate::fnv1a(granule_id.bytes().chain((beam_index as u64).to_le_bytes()))
    }

    /// Whether this sample bears a retrieved thickness (see the module
    /// docs — `sigma > 0` is the marker).
    pub fn bears_thickness(&self) -> bool {
        self.thickness_sigma_m > 0.0
    }

    /// The canonical total order tiles are sorted by. Every field
    /// participates, so ties are byte-identical records and any sort
    /// produces the same sequence. The thickness fields compare last:
    /// v2-era records (both zero) order exactly as they did before v3.
    pub fn canonical_cmp(a: &SampleRecord, b: &SampleRecord) -> std::cmp::Ordering {
        a.source
            .cmp(&b.source)
            .then_with(|| a.along_track_m.total_cmp(&b.along_track_m))
            .then_with(|| a.freeboard_m.total_cmp(&b.freeboard_m))
            .then_with(|| a.class.index().cmp(&b.class.index()))
            .then_with(|| a.cell.cmp(&b.cell))
            .then_with(|| a.lat.total_cmp(&b.lat))
            .then_with(|| a.lon.total_cmp(&b.lon))
            .then_with(|| a.x_m.total_cmp(&b.x_m))
            .then_with(|| a.y_m.total_cmp(&b.y_m))
            .then_with(|| a.thickness_m.total_cmp(&b.thickness_m))
            .then_with(|| a.thickness_sigma_m.total_cmp(&b.thickness_sigma_m))
    }

    /// Format-aware decode: a v1/v2 record is a strict byte prefix of a
    /// v3 record, with the thickness fields reading as zeroed (the
    /// "absent" encoding).
    fn decode_format(r: &mut Reader<'_>, format: u16) -> Result<Self, ArtifactError> {
        let mut s = SampleRecord {
            source: r.take_u64()?,
            along_track_m: r.take_f64()?,
            lat: r.take_f64()?,
            lon: r.take_f64()?,
            x_m: r.take_f64()?,
            y_m: r.take_f64()?,
            freeboard_m: r.take_f64()?,
            class: SurfaceClass::decode(r)?,
            cell: r.take_u32()?,
            thickness_m: 0.0,
            thickness_sigma_m: 0.0,
        };
        if format >= 3 {
            s.thickness_m = r.take_f64()?;
            s.thickness_sigma_m = r.take_f64()?;
        }
        Ok(s)
    }
}

impl Codec for SampleRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.source);
        w.put_f64(self.along_track_m);
        w.put_f64(self.lat);
        w.put_f64(self.lon);
        w.put_f64(self.x_m);
        w.put_f64(self.y_m);
        w.put_f64(self.freeboard_m);
        self.class.encode(w);
        w.put_u32(self.cell);
        w.put_f64(self.thickness_m);
        w.put_f64(self.thickness_sigma_m);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ArtifactError> {
        SampleRecord::decode_format(r, Tile::VERSION)
    }
}

/// Freeboard/ice-type/thickness aggregates of one grid cell, derived
/// from the owning tile's canonically sorted samples.
///
/// The thickness statistics (`t_*`) cover **bearing** samples only
/// (`thickness_sigma_m > 0`): the incremental fields accumulate in
/// canonical order like the freeboard sums, and `t_p95_m` is a
/// nearest-rank percentile computed over the cell's live bearing
/// thicknesses during the rebuild ([`seaice::stats`]'s shared helper).
/// Across layer/compaction merges the p95 combines as `max` — exact
/// whenever one side has no bearing samples (the common case), an upper
/// nearest-rank approximation otherwise; the associative/commutative
/// `max` is what keeps merged answers deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellAggregate {
    /// Samples in the cell.
    pub n: u64,
    /// Samples per surface class (thick, thin, open water).
    pub class_counts: [u64; 3],
    /// Ice samples (thick + thin).
    pub ice_n: u64,
    /// Sum of ice freeboard, metres (canonical-order reduction).
    pub ice_sum_m: f64,
    /// Minimum freeboard over all samples, metres.
    pub min_freeboard_m: f64,
    /// Maximum freeboard over all samples, metres.
    pub max_freeboard_m: f64,
    /// Thickness-bearing samples in the cell.
    pub t_n: u64,
    /// Sum of bearing thickness, metres (canonical-order reduction).
    pub t_sum_m: f64,
    /// Sum of inverse variances `Σ 1/σ²`, 1/m².
    pub t_w_sum: f64,
    /// Inverse-variance-weighted thickness sum `Σ T/σ²`, 1/m.
    pub t_wt_sum: f64,
    /// Nearest-rank p95 of bearing thickness, metres (0 when none).
    pub t_p95_m: f64,
}

impl CellAggregate {
    fn empty() -> CellAggregate {
        CellAggregate {
            n: 0,
            class_counts: [0; 3],
            ice_n: 0,
            ice_sum_m: 0.0,
            min_freeboard_m: f64::INFINITY,
            max_freeboard_m: f64::NEG_INFINITY,
            t_n: 0,
            t_sum_m: 0.0,
            t_w_sum: 0.0,
            t_wt_sum: 0.0,
            t_p95_m: 0.0,
        }
    }

    fn push(&mut self, s: &SampleRecord) {
        self.n += 1;
        self.class_counts[s.class.index()] += 1;
        if s.class != SurfaceClass::OpenWater {
            self.ice_n += 1;
            self.ice_sum_m += s.freeboard_m;
        }
        self.min_freeboard_m = self.min_freeboard_m.min(s.freeboard_m);
        self.max_freeboard_m = self.max_freeboard_m.max(s.freeboard_m);
        if s.bears_thickness() {
            self.t_n += 1;
            self.t_sum_m += s.thickness_m;
            let w = 1.0 / (s.thickness_sigma_m * s.thickness_sigma_m);
            self.t_w_sum += w;
            self.t_wt_sum += w * s.thickness_m;
        }
    }

    /// Mean ice freeboard, metres (0 when the cell holds no ice).
    pub fn mean_ice_freeboard_m(&self) -> f64 {
        if self.ice_n == 0 {
            0.0
        } else {
            self.ice_sum_m / self.ice_n as f64
        }
    }

    /// Mean thickness over bearing samples, metres (0 when none).
    pub fn mean_thickness_m(&self) -> f64 {
        if self.t_n == 0 {
            0.0
        } else {
            self.t_sum_m / self.t_n as f64
        }
    }

    /// Inverse-variance-weighted mean thickness, metres (0 when no
    /// bearing samples) — the minimum-variance combination of the
    /// cell's per-sample retrievals.
    pub fn ivw_mean_thickness_m(&self) -> f64 {
        if self.t_n == 0 {
            0.0
        } else {
            self.t_wt_sum / self.t_w_sum
        }
    }

    /// Combined 1-σ of the IVW mean, metres: `sqrt(1/Σ(1/σ²))` (0 when
    /// no bearing samples).
    pub fn thickness_sigma_m(&self) -> f64 {
        if self.t_n == 0 {
            0.0
        } else {
            (1.0 / self.t_w_sum).sqrt()
        }
    }

    /// The most populated class (ties break toward the lower index,
    /// matching `SurfaceClass::ALL` order).
    pub fn dominant_class(&self) -> SurfaceClass {
        let mut best = 0usize;
        for i in 1..3 {
            if self.class_counts[i] > self.class_counts[best] {
                best = i;
            }
        }
        SurfaceClass::from_index(best).expect("index in 0..3")
    }

    /// Format-aware decode: v1/v2 aggregates read with zeroed thickness
    /// statistics.
    fn decode_format(r: &mut Reader<'_>, format: u16) -> Result<Self, ArtifactError> {
        let mut agg = CellAggregate {
            n: r.take_u64()?,
            class_counts: <[u64; 3]>::decode(r)?,
            ice_n: r.take_u64()?,
            ice_sum_m: r.take_f64()?,
            min_freeboard_m: r.take_f64()?,
            max_freeboard_m: r.take_f64()?,
            t_n: 0,
            t_sum_m: 0.0,
            t_w_sum: 0.0,
            t_wt_sum: 0.0,
            t_p95_m: 0.0,
        };
        if format >= 3 {
            agg.t_n = r.take_u64()?;
            agg.t_sum_m = r.take_f64()?;
            agg.t_w_sum = r.take_f64()?;
            agg.t_wt_sum = r.take_f64()?;
            agg.t_p95_m = r.take_f64()?;
        }
        Ok(agg)
    }
}

impl Codec for CellAggregate {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.n);
        self.class_counts.encode(w);
        w.put_u64(self.ice_n);
        w.put_f64(self.ice_sum_m);
        w.put_f64(self.min_freeboard_m);
        w.put_f64(self.max_freeboard_m);
        w.put_u64(self.t_n);
        w.put_f64(self.t_sum_m);
        w.put_f64(self.t_w_sum);
        w.put_f64(self.t_wt_sum);
        w.put_f64(self.t_p95_m);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ArtifactError> {
        CellAggregate::decode_format(r, Tile::VERSION)
    }
}

/// The one cell-aggregate fold: `base` (frozen reduction prefix) plus
/// the live samples pushed in canonical order, then each cell's
/// thickness p95 over its live bearing thicknesses (sorted, shared
/// nearest-rank helper) combined with the frozen base p95 via `max`.
/// Used verbatim by the rebuild after every merge/decode *and* by
/// [`Tile::check_consistency`], so the invariant checked is exactly the
/// one maintained.
fn fold_cells(
    base: &BTreeMap<u32, CellAggregate>,
    samples: &[SampleRecord],
) -> BTreeMap<u32, CellAggregate> {
    let mut cells = base.clone();
    let mut bearing: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
    for s in samples {
        cells
            .entry(s.cell)
            .or_insert_with(CellAggregate::empty)
            .push(s);
        if s.bears_thickness() {
            bearing.entry(s.cell).or_default().push(s.thickness_m);
        }
    }
    for (cell, mut v) in bearing {
        v.sort_by(|a, b| a.total_cmp(b));
        let p95 = seaice::stats::percentile_nearest_rank(&v, 0.95);
        let agg = cells.get_mut(&cell).expect("bearing cell was pushed");
        agg.t_p95_m = agg.t_p95_m.max(p95);
    }
    cells
}

/// One versioned tile of one temporal layer.
#[derive(Debug, Clone)]
pub struct Tile {
    /// Spatial address.
    pub id: TileId,
    /// Temporal layer.
    pub time: TimeKey,
    /// Merge counter: bumped on every ingest batch applied to the tile.
    /// Diagnostic only — deliberately excluded from query results, since
    /// it depends on how ingest batches were grouped.
    pub version: u64,
    /// Samples in canonical order (see [`SampleRecord::canonical_cmp`]).
    samples: Vec<SampleRecord>,
    /// Sorted source ids whose samples this tile holds (or held, for
    /// sources whose detail was retired into `base` by retention).
    /// Always a superset of the distinct sources in `samples`; exactly
    /// equal to them while `base` is empty.
    ledger: Vec<u64>,
    /// Frozen per-cell contributions of retention-dropped samples.
    /// Empty for every tile that still carries full segment detail.
    base: BTreeMap<u32, CellAggregate>,
    /// Effective per-cell aggregates, keyed by row-major cell index:
    /// `base` plus the live samples pushed in canonical order. Derived;
    /// rebuilt after every merge and on decode.
    cells: BTreeMap<u32, CellAggregate>,
}

impl Tile {
    /// An empty tile.
    pub fn new(id: TileId, time: TimeKey) -> Tile {
        Tile {
            id,
            time,
            version: 0,
            samples: Vec::new(),
            ledger: Vec::new(),
            base: BTreeMap::new(),
            cells: BTreeMap::new(),
        }
    }

    /// The canonically sorted samples.
    pub fn samples(&self) -> &[SampleRecord] {
        &self.samples
    }

    /// The effective per-cell aggregates (ascending cell index): frozen
    /// base contributions plus live samples.
    pub fn cells(&self) -> &BTreeMap<u32, CellAggregate> {
        &self.cells
    }

    /// The sorted source-id ledger.
    pub fn sources(&self) -> &[u64] {
        &self.ledger
    }

    /// `true` when `source` appears in the ledger.
    pub fn has_source(&self, source: u64) -> bool {
        self.ledger.binary_search(&source).is_ok()
    }

    /// The frozen base aggregates (empty unless a compaction retention
    /// horizon retired this tile's segment detail).
    pub fn base(&self) -> &BTreeMap<u32, CellAggregate> {
        &self.base
    }

    /// Samples retired into the base by retention (no longer stored
    /// segment-level).
    pub fn n_dropped(&self) -> u64 {
        self.base.values().map(|c| c.n).sum()
    }

    /// Merges an ingest batch: sorts the incoming batch, merges the two
    /// canonically sorted runs in one linear pass (ties are
    /// byte-identical records, so run order cannot matter), records the
    /// batch's sources in the ledger, and rebuilds every cell aggregate
    /// from the result (the full rebuild keeps the reduction order
    /// independent of merge history). O(N + m·log m) per batch instead
    /// of re-sorting all N accumulated samples.
    pub fn merge(&mut self, batch: &[SampleRecord]) {
        let mut incoming = batch.to_vec();
        incoming.sort_unstable_by(SampleRecord::canonical_cmp);
        for s in &incoming {
            if let Err(at) = self.ledger.binary_search(&s.source) {
                self.ledger.insert(at, s.source);
            }
        }
        let old = std::mem::take(&mut self.samples);
        self.samples = Vec::with_capacity(old.len() + incoming.len());
        let (mut a, mut b) = (old.into_iter().peekable(), incoming.into_iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if SampleRecord::canonical_cmp(x, y) != std::cmp::Ordering::Greater {
                        self.samples.push(a.next().expect("peeked"));
                    } else {
                        self.samples.push(b.next().expect("peeked"));
                    }
                }
                (Some(_), None) => self.samples.push(a.next().expect("peeked")),
                (None, Some(_)) => self.samples.push(b.next().expect("peeked")),
                (None, None) => break,
            }
        }
        self.rebuild_cells();
        self.version += 1;
    }

    /// Removes every live sample of `source` and merges `batch` in its
    /// place, as one version bump — the per-tile half of
    /// [`crate::store::IngestMode::Replace`]. Returns the number of
    /// samples removed. Base contributions are frozen and cannot be
    /// replaced; `source` stays in the ledger while the base is
    /// non-empty. (Replacing a retention-*archived* source — ledger
    /// entry backed only by base — would double-count it; the store
    /// refuses that case with `CatalogError::ArchivedSource` before
    /// calling here.)
    pub fn replace_source(&mut self, source: u64, batch: &[SampleRecord]) -> usize {
        let before = self.samples.len();
        self.samples.retain(|s| s.source != source);
        let removed = before - self.samples.len();
        if self.base.is_empty() && batch.is_empty() {
            if let Ok(at) = self.ledger.binary_search(&source) {
                self.ledger.remove(at);
            }
        }
        // `merge` rebuilds the aggregates and bumps the version even for
        // an empty batch (a removal is a real state change).
        self.merge(batch);
        removed
    }

    /// Retires the tile's segment-level detail: the current effective
    /// cell aggregates become the frozen base, the samples are dropped,
    /// and the ledger is kept (so idempotent re-ingest still recognises
    /// the retired sources). Returns the number of samples dropped.
    /// Used by `catalog::compact`'s retention horizon.
    pub fn freeze_detail(&mut self) -> usize {
        let dropped = self.samples.len();
        if dropped > 0 {
            self.base = self.cells.clone();
            self.samples.clear();
            self.rebuild_cells();
        }
        dropped
    }

    /// Assembles a tile from already-canonical parts (compaction's
    /// constructor). `samples` must be canonically sorted; `ledger` must
    /// be sorted, deduplicated, and cover the samples' sources.
    pub(crate) fn from_parts(
        id: TileId,
        time: TimeKey,
        version: u64,
        samples: Vec<SampleRecord>,
        ledger: Vec<u64>,
        base: BTreeMap<u32, CellAggregate>,
    ) -> Tile {
        let mut tile = Tile {
            id,
            time,
            version,
            samples,
            ledger,
            base,
            cells: BTreeMap::new(),
        };
        tile.rebuild_cells();
        tile
    }

    /// Live samples bearing a retrieved thickness (σ > 0). O(n); the
    /// store caches the value in its index at publish time.
    pub fn n_thickness(&self) -> u64 {
        self.samples.iter().filter(|s| s.bears_thickness()).count() as u64
    }

    /// Effective aggregates: the shared [`fold_cells`] over base +
    /// live samples.
    fn rebuild_cells(&mut self) {
        self.cells = fold_cells(&self.base, &self.samples);
    }

    /// Checks the tile's internal invariants — what concurrent readers
    /// assert about every snapshot they observe: samples in canonical
    /// order, the ledger sorted and covering every sample's source
    /// (exactly, while no base is frozen), and cell aggregates exactly
    /// consistent with base + samples.
    pub fn check_consistency(&self) -> Result<(), &'static str> {
        if !self
            .samples
            .windows(2)
            .all(|w| SampleRecord::canonical_cmp(&w[0], &w[1]) != std::cmp::Ordering::Greater)
        {
            return Err("samples out of canonical order");
        }
        if !self.ledger.windows(2).all(|w| w[0] < w[1]) {
            return Err("ledger out of order or duplicated");
        }
        let sample_sources: BTreeSet<u64> = self.samples.iter().map(|s| s.source).collect();
        if !sample_sources.iter().all(|s| self.has_source(*s)) {
            return Err("sample source missing from ledger");
        }
        if self.base.is_empty() && self.ledger.len() != sample_sources.len() {
            return Err("ledger lists a source with no samples and no base");
        }
        let rebuilt = fold_cells(&self.base, &self.samples);
        if rebuilt != self.cells {
            return Err("cell aggregates inconsistent with base + samples");
        }
        let total: u64 = self.cells.values().map(|c| c.n).sum();
        if total != self.samples.len() as u64 + self.n_dropped() {
            return Err("cell counts do not cover samples");
        }
        Ok(())
    }

    fn decode_body(r: &mut Reader<'_>, format: u16) -> Result<Self, ArtifactError> {
        let id = TileId::decode(r)?;
        let time = TimeKey::decode(r)?;
        let version = r.take_u64()?;
        // v3 headers carry the bearing-sample count before the samples
        // (so `peek` can index it); validated against the payload below.
        let n_thickness = if format >= 3 {
            Some(r.take_u64()?)
        } else {
            None
        };
        let n = usize::decode(r)?;
        if n > r.remaining() {
            return Err(ArtifactError::Truncated);
        }
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            samples.push(SampleRecord::decode_format(r, format)?);
        }
        if let Some(expected) = n_thickness {
            let counted = samples.iter().filter(|s| s.bears_thickness()).count() as u64;
            if counted != expected {
                return Err(ArtifactError::Invalid(
                    "header thickness count inconsistent with samples",
                ));
            }
        }
        if !samples
            .windows(2)
            .all(|w| SampleRecord::canonical_cmp(&w[0], &w[1]) != std::cmp::Ordering::Greater)
        {
            return Err(ArtifactError::Invalid("tile samples out of order"));
        }
        let (ledger, base) = match format {
            // v1 (pre-ledger): the sources are exactly the samples', no
            // frozen base. Upgraded in place on the next persist.
            1 => {
                let sources: BTreeSet<u64> = samples.iter().map(|s| s.source).collect();
                (sources.into_iter().collect(), BTreeMap::new())
            }
            _ => {
                let ledger: Vec<u64> = Vec::decode(r)?;
                if !ledger.windows(2).all(|w| w[0] < w[1]) {
                    return Err(ArtifactError::Invalid("tile ledger out of order"));
                }
                // Canonical order is source-major, so one pass over the
                // distinct sample sources validates ledger coverage
                // without re-folding the aggregates (the rebuild below
                // already derives them; `check_consistency` remains the
                // full audit for `validate()`).
                let mut n_sources = 0usize;
                let mut last: Option<u64> = None;
                for s in &samples {
                    if last != Some(s.source) {
                        last = Some(s.source);
                        n_sources += 1;
                        if ledger.binary_search(&s.source).is_err() {
                            return Err(ArtifactError::Invalid(
                                "sample source missing from ledger",
                            ));
                        }
                    }
                }
                let n_base = usize::decode(r)?;
                if n_base > r.remaining() {
                    return Err(ArtifactError::Truncated);
                }
                let mut base_cells: Vec<(u32, CellAggregate)> = Vec::with_capacity(n_base);
                for _ in 0..n_base {
                    let cell = r.take_u32()?;
                    base_cells.push((cell, CellAggregate::decode_format(r, format)?));
                }
                if !base_cells.windows(2).all(|w| w[0].0 < w[1].0) {
                    return Err(ArtifactError::Invalid("tile base cells out of order"));
                }
                if base_cells.is_empty() && ledger.len() != n_sources {
                    return Err(ArtifactError::Invalid(
                        "ledger lists a source with no samples and no base",
                    ));
                }
                (ledger, base_cells.into_iter().collect())
            }
        };
        let mut tile = Tile {
            id,
            time,
            version,
            samples,
            ledger,
            base,
            cells: BTreeMap::new(),
        };
        tile.rebuild_cells();
        Ok(tile)
    }
}

impl Codec for Tile {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        self.time.encode(w);
        w.put_u64(self.version);
        w.put_u64(self.n_thickness());
        self.samples.encode(w);
        self.ledger.encode(w);
        let base_cells: Vec<(u32, CellAggregate)> =
            self.base.iter().map(|(&c, &a)| (c, a)).collect();
        base_cells.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ArtifactError> {
        Tile::decode_body(r, Self::VERSION)
    }
}

impl Artifact for Tile {
    const TAG: [u8; 4] = *b"SIT1";
    const VERSION: u16 = 3;

    /// Backward-compatible decode: accepts v1 (pre-ledger) and v2
    /// (pre-thickness) tiles; v1 ledgers are reconstructed from the
    /// samples, v2 thickness fields read as zeroed.
    fn from_bytes(data: &[u8]) -> Result<Self, ArtifactError> {
        let mut r = Reader::new(data);
        let tag = r.take_slice(4)?;
        if tag != Self::TAG {
            return Err(ArtifactError::BadMagic);
        }
        let format = r.take_u16()?;
        if format == 0 || format > Self::VERSION {
            return Err(ArtifactError::BadVersion(format));
        }
        Tile::decode_body(&mut r, format)
    }
}

/// Header of a persisted tile, readable without decoding samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileHeader {
    /// Spatial address.
    pub id: TileId,
    /// Temporal layer.
    pub time: TimeKey,
    /// Merge counter.
    pub version: u64,
    /// Stored sample count.
    pub n_samples: u64,
    /// Thickness-bearing sample count (0 for v1/v2 files).
    pub n_thickness: u64,
}

impl Tile {
    /// Reads only the framed header of a tile file. The catalog uses
    /// this to bootstrap its authoritative version/size index on open
    /// without decoding any sample payload. Every format version keeps
    /// this prefix peekable: v2 appends its ledger and base *after* the
    /// samples, v3 additionally slots its bearing-sample count into the
    /// header itself (between the merge counter and the sample length).
    pub fn peek(path: &std::path::Path) -> Result<TileHeader, ArtifactError> {
        use std::io::Read;
        // tag(4) + format version(2) + id(9) + time(3) + merge
        // counter(8) [+ thickness count(8), v3] + sample-vec length(8):
        // 42 bytes covers the v3 header, older formats need only 34 —
        // the bounded short read keeps a minimal (34-byte) v1 file
        // peekable and turns genuinely truncated files into `Truncated`.
        let mut buf = Vec::with_capacity(42);
        Read::take(std::fs::File::open(path)?, 42).read_to_end(&mut buf)?;
        let mut r = Reader::new(&buf);
        let tag = r.take_slice(4)?;
        if tag != Self::TAG {
            return Err(ArtifactError::BadMagic);
        }
        let format = r.take_u16()?;
        if format == 0 || format > Self::VERSION {
            return Err(ArtifactError::BadVersion(format));
        }
        let id = TileId::decode(&mut r)?;
        let time = TimeKey::decode(&mut r)?;
        let version = r.take_u64()?;
        let n_thickness = if format >= 3 { r.take_u64()? } else { 0 };
        Ok(TileHeader {
            id,
            time,
            version,
            n_samples: r.take_u64()?,
            n_thickness,
        })
    }
}

/// The catalog manifest: pins the grid every tile was addressed with.
///
/// Format v2 signals that the directory may hold v2 (ledger-carrying)
/// tiles and per-layer ledger sidecars, v3 that it may hold v3
/// (thickness-carrying) tiles — so an older build fails fast at open
/// instead of per tile. The body is unchanged across versions and v1/v2
/// manifests still decode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogManifest {
    /// The catalog's tiling.
    pub grid: crate::grid::GridConfig,
}

impl Codec for CatalogManifest {
    fn encode(&self, w: &mut Writer) {
        self.grid.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ArtifactError> {
        Ok(CatalogManifest {
            grid: crate::grid::GridConfig::decode(r)?,
        })
    }
}

impl Artifact for CatalogManifest {
    const TAG: [u8; 4] = *b"SICM";
    const VERSION: u16 = 3;

    /// Backward-compatible decode: v1/v2 manifests share the v3 body.
    fn from_bytes(data: &[u8]) -> Result<Self, ArtifactError> {
        let mut r = Reader::new(data);
        let tag = r.take_slice(4)?;
        if tag != Self::TAG {
            return Err(ArtifactError::BadMagic);
        }
        let format = r.take_u16()?;
        if format == 0 || format > Self::VERSION {
            return Err(ArtifactError::BadVersion(format));
        }
        Self::decode(&mut r)
    }
}

/// Per-layer sidecar ledger (`ledgers/YYYYMM.ledger`, `SISL` v1): the
/// source ids whose ingest into the layer **completed** — the fast path
/// that lets `IngestMode::Skip` short-circuit a re-run before
/// projecting a single point.
///
/// The sidecar is a cache, not ground truth: it is written (atomically)
/// only after every tile merge of an ingest call succeeded, so a crash
/// mid-ingest leaves the source out of the sidecar and the next ingest
/// falls back to the per-tile ledgers, healing the partial state. Losing
/// or deleting a sidecar costs performance, never correctness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerLedger {
    /// The temporal layer this ledger covers.
    pub time: TimeKey,
    /// Sorted, deduplicated source ids with completed ingests.
    pub sources: Vec<u64>,
}

impl Codec for LayerLedger {
    fn encode(&self, w: &mut Writer) {
        self.time.encode(w);
        self.sources.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ArtifactError> {
        let time = TimeKey::decode(r)?;
        let sources: Vec<u64> = Vec::decode(r)?;
        if !sources.windows(2).all(|w| w[0] < w[1]) {
            return Err(ArtifactError::Invalid("layer ledger out of order"));
        }
        Ok(LayerLedger { time, sources })
    }
}

impl Artifact for LayerLedger {
    const TAG: [u8; 4] = *b"SISL";
    const VERSION: u16 = 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(source: u64, along: f64, fb: f64, class: SurfaceClass, cell: u32) -> SampleRecord {
        SampleRecord {
            source,
            along_track_m: along,
            lat: -74.0,
            lon: -160.0,
            x_m: 1.0,
            y_m: 2.0,
            freeboard_m: fb,
            class,
            cell,
            thickness_m: 0.0,
            thickness_sigma_m: 0.0,
        }
    }

    fn thick_sample(
        source: u64,
        along: f64,
        fb: f64,
        cell: u32,
        t: f64,
        sigma: f64,
    ) -> SampleRecord {
        SampleRecord {
            thickness_m: t,
            thickness_sigma_m: sigma,
            ..sample(source, along, fb, SurfaceClass::ThickIce, cell)
        }
    }

    /// Encodes one sample in the 61-byte v2 layout (no thickness
    /// fields) — for hand-building legacy buffers.
    fn encode_v2_record(w: &mut Writer, s: &SampleRecord) {
        w.put_u64(s.source);
        w.put_f64(s.along_track_m);
        w.put_f64(s.lat);
        w.put_f64(s.lon);
        w.put_f64(s.x_m);
        w.put_f64(s.y_m);
        w.put_f64(s.freeboard_m);
        s.class.encode(w);
        w.put_u32(s.cell);
    }

    fn batch_a() -> Vec<SampleRecord> {
        vec![
            sample(2, 10.0, 0.30, SurfaceClass::ThickIce, 5),
            sample(2, 12.0, 0.02, SurfaceClass::OpenWater, 5),
            sample(1, 4.0, 0.10, SurfaceClass::ThinIce, 9),
        ]
    }

    fn batch_b() -> Vec<SampleRecord> {
        vec![
            sample(1, 2.0, 0.40, SurfaceClass::ThickIce, 9),
            sample(3, 8.0, 0.25, SurfaceClass::ThickIce, 1),
        ]
    }

    #[test]
    fn merge_order_does_not_change_tile_bytes() {
        let id = TileId::new(2, 1, 3).unwrap();
        let t = TimeKey::new(2019, 11).unwrap();
        let mut ab = Tile::new(id, t);
        ab.merge(&batch_a());
        ab.merge(&batch_b());
        let mut ba = Tile::new(id, t);
        ba.merge(&batch_b());
        ba.merge(&batch_a());
        assert_eq!(ab.samples(), ba.samples());
        assert_eq!(ab.cells(), ba.cells());
        assert_eq!(ab.to_bytes(), ba.to_bytes());
        ab.check_consistency().unwrap();
    }

    #[test]
    fn cell_aggregates_match_samples() {
        let mut tile = Tile::new(
            TileId::new(1, 0, 0).unwrap(),
            TimeKey::new(2020, 3).unwrap(),
        );
        tile.merge(&batch_a());
        let c5 = tile.cells()[&5];
        assert_eq!(c5.n, 2);
        assert_eq!(c5.class_counts, [1, 0, 1]);
        assert_eq!(c5.ice_n, 1);
        assert!((c5.mean_ice_freeboard_m() - 0.30).abs() < 1e-15);
        assert_eq!(c5.min_freeboard_m, 0.02);
        assert_eq!(c5.max_freeboard_m, 0.30);
        assert_eq!(c5.dominant_class(), SurfaceClass::ThickIce);
        tile.check_consistency().unwrap();
    }

    #[test]
    fn tile_roundtrips_and_rejects_unsorted_buffers() {
        let mut tile = Tile::new(
            TileId::new(3, 7, 2).unwrap(),
            TimeKey::new(2019, 9).unwrap(),
        );
        tile.merge(&batch_a());
        tile.merge(&batch_b());
        let bytes = tile.to_bytes();
        let back = Tile::from_bytes(&bytes).unwrap();
        assert_eq!(back.samples(), tile.samples());
        assert_eq!(back.cells(), tile.cells());
        assert_eq!(back.version, tile.version);

        // Corrupt: swap two samples so the canonical order breaks. The
        // sample section starts after tag(4)+version(2)+id(9)+time(3)+
        // merge counter(8)+thickness count(8)+len(8); one v3 record is
        // 8+6*8+1+4+2*8 = 77 bytes.
        let mut corrupt = bytes.to_vec();
        let start = 4 + 2 + 9 + 3 + 8 + 8 + 8;
        let (a, b) = (start, start + 77);
        let tmp: Vec<u8> = corrupt[a..a + 77].to_vec();
        corrupt.copy_within(b..b + 77, a);
        corrupt[b..b + 77].copy_from_slice(&tmp);
        assert!(matches!(
            Tile::from_bytes(&corrupt),
            Err(ArtifactError::Invalid(_))
        ));
    }

    #[test]
    fn ledger_tracks_merge_replace_and_remove() {
        let mut tile = Tile::new(
            TileId::new(2, 1, 3).unwrap(),
            TimeKey::new(2019, 11).unwrap(),
        );
        tile.merge(&batch_a());
        tile.merge(&batch_b());
        assert_eq!(tile.sources(), &[1, 2, 3]);
        assert!(tile.has_source(2) && !tile.has_source(4));
        tile.check_consistency().unwrap();

        // Replace source 2 with a perturbed pair of samples.
        let newer = vec![
            sample(2, 11.0, 0.33, SurfaceClass::ThickIce, 5),
            sample(2, 13.0, 0.01, SurfaceClass::OpenWater, 6),
        ];
        let removed = tile.replace_source(2, &newer);
        assert_eq!(removed, 2);
        assert_eq!(tile.sources(), &[1, 2, 3]);
        assert_eq!(tile.samples().iter().filter(|s| s.source == 2).count(), 2);
        tile.check_consistency().unwrap();

        // Replacing with nothing removes the source from the ledger.
        let removed = tile.replace_source(2, &[]);
        assert_eq!(removed, 2);
        assert_eq!(tile.sources(), &[1, 3]);
        tile.check_consistency().unwrap();

        // Replace equals a fresh build of the same content, bit for bit
        // (versions aside).
        let mut fresh = Tile::new(tile.id, tile.time);
        fresh.merge(&batch_a());
        fresh.merge(&batch_b());
        let newer2 = newer.clone();
        fresh.replace_source(2, &newer2);
        fresh.replace_source(2, &[]);
        assert_eq!(fresh.samples(), tile.samples());
        assert_eq!(fresh.cells(), tile.cells());
    }

    #[test]
    fn freeze_detail_preserves_cells_and_survives_roundtrip() {
        let mut tile = Tile::new(
            TileId::new(3, 7, 2).unwrap(),
            TimeKey::new(2019, 9).unwrap(),
        );
        tile.merge(&batch_a());
        tile.merge(&batch_b());
        let cells_before = tile.cells().clone();
        let ledger_before = tile.sources().to_vec();
        let dropped = tile.freeze_detail();
        assert_eq!(dropped, 5);
        assert!(tile.samples().is_empty());
        assert_eq!(tile.n_dropped(), 5);
        assert_eq!(tile.cells(), &cells_before, "aggregates survive retention");
        assert_eq!(tile.sources(), &ledger_before[..]);
        tile.check_consistency().unwrap();

        // Roundtrip through the v2 format keeps the frozen base.
        let back = Tile::from_bytes(&tile.to_bytes()).unwrap();
        assert_eq!(back.cells(), &cells_before);
        assert_eq!(back.n_dropped(), 5);
        assert_eq!(back.sources(), &ledger_before[..]);

        // New samples still merge on top of the frozen base.
        let mut merged = back.clone();
        merged.merge(&[sample(9, 1.0, 0.5, SurfaceClass::ThickIce, 5)]);
        merged.check_consistency().unwrap();
        assert_eq!(merged.cells()[&5].n, cells_before[&5].n + 1);
    }

    /// A v1 (pre-ledger) tile buffer still decodes: the ledger is
    /// reconstructed from the samples, and re-encoding upgrades to v2.
    #[test]
    fn v1_tile_buffers_decode_with_reconstructed_ledger() {
        let mut tile = Tile::new(
            TileId::new(2, 1, 3).unwrap(),
            TimeKey::new(2019, 11).unwrap(),
        );
        tile.merge(&batch_a());
        tile.merge(&batch_b());
        // Hand-build the v1 framing: tag, version 1, id, time, merge
        // counter, 61-byte samples — no ledger, no base, no thickness.
        let mut w = Writer::new();
        w.put_slice(b"SIT1");
        w.put_u16(1);
        tile.id.encode(&mut w);
        tile.time.encode(&mut w);
        w.put_u64(tile.version);
        w.put_u64(tile.samples().len() as u64);
        for s in tile.samples() {
            encode_v2_record(&mut w, s);
        }
        let v1_bytes = w.finish();

        let back = Tile::from_bytes(&v1_bytes).unwrap();
        assert_eq!(back.samples(), tile.samples());
        assert_eq!(back.cells(), tile.cells());
        assert_eq!(back.sources(), &[1, 2, 3], "ledger rebuilt from samples");
        assert!(back.base().is_empty());
        back.check_consistency().unwrap();
        // Re-encoding writes the current version.
        assert_eq!(&back.to_bytes()[4..6], &3u16.to_le_bytes());
        // Future versions are still rejected.
        let mut future = v1_bytes.to_vec();
        future[4..6].copy_from_slice(&4u16.to_le_bytes());
        assert!(matches!(
            Tile::from_bytes(&future),
            Err(ArtifactError::BadVersion(4))
        ));
    }

    /// A v2 (pre-thickness) tile buffer decodes with zeroed thickness
    /// fields and aggregates, and re-encodes as v3 — the in-place
    /// upgrade the store performs on its next persist.
    #[test]
    fn v2_tile_buffers_decode_with_zeroed_thickness() {
        let mut tile = Tile::new(
            TileId::new(2, 1, 3).unwrap(),
            TimeKey::new(2019, 11).unwrap(),
        );
        tile.merge(&batch_a());
        tile.merge(&batch_b());
        // Hand-build the v2 framing: tag, version 2, id, time, merge
        // counter, 61-byte samples, ledger, base aggregates (v2 layout,
        // empty here).
        let mut w = Writer::new();
        w.put_slice(b"SIT1");
        w.put_u16(2);
        tile.id.encode(&mut w);
        tile.time.encode(&mut w);
        w.put_u64(tile.version);
        w.put_u64(tile.samples().len() as u64);
        for s in tile.samples() {
            encode_v2_record(&mut w, s);
        }
        tile.sources().to_vec().encode(&mut w);
        w.put_u64(0); // empty base
        let v2_bytes = w.finish();

        let back = Tile::from_bytes(&v2_bytes).unwrap();
        assert_eq!(back.samples(), tile.samples());
        assert_eq!(back.cells(), tile.cells());
        assert_eq!(back.sources(), tile.sources());
        back.check_consistency().unwrap();
        assert_eq!(back.n_thickness(), 0);
        for agg in back.cells().values() {
            assert_eq!(agg.t_n, 0);
            assert_eq!(agg.mean_thickness_m(), 0.0);
            assert_eq!(agg.ivw_mean_thickness_m(), 0.0);
            assert_eq!(agg.thickness_sigma_m(), 0.0);
            assert_eq!(agg.t_p95_m, 0.0);
        }
        // Re-encoding upgrades to v3 and round-trips bit-identically
        // thereafter.
        let v3_bytes = back.to_bytes();
        assert_eq!(&v3_bytes[4..6], &3u16.to_le_bytes());
        let again = Tile::from_bytes(&v3_bytes).unwrap();
        assert_eq!(again.to_bytes(), v3_bytes);
    }

    /// Thickness aggregates: canonical-order sums, IVW combination, and
    /// the nearest-rank p95 over bearing samples only.
    #[test]
    fn thickness_aggregates_cover_bearing_samples_only() {
        let mut tile = Tile::new(
            TileId::new(2, 1, 3).unwrap(),
            TimeKey::new(2019, 11).unwrap(),
        );
        let batch = vec![
            thick_sample(1, 2.0, 0.30, 5, 2.0, 0.5),
            thick_sample(1, 4.0, 0.35, 5, 3.0, 0.25),
            // Freeboard-only sample in the same cell: counted in n,
            // invisible to thickness stats.
            sample(1, 6.0, 0.10, SurfaceClass::ThinIce, 5),
        ];
        tile.merge(&batch);
        tile.check_consistency().unwrap();
        assert_eq!(tile.n_thickness(), 2);
        let c = tile.cells()[&5];
        assert_eq!(c.n, 3);
        assert_eq!(c.t_n, 2);
        assert!((c.mean_thickness_m() - 2.5).abs() < 1e-15);
        // IVW: weights 1/0.25 = 4 and 1/0.0625 = 16 → (8 + 48)/20 = 2.8.
        assert!((c.ivw_mean_thickness_m() - 2.8).abs() < 1e-12);
        assert!((c.thickness_sigma_m() - (1.0f64 / 20.0).sqrt()).abs() < 1e-12);
        // p95 of [2.0, 3.0] is the 2nd nearest-rank value.
        assert_eq!(c.t_p95_m, 3.0);

        // Ingest order does not change the bytes (thickness included).
        let mut rev = Tile::new(tile.id, tile.time);
        rev.merge(&[batch[2], batch[1]]);
        rev.merge(&[batch[0]]);
        assert_eq!(rev.samples(), tile.samples());
        assert_eq!(rev.cells(), tile.cells());

        // Freezing detail preserves the thickness aggregates and the
        // p95 survives as the frozen base's.
        let cells_before = tile.cells().clone();
        tile.freeze_detail();
        assert_eq!(tile.cells(), &cells_before);
        assert_eq!(tile.n_thickness(), 0, "bearing count covers live samples");
        let back = Tile::from_bytes(&tile.to_bytes()).unwrap();
        assert_eq!(back.cells(), &cells_before);
        back.check_consistency().unwrap();
    }

    #[test]
    fn layer_ledger_roundtrips_and_rejects_unsorted() {
        let ledger = LayerLedger {
            time: TimeKey::new(2019, 11).unwrap(),
            sources: vec![3, 17, 99],
        };
        let back = LayerLedger::from_bytes(&ledger.to_bytes()).unwrap();
        assert_eq!(back, ledger);
        let bad = LayerLedger {
            time: ledger.time,
            sources: vec![17, 3],
        };
        assert!(matches!(
            LayerLedger::from_bytes(&bad.to_bytes()),
            Err(ArtifactError::Invalid(_))
        ));
    }

    #[test]
    fn source_id_is_stable_and_spread() {
        let a = SampleRecord::source_id("20191104195311_05000210", 1);
        let b = SampleRecord::source_id("20191104195311_05000210", 1);
        let c = SampleRecord::source_id("20191104195311_05010210", 1);
        let d = SampleRecord::source_id("20191104195311_05000210", 3);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn peek_reads_header_without_samples() {
        let mut tile = Tile::new(
            TileId::new(3, 5, 1).unwrap(),
            TimeKey::new(2019, 10).unwrap(),
        );
        tile.merge(&batch_a());
        tile.merge(&batch_b());
        tile.merge(&[thick_sample(4, 20.0, 0.5, 7, 2.5, 0.3)]);
        let path = std::env::temp_dir().join(format!("seaice_tile_peek_{}", std::process::id()));
        tile.save(&path).unwrap();
        let header = Tile::peek(&path).unwrap();
        assert_eq!(header.id, tile.id);
        assert_eq!(header.time, tile.time);
        assert_eq!(header.version, 3);
        assert_eq!(header.n_samples, tile.samples().len() as u64);
        assert_eq!(header.n_thickness, 1);
        // A truncated header errors rather than panics.
        std::fs::write(&path, &tile.to_bytes()[..10]).unwrap();
        assert!(Tile::peek(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn manifest_roundtrip() {
        let m = CatalogManifest {
            grid: crate::grid::GridConfig::ross_sea(),
        };
        let back = CatalogManifest::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back, m);
    }
}
