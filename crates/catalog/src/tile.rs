//! Tile contents: segment-level samples plus per-cell aggregates.
//!
//! A tile is the unit of storage, caching, and atomic update. It carries
//! every ingested sample (segment-level detail for re-gridding and exact
//! bbox filtering) **canonically sorted**, and per-cell aggregates
//! derived from that order. Canonical order is what makes the catalog
//! ingest-order invariant: a tile's samples are a set, the sort gives the
//! set one byte-exact representation, and every floating-point reduction
//! (cell sums, query summaries) runs in that order — so two catalogs
//! built from the same granules in any order answer queries bit
//! identically.
//!
//! On disk a tile stores only its identity and samples (framed by
//! [`seaice::artifact`]'s tag+version conventions); cell aggregates are
//! derived data and are rebuilt on decode, which doubles as a
//! consistency check.

use std::collections::BTreeMap;

use icesat_scene::SurfaceClass;
use seaice::artifact::{Artifact, ArtifactError, Codec, Reader, Writer};

use crate::grid::{TileId, TimeKey};

/// One classified, freeboard-carrying 2 m segment inside a tile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleRecord {
    /// Stable hash of `(granule id, beam)` — the ingest source.
    pub source: u64,
    /// Along-track position within the source beam, metres.
    pub along_track_m: f64,
    /// Geodetic latitude, degrees.
    pub lat: f64,
    /// Longitude, degrees.
    pub lon: f64,
    /// EPSG-3976 easting, metres.
    pub x_m: f64,
    /// EPSG-3976 northing, metres.
    pub y_m: f64,
    /// Freeboard, metres.
    pub freeboard_m: f64,
    /// Classified surface type.
    pub class: SurfaceClass,
    /// Row-major aggregate-cell index within the owning tile.
    pub cell: u32,
}

impl SampleRecord {
    /// Stable source id for a `(granule, beam)` pair: FNV-1a over the
    /// granule id bytes and the beam index. Independent of ingest order
    /// (unlike an interning table), so sorted tiles are too.
    pub fn source_id(granule_id: &str, beam_index: usize) -> u64 {
        crate::fnv1a(granule_id.bytes().chain((beam_index as u64).to_le_bytes()))
    }

    /// The canonical total order tiles are sorted by. Every field
    /// participates, so ties are byte-identical records and any sort
    /// produces the same sequence.
    pub fn canonical_cmp(a: &SampleRecord, b: &SampleRecord) -> std::cmp::Ordering {
        a.source
            .cmp(&b.source)
            .then_with(|| a.along_track_m.total_cmp(&b.along_track_m))
            .then_with(|| a.freeboard_m.total_cmp(&b.freeboard_m))
            .then_with(|| a.class.index().cmp(&b.class.index()))
            .then_with(|| a.cell.cmp(&b.cell))
            .then_with(|| a.lat.total_cmp(&b.lat))
            .then_with(|| a.lon.total_cmp(&b.lon))
            .then_with(|| a.x_m.total_cmp(&b.x_m))
            .then_with(|| a.y_m.total_cmp(&b.y_m))
    }
}

impl Codec for SampleRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.source);
        w.put_f64(self.along_track_m);
        w.put_f64(self.lat);
        w.put_f64(self.lon);
        w.put_f64(self.x_m);
        w.put_f64(self.y_m);
        w.put_f64(self.freeboard_m);
        self.class.encode(w);
        w.put_u32(self.cell);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ArtifactError> {
        Ok(SampleRecord {
            source: r.take_u64()?,
            along_track_m: r.take_f64()?,
            lat: r.take_f64()?,
            lon: r.take_f64()?,
            x_m: r.take_f64()?,
            y_m: r.take_f64()?,
            freeboard_m: r.take_f64()?,
            class: SurfaceClass::decode(r)?,
            cell: r.take_u32()?,
        })
    }
}

/// Freeboard/ice-type aggregates of one grid cell, derived from the
/// owning tile's canonically sorted samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellAggregate {
    /// Samples in the cell.
    pub n: u64,
    /// Samples per surface class (thick, thin, open water).
    pub class_counts: [u64; 3],
    /// Ice samples (thick + thin).
    pub ice_n: u64,
    /// Sum of ice freeboard, metres (canonical-order reduction).
    pub ice_sum_m: f64,
    /// Minimum freeboard over all samples, metres.
    pub min_freeboard_m: f64,
    /// Maximum freeboard over all samples, metres.
    pub max_freeboard_m: f64,
}

impl CellAggregate {
    fn empty() -> CellAggregate {
        CellAggregate {
            n: 0,
            class_counts: [0; 3],
            ice_n: 0,
            ice_sum_m: 0.0,
            min_freeboard_m: f64::INFINITY,
            max_freeboard_m: f64::NEG_INFINITY,
        }
    }

    fn push(&mut self, s: &SampleRecord) {
        self.n += 1;
        self.class_counts[s.class.index()] += 1;
        if s.class != SurfaceClass::OpenWater {
            self.ice_n += 1;
            self.ice_sum_m += s.freeboard_m;
        }
        self.min_freeboard_m = self.min_freeboard_m.min(s.freeboard_m);
        self.max_freeboard_m = self.max_freeboard_m.max(s.freeboard_m);
    }

    /// Mean ice freeboard, metres (0 when the cell holds no ice).
    pub fn mean_ice_freeboard_m(&self) -> f64 {
        if self.ice_n == 0 {
            0.0
        } else {
            self.ice_sum_m / self.ice_n as f64
        }
    }

    /// The most populated class (ties break toward the lower index,
    /// matching `SurfaceClass::ALL` order).
    pub fn dominant_class(&self) -> SurfaceClass {
        let mut best = 0usize;
        for i in 1..3 {
            if self.class_counts[i] > self.class_counts[best] {
                best = i;
            }
        }
        SurfaceClass::from_index(best).expect("index in 0..3")
    }
}

/// One versioned tile of one temporal layer.
#[derive(Debug, Clone)]
pub struct Tile {
    /// Spatial address.
    pub id: TileId,
    /// Temporal layer.
    pub time: TimeKey,
    /// Merge counter: bumped on every ingest batch applied to the tile.
    /// Diagnostic only — deliberately excluded from query results, since
    /// it depends on how ingest batches were grouped.
    pub version: u64,
    /// Samples in canonical order (see [`SampleRecord::canonical_cmp`]).
    samples: Vec<SampleRecord>,
    /// Per-cell aggregates, keyed by row-major cell index. Derived from
    /// `samples`; rebuilt after every merge and on decode.
    cells: BTreeMap<u32, CellAggregate>,
}

impl Tile {
    /// An empty tile.
    pub fn new(id: TileId, time: TimeKey) -> Tile {
        Tile {
            id,
            time,
            version: 0,
            samples: Vec::new(),
            cells: BTreeMap::new(),
        }
    }

    /// The canonically sorted samples.
    pub fn samples(&self) -> &[SampleRecord] {
        &self.samples
    }

    /// The per-cell aggregates (ascending cell index).
    pub fn cells(&self) -> &BTreeMap<u32, CellAggregate> {
        &self.cells
    }

    /// Merges an ingest batch: sorts the incoming batch, merges the two
    /// canonically sorted runs in one linear pass (ties are
    /// byte-identical records, so run order cannot matter), and rebuilds
    /// every cell aggregate from the result (the full rebuild keeps the
    /// reduction order independent of merge history). O(N + m·log m)
    /// per batch instead of re-sorting all N accumulated samples.
    pub fn merge(&mut self, batch: &[SampleRecord]) {
        let mut incoming = batch.to_vec();
        incoming.sort_unstable_by(SampleRecord::canonical_cmp);
        let old = std::mem::take(&mut self.samples);
        self.samples = Vec::with_capacity(old.len() + incoming.len());
        let (mut a, mut b) = (old.into_iter().peekable(), incoming.into_iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if SampleRecord::canonical_cmp(x, y) != std::cmp::Ordering::Greater {
                        self.samples.push(a.next().expect("peeked"));
                    } else {
                        self.samples.push(b.next().expect("peeked"));
                    }
                }
                (Some(_), None) => self.samples.push(a.next().expect("peeked")),
                (None, Some(_)) => self.samples.push(b.next().expect("peeked")),
                (None, None) => break,
            }
        }
        self.rebuild_cells();
        self.version += 1;
    }

    fn rebuild_cells(&mut self) {
        self.cells.clear();
        for s in &self.samples {
            self.cells
                .entry(s.cell)
                .or_insert_with(CellAggregate::empty)
                .push(s);
        }
    }

    /// Checks the tile's internal invariants — what concurrent readers
    /// assert about every snapshot they observe: samples in canonical
    /// order, and cell aggregates exactly consistent with the samples.
    pub fn check_consistency(&self) -> Result<(), &'static str> {
        if !self
            .samples
            .windows(2)
            .all(|w| SampleRecord::canonical_cmp(&w[0], &w[1]) != std::cmp::Ordering::Greater)
        {
            return Err("samples out of canonical order");
        }
        let mut rebuilt: BTreeMap<u32, CellAggregate> = BTreeMap::new();
        for s in &self.samples {
            rebuilt
                .entry(s.cell)
                .or_insert_with(CellAggregate::empty)
                .push(s);
        }
        if rebuilt != self.cells {
            return Err("cell aggregates inconsistent with samples");
        }
        let total: u64 = self.cells.values().map(|c| c.n).sum();
        if total != self.samples.len() as u64 {
            return Err("cell counts do not cover samples");
        }
        Ok(())
    }
}

impl Codec for Tile {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        self.time.encode(w);
        w.put_u64(self.version);
        self.samples.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ArtifactError> {
        let id = TileId::decode(r)?;
        let time = TimeKey::decode(r)?;
        let version = r.take_u64()?;
        let samples: Vec<SampleRecord> = Vec::decode(r)?;
        if !samples
            .windows(2)
            .all(|w| SampleRecord::canonical_cmp(&w[0], &w[1]) != std::cmp::Ordering::Greater)
        {
            return Err(ArtifactError::Invalid("tile samples out of order"));
        }
        let mut tile = Tile {
            id,
            time,
            version,
            samples,
            cells: BTreeMap::new(),
        };
        tile.rebuild_cells();
        Ok(tile)
    }
}

impl Artifact for Tile {
    const TAG: [u8; 4] = *b"SIT1";
    const VERSION: u16 = 1;
}

/// Header of a persisted tile, readable without decoding samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileHeader {
    /// Spatial address.
    pub id: TileId,
    /// Temporal layer.
    pub time: TimeKey,
    /// Merge counter.
    pub version: u64,
    /// Stored sample count.
    pub n_samples: u64,
}

impl Tile {
    /// Reads only the framed header of a tile file. The catalog uses
    /// this to bootstrap its authoritative version/size index on open
    /// without decoding any sample payload.
    pub fn peek(path: &std::path::Path) -> Result<TileHeader, ArtifactError> {
        use std::io::Read;
        // tag(4) + format version(2) + id(9) + time(3) + merge
        // counter(8) + sample-vec length(8).
        let mut buf = [0u8; 34];
        std::fs::File::open(path)?.read_exact(&mut buf)?;
        let mut r = Reader::new(&buf);
        let tag = r.take_slice(4)?;
        if tag != Self::TAG {
            return Err(ArtifactError::BadMagic);
        }
        let format = r.take_u16()?;
        if format != Self::VERSION {
            return Err(ArtifactError::BadVersion(format));
        }
        Ok(TileHeader {
            id: TileId::decode(&mut r)?,
            time: TimeKey::decode(&mut r)?,
            version: r.take_u64()?,
            n_samples: r.take_u64()?,
        })
    }
}

/// The catalog manifest: pins the grid every tile was addressed with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogManifest {
    /// The catalog's tiling.
    pub grid: crate::grid::GridConfig,
}

impl Codec for CatalogManifest {
    fn encode(&self, w: &mut Writer) {
        self.grid.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ArtifactError> {
        Ok(CatalogManifest {
            grid: crate::grid::GridConfig::decode(r)?,
        })
    }
}

impl Artifact for CatalogManifest {
    const TAG: [u8; 4] = *b"SICM";
    const VERSION: u16 = 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(source: u64, along: f64, fb: f64, class: SurfaceClass, cell: u32) -> SampleRecord {
        SampleRecord {
            source,
            along_track_m: along,
            lat: -74.0,
            lon: -160.0,
            x_m: 1.0,
            y_m: 2.0,
            freeboard_m: fb,
            class,
            cell,
        }
    }

    fn batch_a() -> Vec<SampleRecord> {
        vec![
            sample(2, 10.0, 0.30, SurfaceClass::ThickIce, 5),
            sample(2, 12.0, 0.02, SurfaceClass::OpenWater, 5),
            sample(1, 4.0, 0.10, SurfaceClass::ThinIce, 9),
        ]
    }

    fn batch_b() -> Vec<SampleRecord> {
        vec![
            sample(1, 2.0, 0.40, SurfaceClass::ThickIce, 9),
            sample(3, 8.0, 0.25, SurfaceClass::ThickIce, 1),
        ]
    }

    #[test]
    fn merge_order_does_not_change_tile_bytes() {
        let id = TileId::new(2, 1, 3).unwrap();
        let t = TimeKey::new(2019, 11).unwrap();
        let mut ab = Tile::new(id, t);
        ab.merge(&batch_a());
        ab.merge(&batch_b());
        let mut ba = Tile::new(id, t);
        ba.merge(&batch_b());
        ba.merge(&batch_a());
        assert_eq!(ab.samples(), ba.samples());
        assert_eq!(ab.cells(), ba.cells());
        assert_eq!(ab.to_bytes(), ba.to_bytes());
        ab.check_consistency().unwrap();
    }

    #[test]
    fn cell_aggregates_match_samples() {
        let mut tile = Tile::new(
            TileId::new(1, 0, 0).unwrap(),
            TimeKey::new(2020, 3).unwrap(),
        );
        tile.merge(&batch_a());
        let c5 = tile.cells()[&5];
        assert_eq!(c5.n, 2);
        assert_eq!(c5.class_counts, [1, 0, 1]);
        assert_eq!(c5.ice_n, 1);
        assert!((c5.mean_ice_freeboard_m() - 0.30).abs() < 1e-15);
        assert_eq!(c5.min_freeboard_m, 0.02);
        assert_eq!(c5.max_freeboard_m, 0.30);
        assert_eq!(c5.dominant_class(), SurfaceClass::ThickIce);
        tile.check_consistency().unwrap();
    }

    #[test]
    fn tile_roundtrips_and_rejects_unsorted_buffers() {
        let mut tile = Tile::new(
            TileId::new(3, 7, 2).unwrap(),
            TimeKey::new(2019, 9).unwrap(),
        );
        tile.merge(&batch_a());
        tile.merge(&batch_b());
        let bytes = tile.to_bytes();
        let back = Tile::from_bytes(&bytes).unwrap();
        assert_eq!(back.samples(), tile.samples());
        assert_eq!(back.cells(), tile.cells());
        assert_eq!(back.version, tile.version);

        // Corrupt: swap two samples so the canonical order breaks. The
        // sample section starts after tag(4)+version(2)+id(9)+time(3)+
        // merge counter(8)+len(8); one record is 8+6*8+1+4 = 61 bytes.
        let mut corrupt = bytes.to_vec();
        let start = 4 + 2 + 9 + 3 + 8 + 8;
        let (a, b) = (start, start + 61);
        let tmp: Vec<u8> = corrupt[a..a + 61].to_vec();
        corrupt.copy_within(b..b + 61, a);
        corrupt[b..b + 61].copy_from_slice(&tmp);
        assert!(matches!(
            Tile::from_bytes(&corrupt),
            Err(ArtifactError::Invalid(_))
        ));
    }

    #[test]
    fn source_id_is_stable_and_spread() {
        let a = SampleRecord::source_id("20191104195311_05000210", 1);
        let b = SampleRecord::source_id("20191104195311_05000210", 1);
        let c = SampleRecord::source_id("20191104195311_05010210", 1);
        let d = SampleRecord::source_id("20191104195311_05000210", 3);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn peek_reads_header_without_samples() {
        let mut tile = Tile::new(
            TileId::new(3, 5, 1).unwrap(),
            TimeKey::new(2019, 10).unwrap(),
        );
        tile.merge(&batch_a());
        tile.merge(&batch_b());
        let path = std::env::temp_dir().join(format!("seaice_tile_peek_{}", std::process::id()));
        tile.save(&path).unwrap();
        let header = Tile::peek(&path).unwrap();
        assert_eq!(header.id, tile.id);
        assert_eq!(header.time, tile.time);
        assert_eq!(header.version, 2);
        assert_eq!(header.n_samples, tile.samples().len() as u64);
        // A truncated header errors rather than panics.
        std::fs::write(&path, &tile.to_bytes()[..10]).unwrap();
        assert!(Tile::peek(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn manifest_roundtrip() {
        let m = CatalogManifest {
            grid: crate::grid::GridConfig::ross_sea(),
        };
        let back = CatalogManifest::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back, m);
    }
}
