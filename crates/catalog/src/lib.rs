//! `seaice-catalog` — the serve path of the pipeline: an ingest-once,
//! query-many store for the paper's end products.
//!
//! The produce path ([`seaice::stages`] + [`seaice::fleet`]) turns raw
//! ATL03 granules into per-beam 2 m classifications and freeboards.
//! Downstream consumers — gridded thickness reconstruction, snow-depth
//! downscaling, any map-facing service — need those products queryable
//! by *where* and *when* without re-running the pipeline. This crate
//! provides that layer:
//!
//! - [`grid`] — quadtree tile addressing over a configurable-resolution
//!   EPSG-3976 grid ([`TileId`] quadkeys, [`GridConfig`]), plus monthly
//!   temporal layer keys ([`TimeKey`]) for the paper's Table II/V-style
//!   composites;
//! - [`tile`] — tile contents: canonically sorted segment-level samples
//!   and per-cell freeboard/ice-type aggregates, persisted with the same
//!   overflow-hardened tag+version binary conventions as
//!   [`seaice::artifact`];
//! - [`cache`] — the lock-striped LRU tile cache concurrent readers go
//!   through;
//! - [`store`] — [`Catalog`]: sharded rayon-parallel ingest, atomic tile
//!   replacement, and the query API (bbox, rect, point, time-range,
//!   gridded cells, summary stats), plus [`CatalogSink`] wiring
//!   [`seaice::FleetDriver`] straight into a catalog.
//!
//! The headline invariant: ingest order never changes what queries
//! return, bit for bit, and readers racing a live ingest always observe
//! internally consistent tile snapshots (see `tests/concurrent_stress.rs`).

pub mod cache;
pub mod grid;
pub mod store;
pub mod tile;

pub use cache::{CacheStats, TileCache, TileKey};
pub use grid::{GridConfig, MapRect, TileId, TimeKey, TimeRange};
pub use store::{
    Catalog, CatalogOptions, CatalogSink, CatalogStats, CellSummary, IngestReport, QuerySummary,
};
pub use tile::{CatalogManifest, CellAggregate, SampleRecord, Tile};

/// Errors from catalog operations.
#[derive(Debug)]
pub enum CatalogError {
    /// Underlying file I/O failure.
    Io(std::io::Error),
    /// A tile or manifest failed to encode/decode.
    Artifact(seaice::ArtifactError),
    /// A granule id did not carry a parseable `YYYYMM` prefix.
    BadGranuleId(String),
    /// A catalog directory was opened with a different grid than it was
    /// built with.
    GridMismatch,
    /// An internal invariant was violated (corrupt store or logic bug).
    Corrupt(&'static str),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::Io(e) => write!(f, "catalog io error: {e}"),
            CatalogError::Artifact(e) => write!(f, "catalog artifact error: {e}"),
            CatalogError::BadGranuleId(id) => {
                write!(f, "granule id '{id}' has no YYYYMM acquisition prefix")
            }
            CatalogError::GridMismatch => {
                write!(f, "catalog grid differs from the manifest's grid")
            }
            CatalogError::Corrupt(what) => write!(f, "catalog corrupt: {what}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<std::io::Error> for CatalogError {
    fn from(e: std::io::Error) -> Self {
        CatalogError::Io(e)
    }
}

impl From<seaice::ArtifactError> for CatalogError {
    fn from(e: seaice::ArtifactError) -> Self {
        CatalogError::Artifact(e)
    }
}

/// FNV-1a over a byte stream — the one stable hash used for sample
/// source ids and shard/stripe ownership (never the std hasher, whose
/// per-process randomisation would break cross-run reproducibility).
pub(crate) fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
