//! `seaice-catalog` — the serve path of the pipeline: an ingest-once,
//! query-many store for the paper's end products.
//!
//! The produce path ([`seaice::stages`] + [`seaice::fleet`]) turns raw
//! ATL03 granules into per-beam 2 m classifications and freeboards.
//! Downstream consumers — gridded thickness reconstruction, snow-depth
//! downscaling, any map-facing service — need those products queryable
//! by *where* and *when* without re-running the pipeline. This crate
//! provides that layer:
//!
//! - [`grid`] — quadtree tile addressing over a configurable-resolution
//!   EPSG-3976 grid ([`TileId`] quadkeys, [`GridConfig`]), plus monthly
//!   temporal layer keys ([`TimeKey`]) for the paper's Table II/V-style
//!   composites;
//! - [`tile`] — tile contents: canonically sorted segment-level samples
//!   and per-cell freeboard/ice-type aggregates, persisted with the same
//!   overflow-hardened tag+version binary conventions as
//!   [`seaice::artifact`];
//! - [`cache`] — the lock-striped LRU tile cache concurrent readers go
//!   through;
//! - [`store`] — [`Catalog`]: sharded rayon-parallel ingest, atomic tile
//!   replacement, and the query API (bbox, rect, point, time-range,
//!   gridded cells, summary stats), plus [`CatalogSink`] wiring
//!   [`seaice::FleetDriver`] straight into a catalog.
//!
//! - [`mod@compact`] — offline compaction: rewrite a catalog at a new grid
//!   (re-binning every sample), fold monthly layers into seasonal ones,
//!   and retire segment detail past a retention horizon while frozen
//!   per-cell aggregates keep answering composites;
//! - [`wire`] / [`server`] / [`client`] — the serve front-end: a framed
//!   TCP protocol over [`seaice::artifact`] conventions (spec in
//!   `docs/PROTOCOL.md`), a threaded [`server::CatalogServer`], a
//!   [`client::CatalogClient`] mirroring the query API, and a
//!   [`client::ShardRouter`] that fans queries out over quadkey-prefix
//!   shards and merges bit-identically;
//! - [`lease`] — the cross-process writer-lease protocol (owner id +
//!   heartbeat mtime + stale-lease takeover) behind
//!   [`Catalog::create_writer`] / [`Catalog::open_writer`];
//! - [`fault`] — deterministic fault injection (seeded per-site fault
//!   plans, crash hooks in the persist path, an in-process chaos TCP
//!   proxy) behind zero-cost no-op defaults, powering the chaos
//!   acceptance suite (`tests/chaos.rs`).
//!
//! The headline invariant: ingest order never changes what queries
//! return, bit for bit; re-ingesting a source is idempotent
//! ([`IngestMode::Skip`] is a byte-stable no-op, [`IngestMode::Replace`]
//! converges to the fresh-build state); readers racing a live ingest
//! always observe internally consistent tile snapshots (see
//! `tests/concurrent_stress.rs`); and a query answered over the network
//! — one server or a routed shard fleet — is bit-identical to the same
//! query in process (see `tests/served_equivalence.rs`).
//!
//! The failure-model counterpart (see `DESIGN.md` §"Failure model"):
//! under injected connection refusal, stalls, truncation, byte
//! corruption, latency, and mid-persist crashes, a served query either
//! completes bit-identically or fails with a typed
//! [`CatalogError::Timeout`] / [`CatalogError::RetriesExhausted`] /
//! [`CatalogError::Degraded`] — never a hang, a panic, or a silently
//! wrong answer (see `tests/chaos.rs`).

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod compact;
pub mod fault;
pub mod grid;
pub mod lease;
pub mod server;
pub mod store;
pub mod tile;
pub mod wire;

pub use cache::{CacheStats, TileCache, TileKey};
pub use client::{
    BreakerState, CatalogClient, ClientConfig, Pending, ReplicaSpec, RetryPolicy, Routed,
    RouterConfig, ShardRouter, ShardSpec,
};
pub use compact::{compact, CompactionConfig, CompactionReport, LayerMap};
pub use fault::{ChaosProxy, FaultAction, FaultPlan};
pub use grid::{GridConfig, MapRect, TileId, TileScope, TimeKey, TimeRange};
pub use lease::{LeaseOptions, LeaseRecord, WriterLease};
pub use server::{CatalogServer, ServerConfig, ServerStats};
pub use store::{
    Catalog, CatalogOptions, CatalogSink, CatalogStats, CellSummary, IngestMode, IngestReport,
    QuerySummary, TilePartial,
};
pub use tile::{CatalogManifest, CellAggregate, LayerLedger, SampleRecord, Tile};

/// The observability toolkit the catalog instruments itself with
/// (metric registry, histograms, tracing) — re-exported so servers and
/// clients can be scraped without naming `seaice-obs` directly.
pub use seaice_obs as obs;

/// Errors from catalog operations.
#[derive(Debug)]
pub enum CatalogError {
    /// Underlying file I/O failure.
    Io(std::io::Error),
    /// A tile or manifest failed to encode/decode.
    Artifact(seaice::ArtifactError),
    /// A granule id did not carry a parseable `YYYYMM` prefix.
    BadGranuleId(String),
    /// A catalog directory was opened with a different grid than it was
    /// built with.
    GridMismatch,
    /// An internal invariant was violated (corrupt store or logic bug).
    Corrupt(&'static str),
    /// Another writer holds a fresh lease on the directory (the typed
    /// loser error of the writer-lease protocol, [`lease`]).
    LeaseHeld {
        /// Owner id recorded in the current lease.
        owner: String,
        /// How long ago that lease last heartbeat.
        age: std::time::Duration,
    },
    /// This writer's lease has gone stale or been taken over; the
    /// instance self-fences and refuses further writes.
    LeaseLost,
    /// A `Replace` ingest met a source whose samples were retired into
    /// frozen base aggregates by a compaction retention horizon. The
    /// frozen contribution cannot be separated back out, so replacing
    /// the source would double-count it; the ingest is refused.
    ArchivedSource {
        /// Stable id of the archived source.
        source: u64,
    },
    /// A wire-protocol violation (malformed frame, unexpected response,
    /// misconfigured shard map) on the serve path.
    Protocol(String),
    /// A served request failed catalog-side; carries the remote error
    /// frame's code and rendered message.
    Remote {
        /// Protocol error code (see `docs/PROTOCOL.md` §3.8).
        code: u16,
        /// Human-readable remote error description.
        message: String,
    },
    /// Thickness enrichment rejected its inputs before ingest (see
    /// [`seaice_products::ProductError`]) — nothing was written.
    Product(seaice_products::ProductError),
    /// A served request exceeded its configured deadline
    /// ([`client::ClientConfig::request_deadline`]). The connection is
    /// torn down (the exchange may be mid-stream) and rebuilt on the
    /// next attempt.
    Timeout {
        /// The deadline that expired.
        after: std::time::Duration,
    },
    /// Every attempt allowed by the [`client::RetryPolicy`] failed with
    /// a transport-class error; carries the final attempt's error.
    RetriesExhausted {
        /// Attempts made (including the first).
        attempts: u32,
        /// The error the final attempt died with.
        last: Box<CatalogError>,
    },
    /// A routed query could not reach any replica for one or more
    /// scopes. Strict query methods return this typed error; the
    /// `*_routed` methods instead return a [`client::Routed`] value
    /// naming the same scopes so callers can use the partial answer.
    Degraded {
        /// The unreachable scopes, in shard-map order.
        missing: Vec<grid::TileScope>,
    },
    /// A scripted [`fault::FaultPlan`] crash fired at this site: the
    /// operation was abandoned mid-flight exactly as a process death
    /// there would leave it. Test-harness only; never produced without
    /// an injected plan.
    FaultInjected(&'static str),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::Io(e) => write!(f, "catalog io error: {e}"),
            CatalogError::Artifact(e) => write!(f, "catalog artifact error: {e}"),
            CatalogError::BadGranuleId(id) => {
                write!(f, "granule id '{id}' has no YYYYMM acquisition prefix")
            }
            CatalogError::GridMismatch => {
                write!(f, "catalog grid differs from the manifest's grid")
            }
            CatalogError::Corrupt(what) => write!(f, "catalog corrupt: {what}"),
            CatalogError::LeaseHeld { owner, age } => write!(
                f,
                "writer lease held by '{owner}' (heartbeat {:.1}s ago)",
                age.as_secs_f64()
            ),
            CatalogError::LeaseLost => {
                write!(f, "writer lease lost (stale or taken over); writes fenced")
            }
            CatalogError::ArchivedSource { source } => write!(
                f,
                "source {source:#018x} was retired into frozen aggregates by retention; \
                 replacing it would double-count its contribution"
            ),
            CatalogError::Protocol(what) => write!(f, "catalog protocol error: {what}"),
            CatalogError::Remote { code, message } => {
                write!(f, "catalog server error {code}: {message}")
            }
            CatalogError::Product(e) => write!(f, "catalog product error: {e}"),
            CatalogError::Timeout { after } => {
                write!(f, "request deadline exceeded ({:.3}s)", after.as_secs_f64())
            }
            CatalogError::RetriesExhausted { attempts, last } => {
                write!(f, "all {attempts} attempts failed; last error: {last}")
            }
            CatalogError::Degraded { missing } => {
                let scopes: Vec<String> = missing
                    .iter()
                    .map(|s| {
                        if s.is_all() {
                            "<all>".to_string()
                        } else {
                            s.prefixes().join("|")
                        }
                    })
                    .collect();
                write!(
                    f,
                    "degraded: no reachable replica for scope(s) [{}]",
                    scopes.join(", ")
                )
            }
            CatalogError::FaultInjected(site) => {
                write!(f, "injected fault: simulated crash at '{site}'")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<std::io::Error> for CatalogError {
    fn from(e: std::io::Error) -> Self {
        CatalogError::Io(e)
    }
}

impl From<seaice::ArtifactError> for CatalogError {
    fn from(e: seaice::ArtifactError) -> Self {
        CatalogError::Artifact(e)
    }
}

impl From<seaice_products::ProductError> for CatalogError {
    fn from(e: seaice_products::ProductError) -> Self {
        CatalogError::Product(e)
    }
}

/// FNV-1a over a byte stream — the one stable hash used for sample
/// source ids and shard/stripe ownership (never the std hasher, whose
/// per-process randomisation would break cross-run reproducibility).
pub(crate) fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
