//! Lock-striped LRU tile cache.
//!
//! Read traffic against a catalog is tile-addressed and heavily skewed
//! (hot regions, recent layers), so the store keeps decoded tiles behind
//! an in-memory cache. The cache is striped: a tile key hashes to one of
//! `n` independent stripes, each its own mutex + LRU map, so concurrent
//! readers touching different tiles never contend on a global lock.
//! Values are `Arc<Tile>` snapshots — eviction or replacement never
//! invalidates a tile a reader already holds.
//!
//! Replacement is version-guarded: a stale tile loaded from disk by a
//! racing reader can never overwrite a newer tile installed by the
//! writer that just persisted it (see `Catalog`'s ingest path).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::grid::{TileId, TimeKey};
use crate::tile::Tile;

/// Full address of a stored tile: temporal layer + quadtree id. Ordered
/// time-major so query iteration walks layers chronologically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TileKey {
    /// Temporal layer.
    pub time: TimeKey,
    /// Spatial address.
    pub tile: TileId,
}

impl TileKey {
    /// Stable stripe/shard hash (FNV-1a over the key fields; independent
    /// of the std hasher's per-process randomisation so shard ownership
    /// is reproducible across runs).
    pub fn stable_hash(&self) -> u64 {
        let fields = [
            self.time.year as u64,
            self.time.month as u64,
            self.tile.level as u64,
            self.tile.x as u64,
            self.tile.y as u64,
        ];
        crate::fnv1a(fields.into_iter().flat_map(u64::to_le_bytes))
    }
}

struct Entry {
    tile: Arc<Tile>,
    /// Last-use stamp from the stripe's logical clock.
    stamp: u64,
}

struct Stripe {
    map: HashMap<TileKey, Entry>,
    tick: u64,
}

/// Cache hit/miss counters (monotonic, catalog lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that went to disk.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (1 when the cache was never consulted).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The lock-striped LRU cache of decoded tiles.
pub struct TileCache {
    stripes: Vec<Mutex<Stripe>>,
    per_stripe_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl TileCache {
    /// A cache holding about `capacity` tiles across `stripes` stripes
    /// (each stripe gets `ceil(capacity / stripes)` slots; both are
    /// clamped to at least 1).
    pub fn new(capacity: usize, stripes: usize) -> TileCache {
        let stripes = stripes.max(1);
        let per_stripe_capacity = capacity.max(1).div_ceil(stripes);
        TileCache {
            stripes: (0..stripes)
                .map(|_| {
                    Mutex::new(Stripe {
                        map: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            per_stripe_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn stripe(&self, key: &TileKey) -> &Mutex<Stripe> {
        &self.stripes[(key.stable_hash() % self.stripes.len() as u64) as usize]
    }

    /// Looks a tile up, refreshing its recency on hit.
    pub fn get(&self, key: &TileKey) -> Option<Arc<Tile>> {
        let mut stripe = self.stripe(key).lock().unwrap_or_else(|e| e.into_inner());
        stripe.tick += 1;
        let tick = stripe.tick;
        match stripe.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.tile))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Installs a tile snapshot, evicting least-recently-used entries
    /// past the stripe capacity. A tile with an older version than the
    /// cached one is ignored — this closes the race where a reader loads
    /// a tile from disk while a writer persists and installs a newer
    /// merge of the same tile.
    pub fn insert(&self, key: TileKey, tile: Arc<Tile>) {
        let mut stripe = self.stripe(&key).lock().unwrap_or_else(|e| e.into_inner());
        stripe.tick += 1;
        let tick = stripe.tick;
        if let Some(existing) = stripe.map.get(&key) {
            if existing.tile.version >= tile.version {
                return;
            }
        }
        stripe.map.insert(key, Entry { tile, stamp: tick });
        while stripe.map.len() > self.per_stripe_capacity {
            let oldest = stripe
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
                .expect("non-empty stripe over capacity");
            stripe.map.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(x: u32, y: u32) -> TileKey {
        TileKey {
            time: TimeKey::new(2019, 11).unwrap(),
            tile: TileId::new(4, x, y).unwrap(),
        }
    }

    fn tile_arc(k: &TileKey, version: u64) -> Arc<Tile> {
        let mut t = Tile::new(k.tile, k.time);
        t.version = version;
        Arc::new(t)
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        // One stripe so recency is observable deterministically.
        let cache = TileCache::new(2, 1);
        let (a, b, c) = (key(0, 0), key(1, 0), key(2, 0));
        cache.insert(a, tile_arc(&a, 1));
        cache.insert(b, tile_arc(&b, 1));
        assert!(cache.get(&a).is_some()); // refresh a; b is now LRU
        cache.insert(c, tile_arc(&c, 1)); // evicts b
        assert!(cache.get(&b).is_none());
        assert!(cache.get(&a).is_some());
        assert!(cache.get(&c).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 3);
        assert!(stats.hit_rate() > 0.7);
    }

    #[test]
    fn stale_insert_cannot_replace_newer_version() {
        let cache = TileCache::new(8, 2);
        let k = key(3, 3);
        cache.insert(k, tile_arc(&k, 5));
        cache.insert(k, tile_arc(&k, 4)); // racing stale reader
        assert_eq!(cache.get(&k).unwrap().version, 5);
        cache.insert(k, tile_arc(&k, 6)); // writer's newer merge
        assert_eq!(cache.get(&k).unwrap().version, 6);
    }

    #[test]
    fn striped_access_is_thread_safe_and_exact() {
        let cache = TileCache::new(256, 8);
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..64u32 {
                        let k = key(t, i % 16);
                        cache.insert(k, tile_arc(&k, (i + 1) as u64));
                        assert!(cache.get(&k).is_some());
                    }
                });
            }
        });
        // Every key's final cached version is the max inserted for it.
        for t in 0..8u32 {
            for y in 0..16u32 {
                let k = key(t, y);
                assert_eq!(cache.get(&k).unwrap().version, 49 + y as u64);
            }
        }
    }
}
