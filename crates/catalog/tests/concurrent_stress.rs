//! Concurrent correctness of the catalog — the acceptance criteria of
//! the serve path:
//!
//! 1. **Readers racing ingest**: ≥4 reader threads issue bbox and
//!    time-range queries while writer threads ingest granules in
//!    parallel. Every summary a reader observes must be internally
//!    consistent, every tile snapshot must satisfy its invariants, and
//!    each reader's catalog-wide sample count must grow monotonically.
//! 2. **Ingest-order invariance**: catalogs built from the same granules
//!    in different orders (and through different batchings) answer
//!    queries **bit-identically**.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use icesat_geo::{GeoPoint, MapPoint, EPSG_3976};
use icesat_scene::SurfaceClass;
use seaice::freeboard::{FreeboardPoint, FreeboardProduct};
use seaice_catalog::{
    Catalog, CatalogOptions, GridConfig, MapRect, QuerySummary, TimeKey, TimeRange,
};

const CENTER: (f64, f64) = (-300_000.0, -1_300_000.0);

fn grid() -> GridConfig {
    GridConfig::new(MapPoint::new(CENTER.0, CENTER.1), 12_000.0, 3, 16).unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "seaice_catalog_stress_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic pseudo-random beam product: `n` samples scattered in
/// the grid domain (some pushed outside on purpose), lat/lon via inverse
/// projection so ingest recovers the intended map position.
fn synth_product(seed: u64, n: usize) -> FreeboardProduct {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let points = (0..n)
        .map(|i| {
            let fx = (next() % 10_000) as f64 / 10_000.0;
            let fy = (next() % 10_000) as f64 / 10_000.0;
            // ±13 km spread over a ±12 km domain: ~8% fall outside.
            let m = MapPoint::new(
                CENTER.0 + (fx - 0.5) * 26_000.0,
                CENTER.1 + (fy - 0.5) * 26_000.0,
            );
            let g = EPSG_3976.inverse(m);
            let class = SurfaceClass::ALL[(next() % 3) as usize];
            let freeboard_m = match class {
                SurfaceClass::OpenWater => ((next() % 100) as f64 - 50.0) * 1e-4,
                SurfaceClass::ThinIce => 0.05 + (next() % 100) as f64 * 1e-3,
                SurfaceClass::ThickIce => 0.25 + (next() % 300) as f64 * 1e-3,
            };
            FreeboardPoint {
                along_track_m: i as f64 * 2.0,
                lat: g.lat,
                lon: g.lon,
                freeboard_m,
                class,
            }
        })
        .collect();
    FreeboardProduct {
        name: format!("synth {seed}"),
        points,
    }
}

/// The granule fleet every stress scenario ingests: 12 beams across
/// three monthly layers.
fn fleet() -> Vec<(String, usize, FreeboardProduct)> {
    let months = ["20190915", "20191008", "20191104"];
    let mut out = Vec::new();
    for (gi, month) in months.iter().enumerate() {
        for beam in 0..4usize {
            let granule_id = format!("{month}101112_{:04}0510", 500 + gi);
            out.push((
                granule_id,
                beam,
                synth_product((gi * 4 + beam) as u64 + 1, 2_500),
            ));
        }
    }
    out
}

fn query_rects(g: &GridConfig) -> Vec<MapRect> {
    let d = g.domain();
    let mid = MapPoint::new(0.5 * (d.min.x + d.max.x), 0.5 * (d.min.y + d.max.y));
    vec![
        d,
        MapRect::new(d.min, mid),
        MapRect::new(mid, d.max),
        MapRect::new(
            MapPoint::new(d.min.x + 3_000.0, d.min.y + 5_000.0),
            MapPoint::new(d.max.x - 4_000.0, d.max.y - 2_000.0),
        ),
    ]
}

/// The full deterministic query battery one catalog answers; used to
/// compare catalogs bit for bit.
fn fingerprint(catalog: &Catalog) -> Vec<(usize, u64, u64, u64)> {
    let times = [
        TimeRange::all(),
        TimeRange::only(TimeKey::new(2019, 9).unwrap()),
        TimeRange {
            start: TimeKey::new(2019, 10).unwrap(),
            end: TimeKey::new(2019, 11).unwrap(),
        },
    ];
    let mut out = Vec::new();
    for rect in query_rects(catalog.grid()) {
        for t in times {
            let s = catalog.query_rect(&rect, t).unwrap();
            s.check_consistency().unwrap();
            out.push((
                s.n_samples,
                s.mean_ice_freeboard_m.to_bits(),
                s.min_freeboard_m.to_bits(),
                s.max_freeboard_m.to_bits(),
            ));
        }
    }
    // Gridded composite cells, exact per-cell float bits.
    for c in catalog
        .query_cells(&catalog.grid().domain(), TimeRange::all())
        .unwrap()
    {
        out.push((
            c.agg.n as usize,
            c.agg.mean_ice_freeboard_m().to_bits(),
            c.agg.min_freeboard_m.to_bits(),
            c.agg.max_freeboard_m.to_bits(),
        ));
    }
    // A point probe.
    let p = EPSG_3976.inverse(MapPoint::new(CENTER.0 + 1_000.0, CENTER.1 - 2_000.0));
    if let Some(cell) = catalog.query_point(p, TimeRange::all()).unwrap() {
        out.push((
            cell.agg.n as usize,
            cell.agg.ice_sum_m.to_bits(),
            cell.agg.min_freeboard_m.to_bits(),
            cell.agg.max_freeboard_m.to_bits(),
        ));
    }
    out
}

#[test]
fn ingest_order_and_batching_never_change_query_results() {
    let beams = fleet();

    // Reference: forward order, one ingest call per beam.
    let dir_a = temp_dir("order_a");
    let cat_a = Catalog::create(&dir_a, grid()).unwrap();
    for (id, beam, product) in &beams {
        cat_a.ingest_beam(id, *beam, product).unwrap();
    }

    // Reversed order, and a tiny cache to force disk reloads.
    let dir_b = temp_dir("order_b");
    let cat_b = Catalog::create_with(
        &dir_b,
        grid(),
        CatalogOptions {
            shards: 3,
            cache_capacity: 4,
            cache_stripes: 2,
            ..CatalogOptions::default()
        },
    )
    .unwrap();
    for (id, beam, product) in beams.iter().rev() {
        cat_b.ingest_beam(id, *beam, product).unwrap();
    }

    // Interleaved order from two concurrent writer threads.
    let dir_c = temp_dir("order_c");
    let cat_c = Catalog::create(&dir_c, grid()).unwrap();
    let work: Mutex<Vec<&(String, usize, FreeboardProduct)>> = Mutex::new(beams.iter().collect());
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| loop {
                let Some((id, beam, product)) = work.lock().unwrap().pop() else {
                    break;
                };
                cat_c.ingest_beam(id, *beam, product).unwrap();
            });
        }
    });

    let fp_a = fingerprint(&cat_a);
    assert!(!fp_a.is_empty());
    assert_eq!(fp_a, fingerprint(&cat_b), "reverse order diverged");
    assert_eq!(fp_a, fingerprint(&cat_c), "concurrent order diverged");

    // And a cold reopen answers identically too.
    drop(cat_a);
    let reopened = Catalog::open(&dir_a).unwrap();
    assert_eq!(fp_a, fingerprint(&reopened), "reopen diverged");
    reopened.validate().unwrap();

    for dir in [dir_a, dir_b, dir_c] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn readers_observe_consistent_snapshots_during_parallel_ingest() {
    let dir = temp_dir("race");
    // Small cache so readers constantly fault tiles in from disk while
    // the writers replace them.
    let catalog = Catalog::create_with(
        &dir,
        grid(),
        CatalogOptions {
            shards: 8,
            cache_capacity: 6,
            cache_stripes: 4,
            ..CatalogOptions::default()
        },
    )
    .unwrap();
    let beams = fleet();
    let expected_per_beam: Vec<usize> = beams
        .iter()
        .map(|(_, _, p)| {
            p.points
                .iter()
                .filter(|pt| {
                    grid()
                        .locate(EPSG_3976.forward(GeoPoint::new(pt.lat, pt.lon)))
                        .is_some()
                })
                .count()
        })
        .collect();
    let expected_total: usize = expected_per_beam.iter().sum();

    let work: Mutex<Vec<&(String, usize, FreeboardProduct)>> = Mutex::new(beams.iter().collect());
    let done = AtomicBool::new(false);
    let bbox = icesat_geo::BoundingBox::ROSS_SEA;

    std::thread::scope(|s| {
        // Two writers drain the shared granule queue.
        for _ in 0..2 {
            s.spawn(|| loop {
                let Some((id, beam, product)) = work.lock().unwrap().pop() else {
                    break;
                };
                catalog.ingest_beam(id, *beam, product).unwrap();
            });
        }
        // Four readers hammer queries until the writers finish.
        let mut readers = Vec::new();
        for r in 0..4 {
            let catalog = &catalog;
            let done = &done;
            let bbox = &bbox;
            readers.push(s.spawn(move || {
                let rects = query_rects(catalog.grid());
                let mut last_total = 0usize;
                let mut iterations = 0usize;
                while !done.load(Ordering::Acquire) || iterations == 0 {
                    iterations += 1;
                    // Spatial summaries: every snapshot internally
                    // consistent.
                    let rect = rects[(r + iterations) % rects.len()];
                    let s1 = catalog.query_rect(&rect, TimeRange::all()).unwrap();
                    s1.check_consistency().unwrap();
                    let s2 = catalog.query_bbox(bbox, TimeRange::all()).unwrap();
                    s2.check_consistency().unwrap();
                    // Time-range decomposition never exceeds the whole.
                    let per_layer: usize = catalog
                        .query_time_range(TimeRange::all())
                        .unwrap()
                        .iter()
                        .map(|(_, s)| {
                            s.check_consistency().unwrap();
                            s.n_samples
                        })
                        .sum();
                    // Catalog-wide totals only grow (tiles never shrink).
                    let stats = catalog.stats().unwrap();
                    assert!(
                        stats.n_samples >= last_total,
                        "sample count went backwards: {} -> {}",
                        last_total,
                        stats.n_samples
                    );
                    // Per-layer decomposition ran before this stats()
                    // snapshot; monotone tiles make the later total an
                    // upper bound on the earlier layer sum.
                    assert!(
                        per_layer <= stats.n_samples,
                        "layers sum {} exceeds later total {}",
                        per_layer,
                        stats.n_samples
                    );
                    last_total = stats.n_samples;
                }
                (iterations, last_total)
            }));
        }
        // A dedicated validator thread checks raw tile invariants.
        let validator = {
            let catalog = &catalog;
            let done = &done;
            s.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    catalog.validate().unwrap();
                }
            })
        };
        // Wait for writers by polling totals; scope join handles writers
        // implicitly, so just flag completion when the queue is empty
        // and totals stabilise. Deadline-bounded so a writer failure
        // surfaces as a diagnostic panic, not a CI-job timeout.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
        loop {
            let stored = catalog.stats().unwrap().n_samples;
            if work.lock().unwrap().is_empty() && stored == expected_total {
                done.store(true, Ordering::Release);
                break;
            }
            if std::time::Instant::now() > deadline {
                done.store(true, Ordering::Release);
                panic!(
                    "ingest never completed: {stored}/{expected_total} samples stored \
                     (a writer likely failed)"
                );
            }
            std::thread::yield_now();
        }
        for r in readers {
            let (iterations, _) = r.join().unwrap();
            assert!(iterations > 0);
        }
        validator.join().unwrap();
    });

    // Final state: exact totals, valid tiles, and bit-identical to a
    // serially built reference.
    let stats = catalog.stats().unwrap();
    assert_eq!(stats.n_samples, expected_total);
    assert_eq!(stats.n_layers, 3);
    assert!(stats.cache.misses > 0, "tiny cache must have faulted");
    catalog.validate().unwrap();

    let ref_dir = temp_dir("race_ref");
    let reference = Catalog::create(&ref_dir, grid()).unwrap();
    for (id, beam, product) in &beams {
        reference.ingest_beam(id, *beam, product).unwrap();
    }
    assert_eq!(fingerprint(&reference), fingerprint(&catalog));

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

#[test]
fn bbox_and_rect_agree_on_the_whole_domain() {
    let dir = temp_dir("agree");
    let catalog = Catalog::create(&dir, grid()).unwrap();
    for (id, beam, product) in fleet().iter().take(4) {
        catalog.ingest_beam(id, *beam, product).unwrap();
    }
    // The projected Ross-sea-wide bbox strictly contains the tiny test
    // domain, so both queries must match every stored sample.
    let bbox = icesat_geo::BoundingBox::ROSS_SEA;
    let via_bbox = catalog.query_bbox(&bbox, TimeRange::all()).unwrap();
    let via_rect = catalog
        .query_rect(&catalog.grid().domain(), TimeRange::all())
        .unwrap();
    assert_eq!(via_bbox, via_rect);
    assert_eq!(via_bbox.n_samples, catalog.stats().unwrap().n_samples);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Property: any subset rect's summary stays consistent and bounded by
/// the whole-domain summary. Driven with proptest's deterministic
/// entropy source directly (the shared catalog cannot be captured by
/// the `proptest!` macro's generated fns).
#[test]
fn random_rect_queries_are_bounded_by_domain() {
    let dir = temp_dir("prop");
    let catalog = Catalog::create(&dir, grid()).unwrap();
    for (id, beam, product) in fleet().iter().take(6) {
        catalog.ingest_beam(id, *beam, product).unwrap();
    }
    let whole: QuerySummary = catalog
        .query_rect(&catalog.grid().domain(), TimeRange::all())
        .unwrap();

    let mut rng = proptest::test_rng("random_rect_queries_are_bounded_by_domain");
    for _ in 0..64 {
        let d = catalog.grid().domain();
        let w = d.max.x - d.min.x;
        let h = d.max.y - d.min.y;
        let fx0 = (proptest::next_entropy(&mut rng) % 1000) as f64 / 1000.0;
        let fy0 = (proptest::next_entropy(&mut rng) % 1000) as f64 / 1000.0;
        let fx1 = (proptest::next_entropy(&mut rng) % 1000) as f64 / 1000.0;
        let fy1 = (proptest::next_entropy(&mut rng) % 1000) as f64 / 1000.0;
        let rect = MapRect::new(
            MapPoint::new(d.min.x + fx0 * w, d.min.y + fy0 * h),
            MapPoint::new(d.min.x + fx1 * w, d.min.y + fy1 * h),
        );
        let s = catalog.query_rect(&rect, TimeRange::all()).unwrap();
        s.check_consistency().unwrap();
        assert!(s.n_samples <= whole.n_samples);
        if s.n_samples > 0 {
            assert!(s.min_freeboard_m >= whole.min_freeboard_m);
            assert!(s.max_freeboard_m <= whole.max_freeboard_m);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
