//! Chaos acceptance: under any seeded fault plan — refused connections,
//! injected latency, mid-frame stalls, truncation, byte corruption —
//! a served query either completes **bit-identically** to the same
//! query on an in-process catalog, or fails with a typed
//! [`CatalogError::Timeout`] / [`CatalogError::RetriesExhausted`] /
//! [`CatalogError::Degraded`] (or a plain transport error) — never a
//! hang, never a panic, never a silently wrong answer.
//!
//! Scripted crash plans additionally pin the recovery story: a process
//! killed mid-tile-persist or mid-sidecar-write leaves a directory that
//! reopens cleanly and heals to a **byte-identical** store once the
//! interrupted ingest re-runs.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use seaice::artifact::Artifact as _;
use seaice_catalog::wire::{self, Request};

use icesat_geo::{MapPoint, EPSG_3976};
use icesat_scene::SurfaceClass;
use seaice::freeboard::{FreeboardPoint, FreeboardProduct};
use seaice_catalog::client::partition_product;
use seaice_catalog::{
    Catalog, CatalogClient, CatalogError, CatalogOptions, CatalogServer, ChaosProxy, ClientConfig,
    FaultAction, FaultPlan, GridConfig, QuerySummary, ReplicaSpec, RetryPolicy, RouterConfig,
    ServerConfig, ShardRouter, TileScope, TimeKey, TimeRange,
};

fn grid() -> GridConfig {
    // 4×4 tiles of 8×8 cells over a 20 km square domain.
    GridConfig::new(MapPoint::new(-300_000.0, -1_300_000.0), 10_000.0, 2, 8).unwrap()
}

/// Southern tiles (quadkey "0"/"1") and northern tiles ("2"/"3").
fn scopes() -> [TileScope; 2] {
    [
        TileScope::of(&["0", "1"]).unwrap(),
        TileScope::of(&["2", "3"]).unwrap(),
    ]
}

fn line_product(n: usize, x0: f64, y0: f64, dx: f64, dy: f64, fb0: f64) -> FreeboardProduct {
    let points = (0..n)
        .map(|i| {
            let m = MapPoint::new(x0 + i as f64 * dx, y0 + i as f64 * dy);
            let g = EPSG_3976.inverse(m);
            FreeboardPoint {
                along_track_m: i as f64 * 2.0,
                lat: g.lat,
                lon: g.lon,
                freeboard_m: fb0 + (i % 11) as f64 * 0.013,
                class: SurfaceClass::ALL[i % 3],
            }
        })
        .collect();
    FreeboardProduct {
        name: "chaos line".into(),
        points,
    }
}

/// Two monthly layers, two beams each, crossing both shard scopes.
fn workload() -> Vec<(String, usize, FreeboardProduct)> {
    let mut out = Vec::new();
    for (g, month) in ["201910", "201911"].iter().enumerate() {
        for beam in 0..2usize {
            let angle = (g * 2 + beam) as f64;
            let product = line_product(
                300,
                -309_000.0 + 1_500.0 * angle,
                -1_309_500.0,
                18.0 + 2.0 * angle,
                44.0 - 3.0 * angle,
                0.15 + 0.02 * angle,
            );
            out.push((format!("{month}04195311_0500021{g}"), beam, product));
        }
    }
    out
}

fn ingest(catalog: &Catalog, batch: &[(String, usize, FreeboardProduct)]) {
    for (granule, beam, product) in batch {
        if !product.points.is_empty() {
            catalog.ingest_beam(granule, *beam, product).unwrap();
        }
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seaice_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Bit-level equality of two summaries (`==` alone would pass distinct
/// NaN payloads or -0.0 vs 0.0).
fn assert_bits_equal(got: &QuerySummary, want: &QuerySummary, what: &str) {
    assert_eq!(got, want, "{what}: summaries differ");
    for (g, w, field) in [
        (got.mean_ice_freeboard_m, want.mean_ice_freeboard_m, "mean"),
        (got.min_freeboard_m, want.min_freeboard_m, "min"),
        (got.max_freeboard_m, want.max_freeboard_m, "max"),
        (got.mean_thickness_m, want.mean_thickness_m, "thickness"),
        (got.ivw_mean_thickness_m, want.ivw_mean_thickness_m, "ivw"),
        (got.thickness_sigma_m, want.thickness_sigma_m, "sigma"),
    ] {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: {field} not bit-identical"
        );
    }
}

/// The typed-outcome contract: every error a resilient client may
/// surface under socket faults. Anything else is a bug.
fn assert_typed_failure(err: &CatalogError, what: &str) {
    let inner = match err {
        CatalogError::RetriesExhausted { last, .. } => last.as_ref(),
        other => other,
    };
    match inner {
        CatalogError::Timeout { .. }
        | CatalogError::Io(_)
        | CatalogError::Protocol(_)
        | CatalogError::Degraded { .. } => {}
        other => panic!("{what}: untyped failure under fault injection: {other}"),
    }
}

/// The query battery one sweep iteration runs (rect + cells + layers),
/// checking every completed answer bit-for-bit against `local`.
/// Returns `(ok, failed)` counts.
fn battery(client: &mut CatalogClient, local: &Catalog, what: &str) -> (usize, usize) {
    let domain = local.grid().domain();
    let south = seaice_catalog::MapRect::new(domain.min, MapPoint::new(-300_000.0, -1_300_000.0));
    let times = [
        TimeRange::all(),
        TimeRange::only(TimeKey::new(2019, 11).unwrap()),
    ];
    let mut ok = 0;
    let mut failed = 0;
    for rect in [&domain, &south] {
        for &time in &times {
            match client.query_rect(rect, time) {
                Ok(got) => {
                    assert_bits_equal(&got, &local.query_rect(rect, time).unwrap(), what);
                    ok += 1;
                }
                Err(e) => {
                    assert_typed_failure(&e, what);
                    failed += 1;
                }
            }
        }
    }
    match client.query_cells(&domain, TimeRange::all()) {
        Ok(got) => {
            assert_eq!(
                got,
                local.query_cells(&domain, TimeRange::all()).unwrap(),
                "{what}: cells differ"
            );
            ok += 1;
        }
        Err(e) => {
            assert_typed_failure(&e, what);
            failed += 1;
        }
    }
    match client.query_time_range(TimeRange::all()) {
        Ok(got) => {
            assert_eq!(
                got,
                local.query_time_range(TimeRange::all()).unwrap(),
                "{what}: layers differ"
            );
            ok += 1;
        }
        Err(e) => {
            assert_typed_failure(&e, what);
            failed += 1;
        }
    }
    (ok, failed)
}

/// The headline sweep: ≥8 distinct seeded fault plans between a
/// resilient client and a healthy server. Every completed answer is
/// bit-identical to the in-process truth; every failure is typed; the
/// whole sweep finishes in bounded time because deadlines bound every
/// attempt.
#[test]
fn seeded_fault_sweep_never_yields_a_wrong_answer() {
    let dir = temp_dir("sweep");
    let local = Arc::new(Catalog::create(&dir, grid()).unwrap());
    ingest(&local, &workload());
    let server = CatalogServer::serve(Arc::clone(&local), "127.0.0.1:0").unwrap();
    let upstream = server.addr().to_string();

    let config = ClientConfig {
        connect_timeout: Some(Duration::from_millis(500)),
        request_deadline: Some(Duration::from_millis(700)),
        retry: RetryPolicy::attempts(4),
        ..ClientConfig::default()
    };

    let mut total_ok = 0usize;
    let mut total_failed = 0usize;
    let mut total_injected = 0u64;
    for seed in 1..=8u64 {
        let proxy = ChaosProxy::start(&upstream, Arc::new(FaultPlan::seeded(seed))).unwrap();
        let started = Instant::now();
        // Connecting itself may be refused past the retry budget: a
        // typed failure, counted like any other.
        match CatalogClient::connect_with(&proxy.addr().to_string(), config.clone()) {
            Ok(mut client) => {
                for round in 0..6 {
                    let what = format!("seed {seed} round {round}");
                    let (ok, failed) = battery(&mut client, &local, &what);
                    total_ok += ok;
                    total_failed += failed;
                }
            }
            Err(e) => {
                assert_typed_failure(&e, &format!("seed {seed} connect"));
                total_failed += 1;
            }
        }
        // Deadlines and bounded retries must bound the sweep: even the
        // nastiest plan cannot hold one seed's battery for minutes.
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "seed {seed} exceeded its wall-clock bound"
        );
        total_injected += proxy.plan().injected();
        proxy.shutdown();
    }
    assert!(total_injected > 0, "the sweep never injected a fault");
    assert!(
        total_ok > 0,
        "no query ever completed — retries are not recovering"
    );
    // With a healthy server behind the proxy and 4 attempts per
    // request, most queries should survive their faults.
    assert!(
        total_ok > total_failed,
        "failures ({total_failed}) outnumber successes ({total_ok})"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A scripted mid-frame stall longer than the deadline surfaces as the
/// typed [`CatalogError::Timeout`] (no retry policy, so unwrapped), and
/// a scripted byte corruption is caught by the frame checksum — typed,
/// never a wrong answer.
#[test]
fn stalls_time_out_and_corruption_is_detected() {
    let dir = temp_dir("typed");
    let local = Arc::new(Catalog::create(&dir, grid()).unwrap());
    ingest(&local, &workload());
    let server = CatalogServer::serve(Arc::clone(&local), "127.0.0.1:0").unwrap();
    let upstream = server.addr().to_string();
    let domain = grid().domain();
    let truth = local.query_rect(&domain, TimeRange::all()).unwrap();

    let no_retry = ClientConfig {
        connect_timeout: Some(Duration::from_millis(500)),
        request_deadline: Some(Duration::from_millis(200)),
        retry: RetryPolicy::none(),
        ..ClientConfig::default()
    };

    // Stall: hold the first server→client chunk for 2 s against a
    // 200 ms deadline.
    let plan =
        Arc::new(FaultPlan::scripted().with(FaultPlan::PROXY_S2C, 0, FaultAction::StallMs(2_000)));
    let proxy = ChaosProxy::start(&upstream, Arc::clone(&plan)).unwrap();
    // The connect handshake itself consumes the stalled chunk.
    let started = Instant::now();
    let err = CatalogClient::connect_with(&proxy.addr().to_string(), no_retry.clone())
        .err()
        .expect("a stalled handshake past the deadline must fail");
    assert!(
        matches!(err, CatalogError::Timeout { .. }),
        "stall surfaced as {err}, not a typed timeout"
    );
    // The deadline, not the stall, decides when the client gives up.
    assert!(started.elapsed() < Duration::from_millis(1_500));
    proxy.shutdown();

    // Corruption after the handshake: connect cleanly, then flip a bit
    // in the first response chunk of the next request.
    let plan = Arc::new(FaultPlan::scripted());
    let proxy = ChaosProxy::start(&upstream, Arc::clone(&plan)).unwrap();
    let mut client =
        CatalogClient::connect_with(&proxy.addr().to_string(), no_retry.clone()).unwrap();
    let next_hit = plan.hits(FaultPlan::PROXY_S2C);
    plan.script(FaultPlan::PROXY_S2C, next_hit, FaultAction::Corrupt(17));
    match client.query_rect(&domain, TimeRange::all()) {
        // A flipped bit can land in the length header and starve the
        // read into the deadline — still typed.
        Err(e) => assert_typed_failure(&e, "corrupted response"),
        // Only acceptable Ok: the bits are right anyway (the flip never
        // made it into a decoded frame).
        Ok(got) => assert_bits_equal(&got, &truth, "corrupted response"),
    }
    let _ = plan;
    proxy.shutdown();

    // With retries, the same post-handshake corruption heals: the
    // poisoned connection is rebuilt and the answer completes.
    let plan = Arc::new(FaultPlan::scripted());
    let proxy = ChaosProxy::start(&upstream, Arc::clone(&plan)).unwrap();
    let retrying = ClientConfig {
        retry: RetryPolicy::attempts(3),
        ..no_retry
    };
    let mut client = CatalogClient::connect_with(&proxy.addr().to_string(), retrying).unwrap();
    let next_hit = plan.hits(FaultPlan::PROXY_S2C);
    plan.script(FaultPlan::PROXY_S2C, next_hit, FaultAction::Corrupt(5));
    let got = client.query_rect(&domain, TimeRange::all()).unwrap();
    assert_bits_equal(&got, &truth, "retried past corruption");
    assert!(plan.injected() > 0, "the corruption never fired");
    proxy.shutdown();

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Replica failover: a two-replica scope keeps answering (bit-identical)
/// when one replica dies; when the whole scope dies the router degrades
/// *typed* — naming the scope — and the `*_routed` methods still serve
/// the surviving scope; when the replicas return, the breaker's
/// half-open probes bring the scope back without reconnecting by hand.
#[test]
fn shard_failover_degrades_typed_and_recovers() {
    let dirs = [temp_dir("fo_south"), temp_dir("fo_north")];
    let scopes = scopes();
    let batch = workload();

    // Truth: one local catalog over everything.
    let local_dir = temp_dir("fo_local");
    let local = Catalog::create(&local_dir, grid()).unwrap();
    ingest(&local, &batch);

    // Partition into the two shard stores.
    let shard_catalogs: Vec<Arc<Catalog>> = dirs
        .iter()
        .enumerate()
        .map(|(i, dir)| {
            let catalog = Arc::new(Catalog::create(dir, grid()).unwrap());
            for (granule, beam, product) in &batch {
                let part = &partition_product(&grid(), &scopes, product)[i];
                if !part.points.is_empty() {
                    catalog.ingest_beam(granule, *beam, part).unwrap();
                }
            }
            catalog
        })
        .collect();
    let servers: Vec<CatalogServer> = shard_catalogs
        .iter()
        .map(|c| CatalogServer::serve(Arc::clone(c), "127.0.0.1:0").unwrap())
        .collect();

    // South sits behind two proxies to the same server (two "replicas"
    // the router can fail over between — the kill switch takes one
    // down without rebinding ports); north behind one.
    let quiet = || Arc::new(FaultPlan::scripted());
    let south_a = ChaosProxy::start(&servers[0].addr().to_string(), quiet()).unwrap();
    let south_b = ChaosProxy::start(&servers[0].addr().to_string(), quiet()).unwrap();
    let north = ChaosProxy::start(&servers[1].addr().to_string(), quiet()).unwrap();

    let specs = [
        ReplicaSpec {
            addrs: vec![south_a.addr().to_string(), south_b.addr().to_string()],
            scope: scopes[0].clone(),
        },
        ReplicaSpec {
            addrs: vec![north.addr().to_string()],
            scope: scopes[1].clone(),
        },
    ];
    let config = RouterConfig {
        client: ClientConfig {
            connect_timeout: Some(Duration::from_millis(300)),
            request_deadline: Some(Duration::from_millis(500)),
            retry: RetryPolicy::attempts(2),
            ..ClientConfig::default()
        },
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(150),
        probe_interval: Some(Duration::from_millis(50)),
    };
    let mut router = ShardRouter::connect_replicated(&specs, config).unwrap();

    let domain = grid().domain();
    let truth = local.query_rect(&domain, TimeRange::all()).unwrap();

    // Healthy: complete and bit-identical.
    let got = router.query_rect(&domain, TimeRange::all()).unwrap();
    assert_bits_equal(&got, &truth, "healthy routed");

    // One south replica down: failover inside the group, still complete.
    south_a.set_refuse_all(true);
    for round in 0..4 {
        let got = router.query_rect(&domain, TimeRange::all()).unwrap();
        assert_bits_equal(&got, &truth, &format!("failover round {round}"));
    }

    // Whole scope down: strict queries degrade typed, naming the scope;
    // routed queries still answer for the north.
    south_b.set_refuse_all(true);
    let mut saw_degraded = false;
    for _ in 0..8 {
        match router.query_rect(&domain, TimeRange::all()) {
            Err(CatalogError::Degraded { missing }) => {
                assert_eq!(missing, vec![scopes[0].clone()], "wrong scope blamed");
                saw_degraded = true;
                break;
            }
            // Breakers may need a failure or two to trip first.
            Err(e) => assert_typed_failure(&e, "scope outage"),
            Ok(got) => assert_bits_equal(&got, &truth, "scope outage straggler"),
        }
    }
    assert!(saw_degraded, "a dead scope never surfaced as Degraded");
    let routed = router.query_rect_routed(&domain, TimeRange::all()).unwrap();
    assert!(!routed.is_complete());
    assert_eq!(routed.missing, vec![scopes[0].clone()]);
    let north_truth = shard_catalogs[1]
        .query_rect(&domain, TimeRange::all())
        .unwrap();
    assert_bits_equal(&routed.value, &north_truth, "degraded north-only");
    // Point probes into the dead scope are typed too.
    let south_probe = EPSG_3976.inverse(MapPoint::new(-303_000.0, -1_306_000.0));
    assert!(matches!(
        router.query_point(south_probe, TimeRange::all()),
        Err(CatalogError::Degraded { .. })
    ));

    // Replicas return: the background prober re-closes the breakers and
    // the next queries complete again — bounded wait, no manual
    // reconnect.
    south_a.set_refuse_all(false);
    south_b.set_refuse_all(false);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match router.query_rect(&domain, TimeRange::all()) {
            Ok(got) => {
                assert_bits_equal(&got, &truth, "recovered routed");
                break;
            }
            Err(e) => {
                assert_typed_failure(&e, "recovery window");
                assert!(
                    Instant::now() < deadline,
                    "router never recovered after replicas returned: {e}"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }

    south_a.shutdown();
    south_b.shutdown();
    north.shutdown();
    for server in servers {
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&local_dir);
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// Every `*.tile` / `*.ledger` file under `dir`, relative path → bytes.
fn store_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for sub in ["tiles", "ledgers"] {
        let sub_dir = dir.join(sub);
        if !sub_dir.is_dir() {
            continue;
        }
        for entry in std::fs::read_dir(&sub_dir).unwrap() {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().to_string();
            if name.ends_with(".tile") || name.ends_with(".ledger") {
                out.push((format!("{sub}/{name}"), std::fs::read(&path).unwrap()));
            }
        }
    }
    out.sort();
    out
}

/// Kill-mid-persist recovery: a scripted crash at each persist-path site
/// leaves a directory that reopens cleanly and, after the interrupted
/// ingest re-runs (the default idempotent `Skip` mode), holds exactly
/// the bytes of a never-crashed build.
#[test]
fn crash_mid_persist_reopens_and_heals_byte_identically() {
    let batch = workload();

    // The reference build: no faults, same ingest order.
    let clean_dir = temp_dir("crash_clean");
    let clean = Catalog::create(&clean_dir, grid()).unwrap();
    ingest(&clean, &batch);
    drop(clean);
    let want = store_bytes(&clean_dir);
    assert!(!want.is_empty());

    for (site, nth) in [
        (FaultPlan::TILE_BEFORE_RENAME, 2),
        (FaultPlan::TILE_AFTER_RENAME, 1),
        (FaultPlan::LEDGER_BEFORE_RENAME, 0),
        (FaultPlan::LEDGER_AFTER_RENAME, 1),
    ] {
        let dir = temp_dir(&format!("crash_{}", site.replace('.', "_")));
        let plan = Arc::new(FaultPlan::scripted().with(site, nth, FaultAction::Crash));
        let options = CatalogOptions {
            fault: Some(Arc::clone(&plan)),
            ..CatalogOptions::default()
        };
        let catalog = Catalog::create_with(&dir, grid(), options).unwrap();
        let mut crashed = false;
        for (granule, beam, product) in &batch {
            match catalog.ingest_beam(granule, *beam, product) {
                Ok(_) => {}
                Err(CatalogError::FaultInjected(at)) => {
                    assert_eq!(at, site);
                    crashed = true;
                    break;
                }
                Err(e) => panic!("unexpected ingest error at {site}: {e}"),
            }
        }
        assert!(crashed, "the scripted crash at {site} never fired");
        // The dead process: its in-memory index, cache, and sidecar
        // state are gone.
        drop(catalog);

        // Reopen (no plan) and replay the whole ingest — Skip mode makes
        // the completed part a byte-stable no-op and redoes the rest.
        let reopened = Catalog::open(&dir).unwrap();
        reopened.validate().unwrap();
        ingest(&reopened, &batch);
        reopened.validate().unwrap();
        drop(reopened);
        assert_eq!(
            store_bytes(&dir),
            want,
            "store did not heal byte-identically after a crash at {site}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&clean_dir);
}

/// Idle connections are reaped (and counted), and the Ping health probe
/// reports serving counters over the same connection a resilient client
/// transparently rebuilds.
#[test]
fn idle_timeout_reaps_connections_and_ping_reports_counters() {
    let dir = temp_dir("idle");
    let local = Arc::new(Catalog::create(&dir, grid()).unwrap());
    ingest(&local, &workload());
    let server = CatalogServer::serve_with(
        Arc::clone(&local),
        "127.0.0.1:0",
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(200)),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let config = ClientConfig {
        connect_timeout: Some(Duration::from_millis(500)),
        request_deadline: Some(Duration::from_secs(2)),
        retry: RetryPolicy::attempts(3),
        ..ClientConfig::default()
    };
    let mut client = CatalogClient::connect_with(&server.addr().to_string(), config).unwrap();
    let domain = grid().domain();
    let truth = local.query_rect(&domain, TimeRange::all()).unwrap();
    let stats = client.ping().unwrap();
    assert!(stats.connections >= 1 && stats.requests >= 1);

    // Outlast the idle timeout: the server reaps the connection...
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().idle_dropped == 0 {
        assert!(
            Instant::now() < deadline,
            "idle connection was never dropped"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    // ...and the resilient client heals over it without being told.
    let got = client.query_rect(&domain, TimeRange::all()).unwrap();
    assert_bits_equal(&got, &truth, "post-idle-drop query");
    let stats = client.ping().unwrap();
    assert!(stats.idle_dropped >= 1, "ping must expose the drop counter");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Slow-loris: a connection that sends a partial frame header and then
/// goes silent holds no worker, is reaped by the idle timer, and never
/// degrades service for healthy connections multiplexed alongside it.
#[test]
fn slow_loris_partial_frames_are_reaped_without_degrading_service() {
    let dir = temp_dir("loris");
    let local = Arc::new(Catalog::create(&dir, grid()).unwrap());
    ingest(&local, &workload());
    let server = CatalogServer::serve_with(
        Arc::clone(&local),
        "127.0.0.1:0",
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(150)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();
    let domain = grid().domain();
    let truth = local.query_rect(&domain, TimeRange::all()).unwrap();

    // Four attackers, each dribbling a prefix of a *valid* Ping frame —
    // half a header, a header plus two payload bytes — then stalling.
    let frame = wire::encode_frame(&Request::Ping.to_bytes(), 1, 0).unwrap();
    let mut attackers = Vec::new();
    for cut in [3usize, 9, 17, frame.len().min(30)] {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(&frame[..cut]).unwrap();
        attackers.push(s);
    }

    // A healthy client keeps getting bit-identical answers while the
    // stalled connections sit there.
    let mut client = CatalogClient::connect(&addr).unwrap();
    for _ in 0..5 {
        let got = client.query_rect(&domain, TimeRange::all()).unwrap();
        assert_bits_equal(&got, &truth, "query alongside slow-loris peers");
        std::thread::sleep(Duration::from_millis(40));
    }

    // The idle timer reaps every attacker (a stalled partial frame is
    // not "activity")...
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().idle_dropped < attackers.len() as u64 {
        assert!(
            Instant::now() < deadline,
            "slow-loris connections were never reaped (idle_dropped={})",
            server.stats().idle_dropped
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    // ...and each attacker observes a clean close, not a hang.
    for mut s in attackers {
        let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
        let mut buf = [0u8; 64];
        match s.read(&mut buf) {
            Ok(0) | Err(_) => {} // EOF or reset: reaped
            Ok(n) => panic!("reaped slow-loris socket received {n} unexpected bytes"),
        }
    }
    let got = client.query_rect(&domain, TimeRange::all()).unwrap();
    assert_bits_equal(&got, &truth, "query after slow-loris reaping");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Disconnects with requests in flight, both directions: clients that
/// vanish mid-pipeline never wedge the worker pool, and a client whose
/// server goes away mid-pipeline gets a typed error per in-flight id —
/// never a hang, never a panic.
#[test]
fn disconnect_with_requests_in_flight_is_typed_and_survivable() {
    let dir = temp_dir("midflight");
    let local = Arc::new(Catalog::create(&dir, grid()).unwrap());
    ingest(&local, &workload());
    let server = CatalogServer::serve(Arc::clone(&local), "127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();
    let domain = grid().domain();
    let truth = local.query_rect(&domain, TimeRange::all()).unwrap();

    // Client side vanishes: raw connections pipeline a burst of heavy
    // streamed queries and hang up without reading a byte. Workers
    // find the peer dead at delivery; the pool must shrug it off.
    let query = Request::QueryRect {
        rect: domain,
        time: TimeRange::all(),
        scope: TileScope::all(),
    };
    for round in 0..12u64 {
        let mut s = TcpStream::connect(&addr).unwrap();
        for id in 1..=4u64 {
            s.write_all(&wire::encode_frame(&query.to_bytes(), round * 8 + id, 0).unwrap())
                .unwrap();
        }
        drop(s); // in flight, never read
    }
    // The pool survives: a well-formed client still answers, exactly.
    let mut client = CatalogClient::connect(&addr).unwrap();
    let got = client.query_rect(&domain, TimeRange::all()).unwrap();
    assert_bits_equal(&got, &truth, "query after client-side mid-flight drops");

    // Server side vanishes: pipeline three requests, shut the server
    // down, then wait on every id. Each wait must resolve — either a
    // response that raced ahead of the shutdown (and then it must be
    // exact) or a typed failure; later waits on the poisoned
    // connection stay typed too.
    let p1 = client.submit_query_rect(&domain, TimeRange::all()).unwrap();
    let p2 = client.submit_query_time_range(TimeRange::all()).unwrap();
    let p3 = client.submit_ping().unwrap();
    assert_eq!(client.in_flight(), 3);
    server.shutdown();
    match client.wait(p1) {
        Ok(got) => assert_bits_equal(&got, &truth, "response racing shutdown"),
        Err(e) => assert_typed_failure(&e, "rect in flight across shutdown"),
    }
    if let Err(e) = client.wait(p2) {
        assert_typed_failure(&e, "time-range in flight across shutdown");
    }
    if let Err(e) = client.wait(p3) {
        assert_typed_failure(&e, "ping in flight across shutdown");
    }
    assert_eq!(client.in_flight(), 0, "waits must drain the pending table");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A served write that dies mid-persist (scripted crash in the tile
/// rename path) surfaces as a typed remote error, and a restarted
/// server healing by idempotent `Skip` re-ingest converges to the
/// byte-identical clean-build store — the crash-recovery contract of
/// `crash_mid_persist_reopens_and_heals_byte_identically`, now over
/// the wire.
#[test]
fn crash_mid_served_write_heals_byte_identically_via_skip_reingest() {
    let batch = workload();

    // Reference: a clean local build of the same ingest.
    let clean_dir = temp_dir("srv_crash_clean");
    let clean = Catalog::create(&clean_dir, grid()).unwrap();
    ingest(&clean, &batch);
    drop(clean);
    let want = store_bytes(&clean_dir);
    assert!(!want.is_empty());

    // The victim: a write-serving catalog scripted to crash on its 2nd
    // tile persist.
    let dir = temp_dir("srv_crash");
    let plan =
        Arc::new(FaultPlan::scripted().with(FaultPlan::TILE_BEFORE_RENAME, 1, FaultAction::Crash));
    let victim = Arc::new(
        Catalog::create_with(
            &dir,
            grid(),
            CatalogOptions {
                fault: Some(plan),
                ..CatalogOptions::default()
            },
        )
        .unwrap(),
    );
    let server = CatalogServer::serve_with(
        Arc::clone(&victim),
        "127.0.0.1:0",
        ServerConfig {
            allow_writes: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut producer = CatalogClient::connect(&server.addr().to_string()).unwrap();
    let mut crashed = false;
    for (granule, beam, product) in &batch {
        match producer.ingest_beam(granule, *beam, product) {
            Ok(_) => {}
            Err(CatalogError::Remote { code, message }) => {
                assert_eq!(code, wire::ERR_CATALOG, "crash must map to ERR_CATALOG");
                assert!(
                    message.contains("injected fault"),
                    "remote message must name the injected crash, got: {message}"
                );
                crashed = true;
                break;
            }
            Err(e) => panic!("unexpected served-ingest error: {e}"),
        }
    }
    assert!(crashed, "the scripted mid-served-write crash never fired");
    // The "process death": server down, in-memory state gone.
    server.shutdown();
    drop(producer);
    drop(victim);

    // Restart over the same directory (no plan) and replay the whole
    // feed over the wire — Skip mode makes the delivered part a no-op
    // and redoes the torn ingest.
    let healed = Arc::new(Catalog::open(&dir).unwrap());
    healed.validate().unwrap();
    let server = CatalogServer::serve_with(
        Arc::clone(&healed),
        "127.0.0.1:0",
        ServerConfig {
            allow_writes: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut producer = CatalogClient::connect(&server.addr().to_string()).unwrap();
    for (granule, beam, product) in &batch {
        producer.ingest_beam(granule, *beam, product).unwrap();
    }
    healed.validate().unwrap();
    server.shutdown();
    drop(producer);
    drop(healed);

    assert_eq!(
        store_bytes(&dir),
        want,
        "served re-ingest did not heal the crashed store byte-identically"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&clean_dir);
}
