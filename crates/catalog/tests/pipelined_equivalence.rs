//! Protocol-v2 acceptance: pipelined, multiplexed serving answers
//! **bit-identically** to an in-process `Catalog` — with many requests
//! in flight per connection, waits in an order different from
//! submission order, streamed batches of concurrent requests
//! interleaving on one socket, and served writes landing concurrently
//! with the reads.
//!
//! This is the serving twin of `tests/served_equivalence.rs`: that
//! suite pins the one-exchange-at-a-time facade, this one pins the
//! `submit_*`/`wait` pipelined path the facade is built on.

use std::path::PathBuf;
use std::sync::Arc;

use icesat_geo::{MapPoint, EPSG_3976};
use icesat_scene::SurfaceClass;
use seaice::freeboard::{FreeboardPoint, FreeboardProduct};
use seaice_catalog::wire::ERR_READ_ONLY;
use seaice_catalog::{
    Catalog, CatalogClient, CatalogError, CatalogServer, GridConfig, IngestMode, MapRect,
    QuerySummary, ServerConfig, TimeKey, TimeRange,
};

fn grid() -> GridConfig {
    // 4×4 tiles of 8×8 cells over a 20 km square domain.
    GridConfig::new(MapPoint::new(-300_000.0, -1_300_000.0), 10_000.0, 2, 8).unwrap()
}

/// A synthetic beam product along a map-space line (inverse-projected so
/// ingest recovers the intended map position).
fn line_product(n: usize, x0: f64, y0: f64, dx: f64, dy: f64, fb0: f64) -> FreeboardProduct {
    let points = (0..n)
        .map(|i| {
            let m = MapPoint::new(x0 + i as f64 * dx, y0 + i as f64 * dy);
            let g = EPSG_3976.inverse(m);
            FreeboardPoint {
                along_track_m: i as f64 * 2.0,
                lat: g.lat,
                lon: g.lon,
                freeboard_m: fb0 + (i % 11) as f64 * 0.013,
                class: SurfaceClass::ALL[i % 3],
            }
        })
        .collect();
    FreeboardProduct {
        name: "pipelined equivalence line".into(),
        points,
    }
}

/// The ingest workload: (granule id, beam, product) triples spanning
/// three monthly layers and the whole domain.
fn workload() -> Vec<(String, usize, FreeboardProduct)> {
    let mut out = Vec::new();
    let months = ["201909", "201910", "201911"];
    for (g, month) in months.iter().enumerate() {
        for beam in 0..2usize {
            let angle = (g * 2 + beam) as f64;
            let product = line_product(
                420,
                -309_000.0 + 1_500.0 * angle,
                -1_309_500.0,
                18.0 + 2.0 * angle,
                44.0 - 3.0 * angle,
                0.15 + 0.02 * angle,
            );
            out.push((format!("{month}04195311_0500021{g}"), beam, product));
        }
    }
    out
}

/// A second wave of granules, used as the concurrently-served writes.
fn write_wave() -> Vec<(String, usize, FreeboardProduct)> {
    (0..4)
        .map(|g| {
            (
                format!("20191204195311_0600021{g}"),
                g % 3,
                line_product(
                    380,
                    -308_000.0 + 900.0 * g as f64,
                    -1_308_000.0,
                    21.0,
                    47.0,
                    0.2 + 0.01 * g as f64,
                ),
            )
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seaice_pipelined_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn ingest(catalog: &Catalog, batch: &[(String, usize, FreeboardProduct)]) {
    for (granule, beam, product) in batch {
        catalog.ingest_beam(granule, *beam, product).unwrap();
    }
}

fn assert_bits(a: &QuerySummary, b: &QuerySummary, what: &str) {
    assert_eq!(a, b, "{what}: summaries differ");
    for (x, y, field) in [
        (a.mean_ice_freeboard_m, b.mean_ice_freeboard_m, "mean"),
        (a.min_freeboard_m, b.min_freeboard_m, "min"),
        (a.max_freeboard_m, b.max_freeboard_m, "max"),
        (a.mean_thickness_m, b.mean_thickness_m, "thickness"),
        (a.ivw_mean_thickness_m, b.ivw_mean_thickness_m, "ivw"),
        (a.thickness_sigma_m, b.thickness_sigma_m, "sigma"),
    ] {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: {field} not bit-identical"
        );
    }
}

/// The query battery used by every pipelined client: heavy full-domain
/// streams and light scalar probes, interleaved so the worker pool
/// finishes them out of submission order.
fn rects() -> Vec<MapRect> {
    let domain = grid().domain();
    vec![
        domain,
        MapRect::new(domain.min, MapPoint::new(-300_000.0, -1_300_000.0)),
        MapRect::new(
            MapPoint::new(-306_000.0, -1_307_000.0),
            MapPoint::new(-297_500.0, -1_295_000.0),
        ),
        MapRect::new(
            MapPoint::new(-302_000.0, -1_302_000.0),
            MapPoint::new(-301_000.0, -1_301_000.0),
        ),
    ]
}

/// N clients × M in-flight requests against a quiescent store: every
/// pipelined answer is bit-identical to the in-process answer, with
/// waits issued in reverse submission order (so completion order,
/// arrival order, and wait order all differ) and streamed batches of
/// concurrent full-domain queries interleaving on each connection.
#[test]
fn pipelined_queries_are_bit_identical_and_order_independent() {
    let dir = temp_dir("quiescent");
    let local = Arc::new(Catalog::create(&dir, grid()).unwrap());
    ingest(&local, &workload());
    let server = CatalogServer::serve(Arc::clone(&local), "127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();

    // In-process truth, computed once up front.
    let rect_truth: Vec<QuerySummary> = rects()
        .iter()
        .map(|r| local.query_rect(r, TimeRange::all()).unwrap())
        .collect();
    let layer_truth = local.query_time_range(TimeRange::all()).unwrap();
    let cells_truth = local
        .query_cells(&grid().domain(), TimeRange::all())
        .unwrap();
    let oct = TimeRange::only(TimeKey::new(2019, 10).unwrap());
    let oct_truth = local.query_rect(&grid().domain(), oct).unwrap();

    let n_clients = 4;
    let rounds = 3;
    let handles: Vec<_> = (0..n_clients)
        .map(|c| {
            let addr = addr.clone();
            let rect_truth = rect_truth.clone();
            let layer_truth = layer_truth.clone();
            let cells_truth = cells_truth.clone();
            std::thread::spawn(move || {
                let mut client = CatalogClient::connect(&addr).unwrap();
                for round in 0..rounds {
                    // Submit the whole battery without reading a byte.
                    let rect_pending: Vec<_> = rects()
                        .iter()
                        .map(|r| client.submit_query_rect(r, TimeRange::all()).unwrap())
                        .collect();
                    let layers = client.submit_query_time_range(TimeRange::all()).unwrap();
                    let cells = client
                        .submit_query_cells(&grid().domain(), TimeRange::all())
                        .unwrap();
                    let oct_pending = client.submit_query_rect(&grid().domain(), oct).unwrap();
                    let pinged = client.submit_ping().unwrap();
                    assert_eq!(client.in_flight(), rects().len() + 4);

                    // Redeem in an order unrelated to submission order.
                    let stats = client.wait(pinged).unwrap();
                    assert!(stats.requests > 0, "client {c} round {round}: no requests");
                    assert_bits(
                        &oct_truth,
                        &client.wait(oct_pending).unwrap(),
                        &format!("client {c} round {round} october"),
                    );
                    assert_eq!(cells_truth, client.wait(cells).unwrap());
                    assert_eq!(layer_truth, client.wait(layers).unwrap());
                    for (i, pending) in rect_pending.into_iter().enumerate().rev() {
                        assert_bits(
                            &rect_truth[i],
                            &client.wait(pending).unwrap(),
                            &format!("client {c} round {round} rect {i}"),
                        );
                    }
                    assert_eq!(client.in_flight(), 0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Multiplexing really happened: more requests than connections, and
    // nothing is left in flight server-side.
    let stats = server.stats();
    assert!(stats.connections as usize >= n_clients);
    assert!(stats.requests >= (n_clients * rounds * (rects().len() + 4)) as u64);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Served writes land through the wire while pipelined readers hammer
/// the same server: reader snapshots stay internally consistent and
/// monotone, and once the writer drains, the served store answers
/// bit-identically to a local store that ingested the same products
/// directly.
#[test]
fn pipelined_reads_stay_consistent_under_served_writes() {
    let served_dir = temp_dir("written");
    let truth_dir = temp_dir("truth");
    let served_store = Arc::new(Catalog::create(&served_dir, grid()).unwrap());
    ingest(&served_store, &workload());
    let truth = Catalog::create(&truth_dir, grid()).unwrap();
    ingest(&truth, &workload());

    let server = CatalogServer::serve_with(
        Arc::clone(&served_store),
        "127.0.0.1:0",
        ServerConfig {
            allow_writes: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();

    // The writer streams granules at the server over the wire,
    // pipelining several ingests; reports must account for every point.
    let writer_addr = addr.clone();
    let writer = std::thread::spawn(move || {
        let mut producer = CatalogClient::connect(&writer_addr).unwrap();
        let wave = write_wave();
        let pending: Vec<_> = wave
            .iter()
            .map(|(granule, beam, product)| {
                producer
                    .submit_ingest_beam(granule, *beam, product, IngestMode::Skip)
                    .unwrap()
            })
            .collect();
        for (pending, (_, _, product)) in pending.into_iter().zip(&wave) {
            let report = producer.wait(pending).unwrap();
            assert_eq!(
                report.n_samples + report.n_out_of_domain,
                product.points.len(),
                "served ingest dropped points"
            );
        }
    });

    // Readers pipeline against the same server while the writes land.
    let domain = grid().domain();
    let mut reader = CatalogClient::connect(&addr).unwrap();
    let mut last_seen = 0usize;
    loop {
        let finished = writer.is_finished();
        let a = reader.submit_query_rect(&domain, TimeRange::all()).unwrap();
        let b = reader
            .submit_query_cells(&domain, TimeRange::all())
            .unwrap();
        let summary = reader.wait(a).unwrap();
        summary.check_consistency().unwrap();
        let cells = reader.wait(b).unwrap();
        assert!(
            summary.n_samples >= last_seen,
            "served totals went backwards under served writes"
        );
        assert!(!cells.is_empty());
        last_seen = summary.n_samples;
        if finished {
            break;
        }
    }
    writer.join().unwrap();

    // Drain the same wave into the truth store directly, then compare.
    for (granule, beam, product) in &write_wave() {
        truth.ingest_beam(granule, *beam, product).unwrap();
    }
    for rect in rects() {
        let want = truth.query_rect(&rect, TimeRange::all()).unwrap();
        let got = reader.query_rect(&rect, TimeRange::all()).unwrap();
        assert_bits(&want, &got, "post-write equivalence");
    }
    assert_eq!(
        truth.query_cells(&domain, TimeRange::all()).unwrap(),
        reader.query_cells(&domain, TimeRange::all()).unwrap()
    );

    // Idempotent re-ingest over the wire: Skip counts duplicates
    // instead of double-applying them (what makes producer retries and
    // crash-recovery re-sends safe).
    let (granule, beam, product) = &write_wave()[0];
    let again = reader
        .ingest_beam_with(granule, *beam, product, IngestMode::Skip)
        .unwrap();
    assert_eq!(again.n_samples, 0, "duplicate granule re-applied");
    assert!(again.n_skipped > 0);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&served_dir);
    let _ = std::fs::remove_dir_all(&truth_dir);
}

/// Write RPCs against a default (read-only) server fail with the typed
/// [`ERR_READ_ONLY`] error frame, and the connection survives to
/// answer queries — including ones already in flight behind the
/// refused write.
#[test]
fn read_only_servers_refuse_writes_with_a_typed_error() {
    let dir = temp_dir("readonly");
    let local = Arc::new(Catalog::create(&dir, grid()).unwrap());
    ingest(&local, &workload());
    let server = CatalogServer::serve(Arc::clone(&local), "127.0.0.1:0").unwrap();
    let mut client = CatalogClient::connect(&server.addr().to_string()).unwrap();

    let domain = grid().domain();
    let before = client.submit_query_rect(&domain, TimeRange::all()).unwrap();
    let (granule, beam, product) = &write_wave()[0];
    let refused = client
        .submit_ingest_beam(granule, *beam, product, IngestMode::Skip)
        .unwrap();
    let after = client.submit_query_rect(&domain, TimeRange::all()).unwrap();

    match client.wait(refused) {
        Err(CatalogError::Remote { code, .. }) => assert_eq!(code, ERR_READ_ONLY),
        other => panic!("want ERR_READ_ONLY remote error, got {other:?}"),
    }
    let want = local.query_rect(&domain, TimeRange::all()).unwrap();
    assert_bits(&want, &client.wait(before).unwrap(), "query before refusal");
    assert_bits(&want, &client.wait(after).unwrap(), "query after refusal");
    assert_eq!(local.stats().unwrap().n_samples, want.n_samples);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
