//! Format-migration acceptance: a catalog written entirely in the v2
//! (pre-thickness) tile format opens under the v3 build, answers every
//! query with thickness zeroed, upgrades tiles to v3 in place as they
//! are next persisted, and v3 files round-trip bit-identically.
//!
//! This is the contract that lets a fleet upgrade its serving binaries
//! without a stop-the-world store rewrite: v2 tiles keep answering, and
//! the store converges to v3 one persisted tile at a time.

use std::path::PathBuf;

use icesat_geo::{MapPoint, EPSG_3976};
use icesat_scene::SurfaceClass;
use seaice::artifact::{Artifact, Codec, Writer};
use seaice::freeboard::{FreeboardPoint, FreeboardProduct};
use seaice_catalog::{Catalog, GridConfig, IngestMode, SampleRecord, Tile, TimeRange};

fn grid() -> GridConfig {
    GridConfig::new(MapPoint::new(-300_000.0, -1_300_000.0), 10_000.0, 2, 8).unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seaice_migrate_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn line_product(n: usize, x0: f64, y0: f64, dx: f64, dy: f64, fb0: f64) -> FreeboardProduct {
    let points = (0..n)
        .map(|i| {
            let m = MapPoint::new(x0 + i as f64 * dx, y0 + i as f64 * dy);
            let g = EPSG_3976.inverse(m);
            FreeboardPoint {
                along_track_m: i as f64 * 2.0,
                lat: g.lat,
                lon: g.lon,
                freeboard_m: fb0 + (i % 7) as f64 * 0.01,
                class: SurfaceClass::ALL[i % 3],
            }
        })
        .collect();
    FreeboardProduct {
        name: "migration line".into(),
        points,
    }
}

/// One sample in the 61-byte pre-thickness record layout.
fn encode_v2_record(w: &mut Writer, s: &SampleRecord) {
    w.put_u64(s.source);
    w.put_f64(s.along_track_m);
    w.put_f64(s.lat);
    w.put_f64(s.lon);
    w.put_f64(s.x_m);
    w.put_f64(s.y_m);
    w.put_f64(s.freeboard_m);
    s.class.encode(w);
    w.put_u32(s.cell);
}

/// One cell aggregate in the pre-thickness layout (tile formats ≤ 2).
fn encode_v2_aggregate(w: &mut Writer, a: &seaice_catalog::CellAggregate) {
    w.put_u64(a.n);
    a.class_counts.encode(w);
    w.put_u64(a.ice_n);
    w.put_f64(a.ice_sum_m);
    w.put_f64(a.min_freeboard_m);
    w.put_f64(a.max_freeboard_m);
}

/// The format version stamped in a tile file's frame header.
fn file_format(path: &std::path::Path) -> u16 {
    let bytes = std::fs::read(path).unwrap();
    assert_eq!(&bytes[..4], b"SIT1");
    u16::from_le_bytes([bytes[4], bytes[5]])
}

#[test]
fn v2_store_opens_serves_zeroed_thickness_and_upgrades_to_v3() {
    let dir = temp_dir("v2_store");

    // Build a modern store, then rewrite every artifact in v2 framing —
    // exactly what a pre-thickness build would have left on disk.
    let catalog = Catalog::create(&dir, grid()).unwrap();
    for (granule, beam, x0, dy) in [
        ("20190915010203_05000210", 0usize, -304_000.0, 10.0),
        ("20191104195311_05010210", 1, -302_000.0, 18.0),
    ] {
        let product = line_product(400, x0, -1_304_000.0, 19.0, dy, 0.2);
        catalog.ingest_beam(granule, beam, &product).unwrap();
    }
    let stats_before = catalog.stats().unwrap();
    let whole_before = catalog
        .query_rect(&catalog.grid().domain(), TimeRange::all())
        .unwrap();
    let cells_before = catalog
        .query_cells(&catalog.grid().domain(), TimeRange::all())
        .unwrap();
    drop(catalog);

    // Manifest → v2 bytes (same body, version 2).
    let mut w = Writer::new();
    w.put_slice(b"SICM");
    w.put_u16(2);
    grid().encode(&mut w);
    std::fs::write(dir.join("catalog.manifest"), w.finish()).unwrap();

    // Tiles → v2 bytes: 61-byte samples, ledger, pre-thickness base
    // aggregates (empty here — no compaction ran), no thickness header.
    for entry in std::fs::read_dir(dir.join("tiles")).unwrap() {
        let path = entry.unwrap().path();
        let tile = Tile::load(&path).unwrap();
        let mut w = Writer::new();
        w.put_slice(b"SIT1");
        w.put_u16(2);
        tile.id.encode(&mut w);
        tile.time.encode(&mut w);
        w.put_u64(tile.version);
        w.put_u64(tile.samples().len() as u64);
        for s in tile.samples() {
            encode_v2_record(&mut w, s);
        }
        tile.sources().to_vec().encode(&mut w);
        w.put_u64(tile.base().len() as u64);
        for (cell, agg) in tile.base() {
            w.put_u32(*cell);
            encode_v2_aggregate(&mut w, agg);
        }
        std::fs::write(&path, w.finish()).unwrap();
        assert_eq!(file_format(&path), 2);
    }

    // The v2 store opens and answers everything it used to, with every
    // thickness field zeroed.
    let v2 = Catalog::open(&dir).unwrap();
    v2.validate().unwrap();
    let stats = v2.stats().unwrap();
    assert_eq!(stats.n_samples, stats_before.n_samples);
    assert_eq!(stats.n_thickness, 0, "v2 tiles bear no thickness");
    let whole = v2
        .query_rect(&v2.grid().domain(), TimeRange::all())
        .unwrap();
    whole.check_consistency().unwrap();
    assert_eq!(whole, whole_before);
    assert_eq!(whole.n_thickness, 0);
    assert_eq!(whole.mean_thickness_m, 0.0);
    assert_eq!(whole.ivw_mean_thickness_m, 0.0);
    assert_eq!(whole.thickness_sigma_m, 0.0);
    let cells = v2
        .query_cells(&v2.grid().domain(), TimeRange::all())
        .unwrap();
    assert_eq!(cells, cells_before);
    for c in &cells {
        assert_eq!(c.agg.t_n, 0);
        assert_eq!(c.agg.t_p95_m, 0.0);
    }

    // Replace-ingesting one existing source rewrites exactly its tiles;
    // those files come back stamped v3 while untouched tiles stay v2.
    let replacement = line_product(400, -304_000.0, -1_304_000.0, 19.0, 10.0, 0.21);
    v2.ingest_beam_with(
        "20190915010203_05000210",
        0,
        &replacement,
        IngestMode::Replace,
    )
    .unwrap();
    let mut formats: Vec<u16> = Vec::new();
    for entry in std::fs::read_dir(dir.join("tiles")).unwrap() {
        formats.push(file_format(&entry.unwrap().path()));
    }
    assert!(
        formats.contains(&3),
        "rewritten tiles upgraded to format v3"
    );
    assert!(
        formats.contains(&2),
        "tiles the persist never touched stay v2"
    );
    v2.validate().unwrap();
    drop(v2);

    // Every v3 file round-trips bit-identically; v2 files re-encode to
    // v3 stably (decode → encode → decode is a fixed point).
    for entry in std::fs::read_dir(dir.join("tiles")).unwrap() {
        let path = entry.unwrap().path();
        let bytes = std::fs::read(&path).unwrap();
        let tile = Tile::from_bytes(&bytes).unwrap();
        let reencoded = tile.to_bytes().to_vec();
        if file_format(&path) == 3 {
            assert_eq!(reencoded, bytes, "v3 file not a bit-identical round-trip");
        }
        let again = Tile::from_bytes(&reencoded).unwrap();
        assert_eq!(
            again.to_bytes().to_vec(),
            reencoded,
            "re-encode is not stable"
        );
    }

    // A reopened store (mixed v2/v3 on disk) serves the same battery,
    // and landing a thickness product in it just works.
    let mixed = Catalog::open(&dir).unwrap();
    assert_eq!(
        mixed
            .query_cells(&mixed.grid().domain(), TimeRange::all())
            .unwrap()
            .iter()
            .map(|c| c.agg.n)
            .sum::<u64>(),
        stats_before.n_samples as u64
    );
    let thick_points: Vec<seaice_products::ProductPoint> = (0..200)
        .map(|i| {
            let m = MapPoint::new(-303_000.0 + i as f64 * 21.0, -1_303_500.0 + i as f64 * 13.0);
            let g = EPSG_3976.inverse(m);
            seaice_products::ProductPoint {
                along_track_m: i as f64 * 2.0,
                lat: g.lat,
                lon: g.lon,
                freeboard_m: 0.22,
                class: SurfaceClass::ThickIce,
                snow_depth_m: 0.06,
                snow_sigma_m: 0.02,
                thickness_m: 1.7,
                thickness_sigma_m: 0.3,
            }
        })
        .collect();
    let beam = seaice_products::BeamThickness {
        granule_id: "20191104195311_07000210".into(),
        beam: icesat_atl03::Beam::Gt3l,
        snow_model: "climatology".into(),
        points: thick_points,
    };
    let report = mixed.ingest_thickness_beam(&beam).unwrap();
    assert!(report.n_samples > 0);
    assert!(mixed.stats().unwrap().n_thickness > 0);
    let whole = mixed
        .query_rect(&mixed.grid().domain(), TimeRange::all())
        .unwrap();
    whole.check_consistency().unwrap();
    assert!(whole.n_thickness > 0 && whole.ivw_mean_thickness_m > 0.0);
    mixed.validate().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
