//! Serving-path acceptance: a query answered through the TCP front-end
//! — single server or a client-routed shard fleet — is **bit-identical**
//! to the same query on one in-process `Catalog` holding all the data,
//! including while ingest runs concurrently.
//!
//! Three deployments answer the same battery:
//!
//! - *local*: one `Catalog`, every product ingested directly;
//! - *served*: the same store behind one `CatalogServer`, queried
//!   through `CatalogClient`;
//! - *sharded*: the products partitioned by quadkey prefix into two
//!   stores behind two servers, queried through `ShardRouter`.

use std::path::PathBuf;
use std::sync::Arc;

use icesat_geo::{BoundingBox, GeoPoint, MapPoint, EPSG_3976};
use icesat_scene::SurfaceClass;
use seaice::freeboard::{FreeboardPoint, FreeboardProduct};
use seaice_catalog::client::{partition_product, partition_thickness};
use seaice_catalog::{
    Catalog, CatalogClient, CatalogServer, GridConfig, MapRect, QuerySummary, ShardRouter,
    ShardSpec, TileScope, TimeKey, TimeRange,
};

fn grid() -> GridConfig {
    // 4×4 tiles of 8×8 cells over a 20 km square domain.
    GridConfig::new(MapPoint::new(-300_000.0, -1_300_000.0), 10_000.0, 2, 8).unwrap()
}

/// Southern tiles (quadkey "0"/"1") and northern tiles ("2"/"3").
fn scopes() -> [TileScope; 2] {
    [
        TileScope::of(&["0", "1"]).unwrap(),
        TileScope::of(&["2", "3"]).unwrap(),
    ]
}

/// A synthetic beam product along a map-space line (inverse-projected so
/// ingest recovers the intended map position).
fn line_product(n: usize, x0: f64, y0: f64, dx: f64, dy: f64, fb0: f64) -> FreeboardProduct {
    let points = (0..n)
        .map(|i| {
            let m = MapPoint::new(x0 + i as f64 * dx, y0 + i as f64 * dy);
            let g = EPSG_3976.inverse(m);
            FreeboardPoint {
                along_track_m: i as f64 * 2.0,
                lat: g.lat,
                lon: g.lon,
                freeboard_m: fb0 + (i % 11) as f64 * 0.013,
                class: SurfaceClass::ALL[i % 3],
            }
        })
        .collect();
    FreeboardProduct {
        name: "served equivalence line".into(),
        points,
    }
}

/// The ingest workload: (granule id, beam, product) triples spanning
/// three monthly layers and crossing both shard scopes.
fn workload() -> Vec<(String, usize, FreeboardProduct)> {
    let mut out = Vec::new();
    let months = ["201909", "201910", "201911"];
    for (g, month) in months.iter().enumerate() {
        for beam in 0..2usize {
            let angle = (g * 2 + beam) as f64;
            let product = line_product(
                420,
                -309_000.0 + 1_500.0 * angle,
                -1_309_500.0,
                18.0 + 2.0 * angle,
                44.0 - 3.0 * angle, // south → north, crossing both scopes
                0.15 + 0.02 * angle,
            );
            out.push((format!("{month}04195311_0500021{g}"), beam, product));
        }
    }
    out
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seaice_served_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A thickness-enriched beam crossing both shard scopes (south → north),
/// shaped like [`seaice_products::enrich_fleet`] output: ice samples
/// bear `(thickness, sigma > 0)`, open water carries zeros.
fn thickness_workload() -> Vec<seaice_products::BeamThickness> {
    (0..2u32)
        .map(|b| {
            let points = (0..360)
                .map(|i| {
                    let m = MapPoint::new(
                        -308_500.0 + 1_200.0 * b as f64 + i as f64 * 19.0,
                        -1_309_000.0 + i as f64 * 46.0,
                    );
                    let g = EPSG_3976.inverse(m);
                    let class = SurfaceClass::ALL[i % 3];
                    let water = class == SurfaceClass::OpenWater;
                    seaice_products::ProductPoint {
                        along_track_m: i as f64 * 2.0,
                        lat: g.lat,
                        lon: g.lon,
                        freeboard_m: 0.18 + (i % 9) as f64 * 0.011,
                        class,
                        snow_depth_m: if water { 0.0 } else { 0.07 },
                        snow_sigma_m: if water { 0.0 } else { 0.025 },
                        thickness_m: if water {
                            0.0
                        } else {
                            1.3 + (i % 6) as f64 * 0.12
                        },
                        thickness_sigma_m: if water {
                            0.0
                        } else {
                            0.2 + (i % 5) as f64 * 0.04
                        },
                    }
                })
                .collect();
            seaice_products::BeamThickness {
                granule_id: format!("20191104195311_0700021{b}"),
                beam: icesat_atl03::Beam::ALL[b as usize],
                snow_model: "climatology".into(),
                points,
            }
        })
        .collect()
}

fn ingest(catalog: &Catalog, batch: &[(String, usize, FreeboardProduct)]) {
    for (granule, beam, product) in batch {
        if !product.points.is_empty() {
            catalog.ingest_beam(granule, *beam, product).unwrap();
        }
    }
}

/// Partitions a workload by shard scope.
fn partition(
    batch: &[(String, usize, FreeboardProduct)],
) -> [Vec<(String, usize, FreeboardProduct)>; 2] {
    let scopes = scopes();
    let mut out: [Vec<(String, usize, FreeboardProduct)>; 2] = [Vec::new(), Vec::new()];
    for (granule, beam, product) in batch {
        let split = partition_product(&grid(), &scopes, product);
        for (j, part) in split.into_iter().enumerate() {
            if !part.points.is_empty() {
                out[j].push((granule.clone(), *beam, part));
            }
        }
    }
    out
}

/// The query battery, asserting all three deployments agree bit for bit.
fn assert_equivalent(local: &Catalog, served: &mut CatalogClient, router: &mut ShardRouter) {
    let domain = local.grid().domain();
    let rects = [
        domain,
        MapRect::new(domain.min, MapPoint::new(-300_000.0, -1_300_000.0)),
        MapRect::new(
            MapPoint::new(-306_000.0, -1_307_000.0),
            MapPoint::new(-297_500.0, -1_295_000.0),
        ),
        MapRect::new(
            MapPoint::new(-302_000.0, -1_302_000.0),
            MapPoint::new(-301_000.0, -1_301_000.0),
        ),
    ];
    let times = [
        TimeRange::all(),
        TimeRange::only(TimeKey::new(2019, 10).unwrap()),
        TimeRange {
            start: TimeKey::new(2019, 10).unwrap(),
            end: TimeKey::new(2019, 11).unwrap(),
        },
    ];

    let assert_summary = |a: &QuerySummary, b: &QuerySummary, what: &str| {
        assert_eq!(a, b, "{what} summaries differ");
        assert_eq!(
            a.mean_ice_freeboard_m.to_bits(),
            b.mean_ice_freeboard_m.to_bits(),
            "{what} mean not bit-identical"
        );
        assert_eq!(a.min_freeboard_m.to_bits(), b.min_freeboard_m.to_bits());
        assert_eq!(a.max_freeboard_m.to_bits(), b.max_freeboard_m.to_bits());
        assert_eq!(a.n_thickness, b.n_thickness, "{what} thickness count");
        assert_eq!(
            a.mean_thickness_m.to_bits(),
            b.mean_thickness_m.to_bits(),
            "{what} mean thickness not bit-identical"
        );
        assert_eq!(
            a.ivw_mean_thickness_m.to_bits(),
            b.ivw_mean_thickness_m.to_bits(),
            "{what} IVW thickness not bit-identical"
        );
        assert_eq!(
            a.thickness_sigma_m.to_bits(),
            b.thickness_sigma_m.to_bits(),
            "{what} thickness sigma not bit-identical"
        );
    };

    for (ri, rect) in rects.iter().enumerate() {
        for (ti, &time) in times.iter().enumerate() {
            let want = local.query_rect(rect, time).unwrap();
            want.check_consistency().unwrap();
            let via_server = served.query_rect(rect, time).unwrap();
            let via_router = router.query_rect(rect, time).unwrap();
            assert_summary(&want, &via_server, &format!("rect {ri}/time {ti} served"));
            assert_summary(&want, &via_router, &format!("rect {ri}/time {ti} sharded"));

            let want_cells = local.query_cells(rect, time).unwrap();
            assert_eq!(
                want_cells,
                served.query_cells(rect, time).unwrap(),
                "cells {ri}/{ti} served"
            );
            assert_eq!(
                want_cells,
                router.query_cells(rect, time).unwrap(),
                "cells {ri}/{ti} sharded"
            );
        }
    }

    // Geographic bbox: the whole domain and a narrower band.
    let sw = EPSG_3976.inverse(domain.min);
    let ne = EPSG_3976.inverse(domain.max);
    let se = EPSG_3976.inverse(MapPoint::new(domain.max.x, domain.min.y));
    let nw = EPSG_3976.inverse(MapPoint::new(domain.min.x, domain.max.y));
    let lats = [sw.lat, ne.lat, se.lat, nw.lat];
    let lons = [sw.lon, ne.lon, se.lon, nw.lon];
    let wide = BoundingBox {
        lon_min: lons.iter().cloned().fold(f64::INFINITY, f64::min),
        lon_max: lons.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        lat_min: lats.iter().cloned().fold(f64::INFINITY, f64::min),
        lat_max: lats.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    };
    let narrow = BoundingBox {
        lat_max: 0.5 * (wide.lat_min + wide.lat_max),
        ..wide
    };
    for (bi, bbox) in [wide, narrow].iter().enumerate() {
        let want = local.query_bbox(bbox, TimeRange::all()).unwrap();
        assert_summary(
            &want,
            &served.query_bbox(bbox, TimeRange::all()).unwrap(),
            &format!("bbox {bi} served"),
        );
        assert_summary(
            &want,
            &router.query_bbox(bbox, TimeRange::all()).unwrap(),
            &format!("bbox {bi} sharded"),
        );
    }

    // Per-layer summaries.
    let want_layers = local.query_time_range(TimeRange::all()).unwrap();
    assert_eq!(
        want_layers,
        served.query_time_range(TimeRange::all()).unwrap()
    );
    assert_eq!(
        want_layers,
        router.query_time_range(TimeRange::all()).unwrap()
    );

    // Point probes in both shard halves and outside the domain.
    for probe_m in [
        MapPoint::new(-303_000.0, -1_306_000.0), // south
        MapPoint::new(-298_000.0, -1_294_000.0), // north
        MapPoint::new(-301_000.0, -1_300_100.0), // near the split
    ] {
        let probe = EPSG_3976.inverse(probe_m);
        let want = local.query_point(probe, TimeRange::all()).unwrap();
        assert_eq!(want, served.query_point(probe, TimeRange::all()).unwrap());
        assert_eq!(want, router.query_point(probe, TimeRange::all()).unwrap());
    }
    let far = GeoPoint::new(-60.0, 10.0);
    assert!(router.query_point(far, TimeRange::all()).unwrap().is_none());

    // Stats: totals agree (cache counters are deployment-specific).
    let want = local.stats().unwrap();
    let via_server = served.stats().unwrap();
    let via_router = router.stats().unwrap();
    for (label, got) in [("served", &via_server), ("sharded", &via_router)] {
        assert_eq!(got.n_samples, want.n_samples, "{label} sample total");
        assert_eq!(got.n_tiles, want.n_tiles, "{label} tile total");
        assert_eq!(got.n_layers, want.n_layers, "{label} layer total");
        assert_eq!(got.n_thickness, want.n_thickness, "{label} thickness total");
    }

    // Remote validation passes everywhere.
    served.validate().unwrap();
    assert!(router.validate().unwrap() >= want.n_tiles);
}

#[test]
fn served_and_sharded_queries_are_bit_identical_to_local() {
    let local_dir = temp_dir("local");
    let shard_dirs = [temp_dir("shard0"), temp_dir("shard1")];
    let scopes = scopes();

    // Build the three deployments from the same products.
    let batch = workload();
    let thickness = thickness_workload();
    let local = Arc::new(Catalog::create(&local_dir, grid()).unwrap());
    ingest(&local, &batch);
    for beam in &thickness {
        local.ingest_thickness_beam(beam).unwrap();
    }
    assert!(local.stats().unwrap().n_thickness > 0);
    let parts = partition(&batch);
    let shard_catalogs: Vec<Arc<Catalog>> = shard_dirs
        .iter()
        .zip(&parts)
        .map(|(dir, part)| {
            let catalog = Arc::new(Catalog::create(dir, grid()).unwrap());
            ingest(&catalog, part);
            catalog
        })
        .collect();
    for beam in &thickness {
        let split = partition_thickness(&grid(), &scopes, beam);
        for (catalog, part) in shard_catalogs.iter().zip(split) {
            if !part.points.is_empty() {
                catalog.ingest_thickness_beam(&part).unwrap();
            }
        }
    }
    // Shard stores really are partitions: together they hold exactly
    // the local store's samples, and neither holds the other's tiles.
    let shard_totals: usize = shard_catalogs
        .iter()
        .map(|c| c.stats().unwrap().n_samples)
        .sum();
    assert_eq!(shard_totals, local.stats().unwrap().n_samples);

    // Serve: one server over the full store, one per shard.
    let full_server = CatalogServer::serve(Arc::clone(&local), "127.0.0.1:0").unwrap();
    let shard_servers: Vec<CatalogServer> = shard_catalogs
        .iter()
        .map(|c| CatalogServer::serve(Arc::clone(c), "127.0.0.1:0").unwrap())
        .collect();

    let mut served = CatalogClient::connect(&full_server.addr().to_string()).unwrap();
    assert_eq!(
        *served.grid(),
        grid(),
        "manifest handshake carries the grid"
    );
    let specs: Vec<ShardSpec> = shard_servers
        .iter()
        .zip(&scopes)
        .map(|(s, scope)| ShardSpec {
            addr: s.addr().to_string(),
            scope: scope.clone(),
        })
        .collect();
    let mut router = ShardRouter::connect(&specs).unwrap();
    assert_eq!(router.n_shards(), 2);

    // Quiescent equivalence.
    assert_equivalent(&local, &mut served, &mut router);

    // --- Concurrent ingest: a writer keeps landing new granules in all
    // three deployments while served readers hammer the battery. Reader
    // snapshots must stay internally consistent throughout, and the
    // deployments must agree bit-for-bit once the writer drains.
    let extra: Vec<(String, usize, FreeboardProduct)> = (0..3)
        .map(|g| {
            (
                format!("20191204195311_0600021{g}"),
                g,
                line_product(
                    380,
                    -308_000.0 + 900.0 * g as f64,
                    -1_308_000.0,
                    21.0,
                    47.0,
                    0.2,
                ),
            )
        })
        .collect();
    let writer_local = Arc::clone(&local);
    let writer_shards: Vec<Arc<Catalog>> = shard_catalogs.iter().map(Arc::clone).collect();
    let writer = std::thread::spawn(move || {
        for (granule, beam, product) in &extra {
            writer_local.ingest_beam(granule, *beam, product).unwrap();
            let split = partition_product(writer_local.grid(), &scopes, product);
            for (catalog, part) in writer_shards.iter().zip(split) {
                if !part.points.is_empty() {
                    catalog.ingest_beam(granule, *beam, &part).unwrap();
                }
            }
        }
    });
    let domain = grid().domain();
    let mut racing_reader = CatalogClient::connect(&full_server.addr().to_string()).unwrap();
    let mut last_seen = 0usize;
    while !writer.is_finished() {
        let snapshot = racing_reader.query_rect(&domain, TimeRange::all()).unwrap();
        snapshot.check_consistency().unwrap();
        assert!(
            snapshot.n_samples >= last_seen,
            "served totals went backwards under ingest"
        );
        last_seen = snapshot.n_samples;
        let routed = router.query_rect(&domain, TimeRange::all()).unwrap();
        routed.check_consistency().unwrap();
    }
    writer.join().unwrap();

    // Post-ingest equivalence, warm and cold.
    assert_equivalent(&local, &mut served, &mut router);
    drop(router);
    let mut cold_router = ShardRouter::connect(&specs).unwrap();
    assert_equivalent(&local, &mut served, &mut cold_router);

    full_server.shutdown();
    for server in shard_servers {
        let stats = server.stats();
        assert!(stats.requests > 0 && stats.connections > 0);
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&local_dir);
    for dir in &shard_dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn router_rejects_bad_shard_maps() {
    let dir = temp_dir("badmap");
    let catalog = Arc::new(Catalog::create(&dir, grid()).unwrap());
    let server = CatalogServer::serve(Arc::clone(&catalog), "127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();

    // Overlapping scopes: "0" contains "01".
    let overlapping = [
        ShardSpec::new(addr.clone(), &["0"]).unwrap(),
        ShardSpec::new(addr.clone(), &["01", "1", "2", "3"]).unwrap(),
    ];
    assert!(ShardRouter::connect(&overlapping).is_err());

    // Hole: nobody owns prefix "3".
    let hole = [
        ShardSpec::new(addr.clone(), &["0", "1"]).unwrap(),
        ShardSpec::new(addr.clone(), &["2"]).unwrap(),
    ];
    assert!(ShardRouter::connect(&hole).is_err());

    // Prefixes deeper than the grid level can never own a tile; the
    // router must reject them instead of silently returning nothing.
    let too_deep = [
        ShardSpec::new(addr.clone(), &["000", "001"]).unwrap(),
        ShardSpec::new(addr.clone(), &["01", "1", "2", "3", "002", "003"]).unwrap(),
    ];
    assert!(ShardRouter::connect(&too_deep).is_err());

    // A complete map connects fine.
    let complete = [
        ShardSpec::new(addr.clone(), &["0", "1"]).unwrap(),
        ShardSpec::new(addr, &["2", "3"]).unwrap(),
    ];
    assert!(ShardRouter::connect(&complete).is_ok());

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
