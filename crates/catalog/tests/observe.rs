//! Observability acceptance: the `Introspect` RPC under concurrent
//! ingest, the malformed-frame accounting fix, cache counters through
//! `Catalog::stats()`, deterministic histograms, and traced-request
//! span breakdowns that reconstruct end-to-end latency on both sides
//! of the wire.

use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use icesat_geo::{MapPoint, EPSG_3976};
use icesat_scene::SurfaceClass;
use seaice::freeboard::{FreeboardPoint, FreeboardProduct};
use seaice_catalog::obs::{parse_exposition, Histogram, HistogramSnapshot};
use seaice_catalog::wire::{self, Request, Response};
use seaice_catalog::{
    Catalog, CatalogClient, CatalogOptions, CatalogServer, ClientConfig, GridConfig, TimeRange,
};

fn grid() -> GridConfig {
    GridConfig::new(MapPoint::new(-300_000.0, -1_300_000.0), 10_000.0, 2, 8).unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seaice_observe_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A synthetic beam product along a map-space line.
fn line_product(n: usize, x0: f64, y0: f64, dx: f64, dy: f64) -> FreeboardProduct {
    let points = (0..n)
        .map(|i| {
            let m = MapPoint::new(x0 + i as f64 * dx, y0 + i as f64 * dy);
            let g = EPSG_3976.inverse(m);
            FreeboardPoint {
                along_track_m: i as f64 * 2.0,
                lat: g.lat,
                lon: g.lon,
                freeboard_m: 0.12 + (i % 7) as f64 * 0.01,
                class: SurfaceClass::ALL[i % 3],
            }
        })
        .collect();
    FreeboardProduct {
        name: "observe line".into(),
        points,
    }
}

/// Counter names (`*_total`) must be monotone non-decreasing between
/// two scrapes of the same server.
fn assert_counters_monotone(prev: &std::collections::BTreeMap<String, f64>, next_text: &str) {
    let next = parse_exposition(next_text);
    for (name, value) in prev {
        if !name.contains("_total") {
            continue;
        }
        let now = next.get(name).copied().unwrap_or(f64::NEG_INFINITY);
        assert!(
            now >= *value,
            "counter {name} went backwards: {value} -> {now}"
        );
    }
}

#[test]
fn introspect_scrapes_stay_parseable_and_monotone_under_concurrent_ingest() {
    let dir = temp_dir("introspect");
    let catalog = Arc::new(Catalog::create(&dir, grid()).unwrap());
    let server = CatalogServer::serve(Arc::clone(&catalog), "127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();

    let writer = Arc::clone(&catalog);
    let ingest = std::thread::spawn(move || {
        for g in 0..6u32 {
            let product = line_product(
                400,
                -309_000.0 + 1_200.0 * g as f64,
                -1_309_500.0,
                20.0,
                40.0,
            );
            writer
                .ingest_beam(
                    &format!("2019{:02}04195311_0500021{g}", 9 + (g % 3)),
                    0,
                    &product,
                )
                .unwrap();
        }
    });

    let mut client = CatalogClient::connect(&addr).unwrap();
    let mut prev = std::collections::BTreeMap::new();
    let mut scrapes = 0u64;
    while !ingest.is_finished() || scrapes < 4 {
        let text = client.introspect().unwrap();
        assert!(!text.is_empty(), "exposition must not be empty");
        assert!(
            !parse_exposition(&text).is_empty(),
            "exposition must parse to at least one metric"
        );
        assert_counters_monotone(&prev, &text);
        prev = parse_exposition(&text);
        scrapes += 1;
        // A served query in between moves the per-kind counters too.
        let _ = client.query_rect(&client.grid().domain().clone(), TimeRange::all());
    }
    ingest.join().unwrap();

    let text = client.introspect().unwrap();
    assert_counters_monotone(&prev, &text);
    let metrics = parse_exposition(&text);
    // One scrape covers serving, ingest, and cache metrics together.
    assert!(metrics["server_requests_total"] >= scrapes as f64);
    assert!(metrics[r#"server_requests_total{kind="introspect"}"#] >= scrapes as f64);
    assert!(metrics["ingest_samples_total"] > 0.0, "ingest instrumented");
    assert!(
        metrics[r#"ingest_stage_us_count{stage="project"}"#] > 0.0
            && metrics[r#"ingest_stage_us_count{stage="merge"}"#] > 0.0
            && metrics[r#"ingest_stage_us_count{stage="persist"}"#] > 0.0
            && metrics[r#"ingest_stage_us_count{stage="ledger"}"#] > 0.0,
        "every ingest stage histogram saw traffic"
    );
    assert!(metrics.contains_key("tile_cache_hits_total"));
    assert!(metrics.contains_key("tile_cache_misses_total"));
    assert!(metrics.contains_key("tile_cache_evictions_total"));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_frames_count_separately_and_do_not_kill_the_connection() {
    let dir = temp_dir("malformed");
    let catalog = Arc::new(Catalog::create(&dir, grid()).unwrap());
    let server = CatalogServer::serve(Arc::clone(&catalog), "127.0.0.1:0").unwrap();

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // A frame-layer-valid payload that is not a decodable Request.
    wire::write_frame(&mut stream, &[0xFF, 0xFE, 0xFD, 0xFC]).unwrap();
    match wire::read_message::<Response>(&mut stream).unwrap() {
        Some(Response::Error { .. }) => {}
        other => panic!("expected an error frame for garbage, got {other:?}"),
    }
    // The connection survives: a well-formed Ping still answers.
    wire::write_message(&mut stream, &Request::Ping).unwrap();
    let stats = match wire::read_message::<Response>(&mut stream).unwrap() {
        Some(Response::Pong(stats)) => stats,
        other => panic!("expected a pong, got {other:?}"),
    };
    // Satellite fix: the garbage frame is not a request. Only the Ping
    // counted, while the malformed and error counters each took one.
    assert_eq!(stats.requests, 1, "only the decodable request counts");
    assert_eq!(stats.errors, 1);
    let metrics = parse_exposition(&catalog.expose());
    assert_eq!(metrics["server_requests_malformed_total"], 1.0);
    assert_eq!(metrics["server_requests_total"], 1.0);
    assert_eq!(metrics[r#"server_requests_total{kind="ping"}"#], 1.0);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_counters_flow_through_catalog_stats() {
    let dir = temp_dir("cache_stats");
    // A 2-tile cache under a multi-tile store forces misses + evictions.
    let options = CatalogOptions {
        cache_capacity: 2,
        cache_stripes: 1,
        ..CatalogOptions::default()
    };
    let catalog = Catalog::create_with(&dir, grid(), options).unwrap();
    for g in 0..3u32 {
        let product = line_product(500, -309_000.0, -1_309_500.0 + 600.0 * g as f64, 45.0, 28.0);
        catalog
            .ingest_beam(&format!("20190904195311_0500021{g}"), g as usize, &product)
            .unwrap();
    }
    let domain = catalog.grid().domain();
    // Whole-domain sweeps rotate more tiles than the cache holds
    // (misses + evictions)…
    for _ in 0..2 {
        catalog.query_rect(&domain, TimeRange::all()).unwrap();
    }
    // …while a rect inside one tile re-reads the same snapshot (hits).
    let spot = seaice_catalog::MapRect::new(
        MapPoint::new(-309_000.0, -1_309_500.0),
        MapPoint::new(-308_800.0, -1_309_300.0),
    );
    for _ in 0..4 {
        catalog.query_rect(&spot, TimeRange::all()).unwrap();
    }
    let stats = catalog.stats().unwrap();
    assert!(stats.cache.hits > 0, "repeat queries must hit the cache");
    assert!(stats.cache.misses > 0, "a cold cache must record misses");
    assert!(
        stats.cache.evictions > 0,
        "a 2-entry cache over more tiles must evict"
    );
    // The same cells surface in the exposition (and stay consistent).
    let metrics = parse_exposition(&catalog.expose());
    assert!(metrics["tile_cache_hits_total"] >= stats.cache.hits as f64);
    assert!(metrics["tile_cache_misses_total"] >= stats.cache.misses as f64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn histograms_are_order_invariant_and_merge_deterministically() {
    let durations: Vec<u64> = (0..2_000u64).map(|i| (i * 37) % 5_000 + 1).collect();

    // Sequential, reversed, and 4-thread interleaved recording must
    // produce bit-identical snapshots.
    let forward = Histogram::default();
    for &us in &durations {
        forward.record_us(us);
    }
    let reversed = Histogram::default();
    for &us in durations.iter().rev() {
        reversed.record_us(us);
    }
    let interleaved = Histogram::default();
    std::thread::scope(|s| {
        for t in 0..4usize {
            let h = interleaved.clone();
            let durations = &durations;
            s.spawn(move || {
                for &us in durations.iter().skip(t).step_by(4) {
                    h.record_us(us);
                }
            });
        }
    });
    assert_eq!(forward.snapshot(), reversed.snapshot());
    assert_eq!(forward.snapshot(), interleaved.snapshot());

    // Merge is associative and bit-stable: any grouping of per-shard
    // snapshots folds to the same totals.
    let shard = |range: std::ops::Range<usize>| {
        let h = Histogram::default();
        for &us in &durations[range] {
            h.record_us(us);
        }
        h.snapshot()
    };
    let (a, b, c) = (shard(0..700), shard(700..1300), shard(1300..2000));
    let ab_c = a.merge(&b).merge(&c);
    let a_bc = a.merge(&b.merge(&c));
    assert_eq!(ab_c, a_bc);
    assert_eq!(ab_c, forward.snapshot());
    assert_eq!(ab_c.quantile_us(0.5), forward.snapshot().quantile_us(0.5));

    // Merging an empty snapshot is the identity.
    assert_eq!(ab_c.merge(&HistogramSnapshot::default()), ab_c);
}

#[test]
fn traced_request_breakdown_reconstructs_latency_on_both_sides() {
    let dir = temp_dir("traced");
    let catalog = Arc::new(Catalog::create(&dir, grid()).unwrap());
    let product = line_product(800, -309_000.0, -1_309_500.0, 30.0, 35.0);
    catalog
        .ingest_beam("20190904195311_05000210", 0, &product)
        .unwrap();
    let server = CatalogServer::serve(Arc::clone(&catalog), "127.0.0.1:0").unwrap();

    let config = ClientConfig {
        trace: true,
        ..ClientConfig::default()
    };
    let mut client = CatalogClient::connect_with(&server.addr().to_string(), config).unwrap();
    let domain = client.grid().domain();
    client.query_rect(&domain, TimeRange::all()).unwrap();

    let client_report = client.last_trace().expect("tracing was on");
    assert!(!client_report.spans.is_empty());
    assert!(
        client_report.spans.iter().any(|s| s.name == "exchange"),
        "client spans: {:?}",
        client_report.spans
    );
    // The span breakdown reconstructs the end-to-end latency: the
    // non-overlapping spans sum to no more than the traced total.
    assert!(client_report.spans_total_us() <= client_report.total_us);

    // The same trace id crossed the wire: the server holds a span
    // breakdown for it, itself summing to within its own total.
    std::thread::sleep(Duration::from_millis(20)); // handler publishes after replying
    let server_report = server
        .recent_traces()
        .into_iter()
        .find(|r| r.id == client_report.id)
        .expect("server recorded the client's trace id");
    assert!(
        server_report.spans.iter().any(|s| s.name == "query"),
        "server spans: {:?}",
        server_report.spans
    );
    assert!(server_report.spans_total_us() <= server_report.total_us);
    // Server-side handling happens between the client's send and its
    // last byte read, so it nests inside the client's traced total.
    assert!(server_report.total_us <= client_report.total_us);

    // The scrape renders the traced request too.
    let scraped = client.introspect().unwrap();
    assert!(
        scraped.contains(&format!("{:016x}", client_report.id)),
        "introspection exposes the trace timeline"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Multiplexing must not blur the serving metrics: the in-flight and
/// worker-queue gauges rise under a pipelined burst and settle back to
/// zero, per-kind latency histograms count *exactly* one observation
/// per request, and an `Introspect` scrape is answered on a connection
/// that still has pipelined queries outstanding.
#[test]
fn gauges_and_histograms_stay_exact_under_multiplexing() {
    let dir = temp_dir("mux_gauges");
    let catalog = Arc::new(Catalog::create(&dir, grid()).unwrap());
    for g in 0..4u32 {
        let product = line_product(
            500,
            -309_000.0 + 1_400.0 * g as f64,
            -1_309_500.0,
            18.0,
            42.0,
        );
        catalog
            .ingest_beam(&format!("20191{}04195311_0500021{g}", g % 2), 0, &product)
            .unwrap();
    }
    let server = CatalogServer::serve(Arc::clone(&catalog), "127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();
    let domain = grid().domain();
    let truth = catalog.query_rect(&domain, TimeRange::all()).unwrap();

    let mut client = CatalogClient::connect(&addr).unwrap();
    let base = parse_exposition(&client.introspect().unwrap());
    let count_of = |m: &std::collections::BTreeMap<String, f64>, key: &str| -> f64 {
        m.get(key).copied().unwrap_or(0.0)
    };
    let rect_count_key = r#"server_request_us_count{kind="query_rect"}"#;
    let rect_total_key = r#"server_requests_total{kind="query_rect"}"#;

    // A pipelined burst: 24 rect queries and then an Introspect, all on
    // this one connection. The scrape is waited on FIRST — the server
    // must answer it while the same connection's queries are
    // outstanding from the client's point of view.
    const BURST: usize = 24;
    let mut pendings = Vec::new();
    for _ in 0..BURST {
        pendings.push(client.submit_query_rect(&domain, TimeRange::all()).unwrap());
    }
    let scrape = client.submit_introspect().unwrap();
    assert_eq!(client.in_flight(), BURST + 1);
    let mid_text = client.wait(scrape).unwrap();
    assert!(
        !parse_exposition(&mid_text).is_empty(),
        "mid-pipeline scrape must parse"
    );
    assert!(
        client.in_flight() > 0,
        "introspect answered out of order, with queries still pending"
    );
    for pending in pendings {
        let got = client.wait(pending).unwrap();
        assert_eq!(
            got.mean_ice_freeboard_m.to_bits(),
            truth.mean_ice_freeboard_m.to_bits(),
            "pipelined answer diverged"
        );
    }

    // Exactness: the burst moved the per-kind histogram and counter by
    // exactly BURST — no double-counted, no dropped observations.
    let settled = parse_exposition(&client.introspect().unwrap());
    assert_eq!(
        (count_of(&settled, rect_count_key) - count_of(&base, rect_count_key)) as usize,
        BURST,
        "latency histogram count must be exact under multiplexing"
    );
    assert_eq!(
        (count_of(&settled, rect_total_key) - count_of(&base, rect_total_key)) as usize,
        BURST,
        "request counter must be exact under multiplexing"
    );
    // Percentile fields accompany every non-empty histogram.
    for suffix in ["_p50_us", "_p95_us", "_p99_us"] {
        let key = format!(r#"server_request_us{suffix}{{kind="query_rect"}}"#);
        assert!(
            count_of(&settled, &key) > 0.0,
            "histogram must expose {key}"
        );
    }
    // A *served* scrape counts itself, so its own in-flight reading is
    // ≥ 1 by construction; quiescence is asserted out of band, straight
    // off the server's registry once the completion queue drains.
    assert!(count_of(&settled, "server_requests_in_flight") >= 1.0);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let rest = parse_exposition(&server.registry().expose());
        if count_of(&rest, "server_requests_in_flight") == 0.0
            && count_of(&rest, "server_worker_queue_depth") == 0.0
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "gauges never settled back to zero at rest"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The gauges actually move: hammer waves of pipelined bursts from a
    // second connection while polling the server's own registry until
    // a nonzero in-flight reading is observed.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let hammer_stop = Arc::clone(&stop);
    let hammer_addr = addr.clone();
    let hammer = std::thread::spawn(move || {
        let mut c = CatalogClient::connect(&hammer_addr).unwrap();
        let domain = grid().domain();
        while !hammer_stop.load(std::sync::atomic::Ordering::Relaxed) {
            let wave: Vec<_> = (0..16)
                .map(|_| c.submit_query_rect(&domain, TimeRange::all()).unwrap())
                .collect();
            for pending in wave {
                c.wait(pending).unwrap();
            }
        }
    });
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut peak = 0.0f64;
    while peak < 1.0 {
        assert!(
            std::time::Instant::now() < deadline,
            "in-flight gauge never observed above zero under pipelined load"
        );
        let live = parse_exposition(&server.registry().expose());
        peak = peak.max(count_of(&live, "server_requests_in_flight"));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    hammer.join().unwrap();

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
