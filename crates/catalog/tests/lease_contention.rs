//! Writer-lease acceptance: two would-be writers race for one catalog
//! directory — exactly one wins and the loser gets a typed error — and
//! a stale (crashed-owner) lease is taken over without corrupting the
//! version index.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use icesat_geo::{MapPoint, EPSG_3976};
use icesat_scene::SurfaceClass;
use seaice::freeboard::{FreeboardPoint, FreeboardProduct};
use seaice_catalog::{
    Catalog, CatalogError, CatalogOptions, FaultAction, FaultPlan, GridConfig, LeaseOptions,
    TimeRange,
};

fn grid() -> GridConfig {
    GridConfig::new(MapPoint::new(-300_000.0, -1_300_000.0), 10_000.0, 2, 8).unwrap()
}

fn line_product(n: usize, y0: f64, fb0: f64) -> FreeboardProduct {
    let points = (0..n)
        .map(|i| {
            let m = MapPoint::new(-306_000.0 + i as f64 * 30.0, y0 + i as f64 * 12.0);
            let g = EPSG_3976.inverse(m);
            FreeboardPoint {
                along_track_m: i as f64 * 2.0,
                lat: g.lat,
                lon: g.lon,
                freeboard_m: fb0 + (i % 5) as f64 * 0.02,
                class: SurfaceClass::ALL[i % 3],
            }
        })
        .collect();
    FreeboardProduct {
        name: "lease line".into(),
        points,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seaice_leasecat_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn second_writer_loses_with_typed_error_and_readers_still_work() {
    let dir = temp_dir("contend");
    let winner = Catalog::create_writer(
        &dir,
        grid(),
        CatalogOptions::default(),
        &LeaseOptions::new("writer-a"),
    )
    .unwrap();
    assert_eq!(winner.lease().unwrap().owner, "writer-a");
    winner
        .ingest_beam(
            "20191104195311_05000210",
            0,
            &line_product(300, -1_304_000.0, 0.2),
        )
        .unwrap();

    // A second leased writer is refused with the typed loser error…
    match Catalog::open_writer(
        &dir,
        CatalogOptions::default(),
        &LeaseOptions::new("writer-b"),
    ) {
        Err(CatalogError::LeaseHeld { owner, .. }) => assert_eq!(owner, "writer-a"),
        other => panic!("expected LeaseHeld, got {:?}", other.map(|_| "a catalog")),
    }
    // …while unleased read-only opens keep working.
    let reader = Catalog::open(&dir).unwrap();
    assert_eq!(reader.stats().unwrap().n_samples, 300);
    assert!(reader.lease().is_none());

    // Releasing the lease (drop) lets the next writer in.
    drop(winner);
    let next = Catalog::open_writer(
        &dir,
        CatalogOptions::default(),
        &LeaseOptions::new("writer-b"),
    )
    .unwrap();
    assert_eq!(next.lease().unwrap().owner, "writer-b");
    drop(next);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn racing_writers_produce_exactly_one_winner() {
    let dir = temp_dir("race");
    let results: Vec<Result<Catalog, CatalogError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let dir = dir.clone();
                s.spawn(move || {
                    Catalog::create_writer(
                        &dir,
                        grid(),
                        CatalogOptions::default(),
                        &LeaseOptions::new(format!("racer-{i}")),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(
        results.iter().filter(|r| r.is_ok()).count(),
        1,
        "exactly one racing writer may hold the lease"
    );
    for r in &results {
        if let Err(e) = r {
            assert!(
                matches!(e, CatalogError::LeaseHeld { .. }),
                "loser must see LeaseHeld, got {e:?}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_lease_takeover_preserves_the_version_index() {
    let dir = temp_dir("takeover");
    let ttl = Duration::from_millis(80);
    let crashed = Catalog::create_writer(
        &dir,
        grid(),
        CatalogOptions::default(),
        &LeaseOptions::new("crashed-owner").with_ttl(ttl),
    )
    .unwrap();
    crashed
        .ingest_beam(
            "20191104195311_05000210",
            0,
            &line_product(400, -1_305_000.0, 0.18),
        )
        .unwrap();
    let before = crashed.stats().unwrap();
    assert_eq!(before.n_samples, 400);
    // Simulate a crash: the process dies without releasing the lease.
    std::mem::forget(crashed);

    // A prompt successor is still locked out (the lease looks live)…
    assert!(matches!(
        Catalog::open_writer(
            &dir,
            CatalogOptions::default(),
            &LeaseOptions::new("taker").with_ttl(ttl)
        ),
        Err(CatalogError::LeaseHeld { .. })
    ));
    // …until the heartbeat goes stale.
    std::thread::sleep(ttl + Duration::from_millis(60));
    let taker = Catalog::open_writer(
        &dir,
        CatalogOptions::default(),
        &LeaseOptions::new("taker").with_ttl(ttl),
    )
    .unwrap();
    assert_eq!(taker.lease().unwrap().owner, "taker");

    // The rebuilt version index carries the crashed writer's data, and
    // new ingest merges on top without losing anything.
    assert_eq!(taker.stats().unwrap().n_samples, 400);
    taker
        .ingest_beam(
            "20191104195311_05010210",
            1,
            &line_product(250, -1_302_000.0, 0.3),
        )
        .unwrap();
    let whole = taker
        .query_rect(&taker.grid().domain(), TimeRange::all())
        .unwrap();
    whole.check_consistency().unwrap();
    assert_eq!(whole.n_samples, 650, "takeover lost or duplicated samples");
    taker.validate().unwrap();

    // Cold reopen agrees bit for bit.
    drop(taker);
    let reopened = Catalog::open(&dir).unwrap();
    let again = reopened
        .query_rect(&reopened.grid().domain(), TimeRange::all())
        .unwrap();
    assert_eq!(again, whole);
    assert_eq!(
        again.mean_ice_freeboard_m.to_bits(),
        whole.mean_ice_freeboard_m.to_bits()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fenced_writer_refuses_ingest_after_takeover() {
    let dir = temp_dir("fence");
    let ttl = Duration::from_millis(80);
    let old = Catalog::create_writer(
        &dir,
        grid(),
        CatalogOptions::default(),
        &LeaseOptions::new("old").with_ttl(ttl),
    )
    .unwrap();
    old.ingest_beam(
        "20191104195311_05000210",
        0,
        &line_product(100, -1_306_000.0, 0.2),
    )
    .unwrap();
    // The old writer stalls past its ttl; a taker moves in.
    std::thread::sleep(ttl + Duration::from_millis(60));
    let taker = Catalog::open_writer(
        &dir,
        CatalogOptions::default(),
        &LeaseOptions::new("new").with_ttl(Duration::from_secs(30)),
    )
    .unwrap();
    // Self-fencing: the stalled writer's next ingest is refused before
    // it can touch a tile.
    match old.ingest_beam(
        "20191104195311_05010210",
        1,
        &line_product(50, -1_303_000.0, 0.25),
    ) {
        Err(CatalogError::LeaseLost) => {}
        other => panic!("expected LeaseLost, got {:?}", other.map(|r| r.n_samples)),
    }
    assert_eq!(
        taker.stats().unwrap().n_samples,
        100,
        "no partial batch leaked"
    );
    drop(old);
    drop(taker);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The injected-pause variant of self-fencing: a writer wedged *inside*
/// an ingest call (scripted [`FaultPlan`] stall past the ttl — a GC
/// pause, a stopped VM) must come back, notice its lease is gone, and
/// fence itself with [`CatalogError::LeaseLost`] before touching a
/// tile. A takeover racing that stalled ingest never double-writes.
#[test]
fn stalled_writer_self_fences_and_takeover_never_double_writes() {
    let dir = temp_dir("stall");
    let ttl = Duration::from_millis(120);
    // Script the stall on the writer's *second* ingest: hit 0 passes
    // clean (and heartbeats), hit 1 wedges for 3×ttl.
    let plan = Arc::new(FaultPlan::scripted().with(
        FaultPlan::INGEST_PAUSE,
        1,
        FaultAction::StallMs(3 * ttl.as_millis() as u64),
    ));
    let writer = Catalog::create_writer(
        &dir,
        grid(),
        CatalogOptions {
            fault: Some(Arc::clone(&plan)),
            ..CatalogOptions::default()
        },
        &LeaseOptions::new("wedged").with_ttl(ttl),
    )
    .unwrap();
    writer
        .ingest_beam(
            "20191104195311_05000210",
            0,
            &line_product(200, -1_305_000.0, 0.2),
        )
        .unwrap();

    // The wedged ingest runs in a thread; while it sleeps, a taker
    // moves in over the stale lease and lands its own granule.
    let stalled = std::thread::scope(|s| {
        let handle = s.spawn(|| {
            writer.ingest_beam(
                "20191104195311_05010210",
                1,
                &line_product(150, -1_302_000.0, 0.3),
            )
        });
        // Wait out the ttl (the stall is 3×), then take over.
        std::thread::sleep(2 * ttl);
        let taker = Catalog::open_writer(
            &dir,
            CatalogOptions::default(),
            &LeaseOptions::new("taker").with_ttl(Duration::from_secs(30)),
        )
        .unwrap();
        taker
            .ingest_beam(
                "20191204195311_05020210",
                0,
                &line_product(120, -1_303_000.0, 0.25),
            )
            .unwrap();
        drop(taker);
        handle.join().unwrap()
    });

    // The stalled writer self-fenced before its batch touched anything.
    assert!(
        matches!(stalled, Err(CatalogError::LeaseLost)),
        "wedged writer must fence with LeaseLost, got {:?}",
        stalled.map(|r| r.n_samples)
    );
    assert_eq!(plan.hits(FaultPlan::INGEST_PAUSE), 2);

    // Ground truth holds exactly the pre-stall granule plus the
    // taker's: the wedged batch left no trace, nothing doubled.
    let reopened = Catalog::open(&dir).unwrap();
    let whole = reopened
        .query_rect(&reopened.grid().domain(), TimeRange::all())
        .unwrap();
    whole.check_consistency().unwrap();
    assert_eq!(
        whole.n_samples,
        200 + 120,
        "stalled writer's fenced batch leaked or takeover double-wrote"
    );
    reopened.validate().unwrap();
    drop(writer);
    let _ = std::fs::remove_dir_all(&dir);
}
