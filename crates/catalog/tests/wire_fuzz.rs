//! Wire-protocol fuzz: seeded corpus mutation against the v2 framing
//! and a live event-loop server.
//!
//! The failure contract under hostile bytes is **typed error or clean
//! drop, never panic, hang, or wrong answer**. Two layers pin it:
//!
//! - *pure*: [`seaice_catalog::wire::try_extract_frame`] and the
//!   message decoders chew through thousands of seeded mutations of
//!   valid frames (truncations, bit flips, hostile length prefixes,
//!   mid-stream garbage) without panicking, and only checksum-clean
//!   frames ever decode;
//! - *live*: a raw socket feeds the same mutations at a running
//!   [`CatalogServer`]; after every round the server still answers a
//!   well-formed client bit-identically to the in-process store, and
//!   duplicate in-flight request ids come back as typed
//!   [`ERR_DUP_REQUEST`] error frames on a surviving connection.
//!
//! Everything is seeded (`splitmix64`) — a failing seed replays
//! exactly.

use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use icesat_geo::{MapPoint, EPSG_3976};
use icesat_scene::SurfaceClass;
use seaice::artifact::Artifact;
use seaice::freeboard::{FreeboardPoint, FreeboardProduct};
use seaice_catalog::fault::splitmix64;
use seaice_catalog::wire::{
    self, Request, Response, ERR_DUP_REQUEST, FRAME_HEADER_BYTES, MAX_FRAME_BYTES,
};
use seaice_catalog::{Catalog, CatalogClient, CatalogServer, GridConfig, TileScope, TimeRange};

fn grid() -> GridConfig {
    GridConfig::new(MapPoint::new(-300_000.0, -1_300_000.0), 10_000.0, 2, 8).unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seaice_wirefuzz_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seed_product() -> FreeboardProduct {
    let points = (0..64)
        .map(|i| {
            let m = MapPoint::new(
                -309_000.0 + i as f64 * 120.0,
                -1_309_000.0 + i as f64 * 250.0,
            );
            let g = EPSG_3976.inverse(m);
            FreeboardPoint {
                along_track_m: i as f64 * 2.0,
                lat: g.lat,
                lon: g.lon,
                freeboard_m: 0.1 + (i % 7) as f64 * 0.02,
                class: SurfaceClass::ALL[i % 3],
            }
        })
        .collect();
    FreeboardProduct {
        name: "fuzz seed".into(),
        points,
    }
}

/// The corpus of valid request messages mutations start from — every
/// RPC kind, so each decoder sees hostile bytes.
fn corpus() -> Vec<Request> {
    let domain = grid().domain();
    vec![
        Request::Manifest,
        Request::Ping,
        Request::Introspect,
        Request::QueryRect {
            rect: domain,
            time: TimeRange::all(),
            scope: TileScope::all(),
        },
        Request::QueryPoint {
            point: EPSG_3976.inverse(MapPoint::new(-303_000.0, -1_306_000.0)),
            time: TimeRange::all(),
            scope: TileScope::all(),
        },
        Request::QueryTimeRange {
            time: TimeRange::all(),
            scope: TileScope::all(),
        },
        Request::QueryCells {
            rect: domain,
            time: TimeRange::all(),
            scope: TileScope::all(),
        },
        Request::Stats {
            scope: TileScope::all(),
        },
        Request::Validate {
            scope: TileScope::all(),
        },
        Request::IngestSamples {
            granule_id: "20191104195311_05000211".into(),
            beam: 1,
            mode: seaice_catalog::IngestMode::Skip,
            product: seed_product(),
        },
    ]
}

/// One seeded mutation of an encoded frame. The mutation kind and every
/// offset are drawn from the seed, so a failure names its replay.
fn mutate(frame: &[u8], state: &mut u64) -> Vec<u8> {
    let mut out = frame.to_vec();
    match splitmix64(state) % 9 {
        // Truncate anywhere — inside the header, inside the payload.
        0 => {
            let cut = (splitmix64(state) as usize) % out.len().max(1);
            out.truncate(cut);
        }
        // Flip one bit anywhere.
        1 => {
            let at = (splitmix64(state) as usize) % out.len();
            out[at] ^= 1 << (splitmix64(state) % 8);
        }
        // Hostile length prefix (up to u32::MAX).
        2 => {
            let len = splitmix64(state) as u32;
            out[..4].copy_from_slice(&len.to_le_bytes());
        }
        // Length prefix just past the cap.
        3 => {
            let len = (MAX_FRAME_BYTES as u32) + 1 + (splitmix64(state) as u32 % 1024);
            out[..4].copy_from_slice(&len.to_le_bytes());
        }
        // Zeroed checksum.
        4 => out[4..12].fill(0),
        // Garbage appended after a valid frame (mid-stream garbage).
        5 => {
            for _ in 0..(splitmix64(state) % 64 + 1) {
                out.push(splitmix64(state) as u8);
            }
        }
        // Garbage inserted at a random offset.
        6 => {
            let at = (splitmix64(state) as usize) % (out.len() + 1);
            let byte = splitmix64(state) as u8;
            out.insert(at, byte);
        }
        // Payload scramble: rewrite a run of payload bytes.
        7 => {
            if out.len() > FRAME_HEADER_BYTES {
                let start = FRAME_HEADER_BYTES
                    + (splitmix64(state) as usize) % (out.len() - FRAME_HEADER_BYTES);
                for b in out[start..].iter_mut() {
                    *b = splitmix64(state) as u8;
                }
            }
        }
        // Pure noise of a seeded length (no valid structure at all).
        _ => {
            let n = (splitmix64(state) % 96) as usize;
            out = (0..n).map(|_| splitmix64(state) as u8).collect();
        }
    }
    out
}

/// Pure-function layer: frame extraction and message decoding survive
/// every mutation without panicking, and a frame only ever decodes if
/// its checksum still validates (no wrong answers from corrupt bytes).
#[test]
fn mutated_frames_never_panic_and_only_checksum_clean_frames_decode() {
    let corpus = corpus();
    let mut state = 0x5eed_f00d_u64;
    for round in 0..4000 {
        let request = &corpus[(splitmix64(&mut state) as usize) % corpus.len()];
        let request_id = splitmix64(&mut state) % 1000;
        let frame = wire::encode_frame(&request.to_bytes(), request_id, 0).unwrap();
        let mutated = mutate(&frame, &mut state);
        // Extraction: complete, incomplete, or typed error — never a
        // panic, and never a frame whose checksum does not validate.
        if let Ok(Some((extracted, consumed))) = wire::try_extract_frame(&mutated) {
            assert!(consumed <= mutated.len(), "round {round}: overconsumed");
            assert_eq!(
                wire::frame_checksum(extracted.request_id, extracted.trace_id, &extracted.payload),
                u64::from_le_bytes(mutated[4..12].try_into().unwrap()),
                "round {round}: extracted a frame whose checksum does not validate"
            );
            // Whatever the payload now holds decodes to a typed
            // result, not a panic.
            let _ = Request::from_bytes(&extracted.payload);
            let _ = Response::from_bytes(&extracted.payload);
        }
        // Raw decoders on the mutated bytes (as if framing were
        // bypassed): typed error or value, never a panic.
        let _ = Request::from_bytes(&mutated);
        let _ = Response::from_bytes(&mutated);
    }
}

/// Drains whatever the server sends until it closes the connection or
/// goes quiet; panics only on a hang past the deadline.
fn drain(stream: &mut TcpStream, quiet: Duration) -> usize {
    let deadline = Instant::now() + Duration::from_secs(10);
    let _ = stream.set_read_timeout(Some(quiet));
    let mut frames = 0usize;
    loop {
        assert!(Instant::now() < deadline, "server hung on a mutated stream");
        match wire::read_frame_cancellable(stream, || true) {
            Ok(Some(_)) => frames += 1,
            Ok(None) => return frames, // quiet or clean EOF
            Err(_) => return frames,   // dropped mid-frame: a clean drop for us
        }
    }
}

/// Live layer: a raw socket feeds seeded mutations at a running server.
/// After every round the server must still answer a well-formed client
/// bit-identically to the in-process store — no panic, no hang, no
/// wrong answer, no poisoned shared state.
#[test]
fn live_server_survives_mutated_streams_and_still_answers_correctly() {
    let dir = temp_dir("live");
    let local = Arc::new(Catalog::create(&dir, grid()).unwrap());
    for (i, product) in [seed_product()].iter().enumerate() {
        local
            .ingest_beam("20191104195311_05000211", i, product)
            .unwrap();
    }
    let server = CatalogServer::serve(Arc::clone(&local), "127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();
    let domain = grid().domain();
    let truth = local.query_rect(&domain, TimeRange::all()).unwrap();

    let corpus = corpus();
    let mut state = 0xdead_5eed_u64;
    let rounds = if cfg!(debug_assertions) { 60 } else { 300 };
    for round in 0..rounds {
        let mut raw = TcpStream::connect(&addr).unwrap();
        // A burst of 1–3 mutated frames per connection, sometimes
        // preceded by a valid one (mid-stream corruption).
        let lead_valid = splitmix64(&mut state).is_multiple_of(3);
        if lead_valid {
            let frame = wire::encode_frame(&Request::Ping.to_bytes(), 1, 0).unwrap();
            raw.write_all(&frame).unwrap();
        }
        for _ in 0..(splitmix64(&mut state) % 3 + 1) {
            let request = &corpus[(splitmix64(&mut state) as usize) % corpus.len()];
            let frame =
                wire::encode_frame(&request.to_bytes(), splitmix64(&mut state) % 7, 0).unwrap();
            let mutated = mutate(&frame, &mut state);
            if raw.write_all(&mutated).is_err() {
                break; // server already dropped us — a clean drop
            }
        }
        let answered = drain(&mut raw, Duration::from_millis(50));
        if lead_valid {
            // The valid leading request must not be lost to later
            // garbage on the same connection... unless the garbage cut
            // the connection first, which is a permitted clean drop.
            let _ = answered;
        }
        drop(raw);

        // The server is still healthy: fresh well-formed client, fresh
        // bit-identical answer.
        if round % 10 == 0 || round + 1 == rounds {
            let mut client = CatalogClient::connect(&addr).unwrap();
            let got = client.query_rect(&domain, TimeRange::all()).unwrap();
            assert_eq!(truth, got, "round {round}: served answer diverged");
            assert_eq!(
                truth.mean_ice_freeboard_m.to_bits(),
                got.mean_ice_freeboard_m.to_bits(),
                "round {round}: served answer not bit-identical"
            );
        }
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reusing a live request id is a typed [`ERR_DUP_REQUEST`] error frame
/// for the duplicate, the original still answers, and the connection
/// survives both. The original is pinned in flight deterministically: a
/// served write stalled by a scripted ingest-entry fault cannot retire
/// its id before the duplicate behind it is read.
#[test]
fn duplicate_in_flight_request_ids_fail_typed_without_killing_the_connection() {
    use seaice_catalog::{CatalogOptions, FaultAction, FaultPlan, ServerConfig};

    let dir = temp_dir("dup");
    let plan =
        Arc::new(FaultPlan::scripted().with(FaultPlan::INGEST_PAUSE, 0, FaultAction::StallMs(400)));
    let local = Arc::new(
        Catalog::create_with(
            &dir,
            grid(),
            CatalogOptions {
                fault: Some(plan),
                ..CatalogOptions::default()
            },
        )
        .unwrap(),
    );
    let server = CatalogServer::serve_with(
        Arc::clone(&local),
        "127.0.0.1:0",
        ServerConfig {
            allow_writes: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut raw = TcpStream::connect(server.addr()).unwrap();

    // Two frames, same id 7, in a single write: a served write that
    // stalls 400 ms at ingest entry, and a duplicate ping behind it.
    let write = Request::IngestSamples {
        granule_id: "20191104195311_05000211".into(),
        beam: 0,
        mode: seaice_catalog::IngestMode::Skip,
        product: seed_product(),
    };
    let mut burst = wire::encode_frame(&write.to_bytes(), 7, 0).unwrap();
    burst.extend_from_slice(&wire::encode_frame(&Request::Ping.to_bytes(), 7, 0).unwrap());
    raw.write_all(&burst).unwrap();

    let _ = raw.set_read_timeout(Some(Duration::from_millis(100)));
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut saw_dup_error = false;
    let mut saw_ingested = false;
    while !(saw_dup_error && saw_ingested) {
        let frame = wire::read_frame_cancellable(&mut raw, || Instant::now() >= deadline)
            .unwrap()
            .expect("duplicate-id exchange hung or dropped the connection");
        assert_eq!(frame.request_id, 7);
        match Response::from_bytes(&frame.payload).unwrap() {
            Response::Error { code, .. } => {
                assert_eq!(code, ERR_DUP_REQUEST);
                assert!(
                    !saw_ingested,
                    "duplicate must be flagged while the original is live"
                );
                saw_dup_error = true;
            }
            Response::Ingested(report) => {
                assert_eq!(report.n_samples, seed_product().points.len());
                saw_ingested = true;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }

    // Same connection, fresh id: still serving.
    raw.write_all(&wire::encode_frame(&Request::Ping.to_bytes(), 8, 0).unwrap())
        .unwrap();
    let frame = wire::read_frame_cancellable(&mut raw, || Instant::now() >= deadline)
        .unwrap()
        .expect("connection must stay usable after a duplicate id");
    assert_eq!(frame.request_id, 8);
    assert!(matches!(
        Response::from_bytes(&frame.payload).unwrap(),
        Response::Pong(_)
    ));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
