//! Acceptance tests for idempotent ingest and offline compaction:
//!
//! - re-ingesting under `IngestMode::Skip` leaves every tile file
//!   **byte-identical** (and the fast path touches nothing at all);
//! - re-ingesting perturbed products under `IngestMode::Replace`
//!   converges to the same queryable state as a fresh build, bit for
//!   bit;
//! - the identity compaction (same grid, monthly layers, no retention)
//!   answers `query_cells` / `stats` / the summary battery
//!   bit-identically to its source;
//! - a retention horizon drops segment detail while per-cell composites
//!   keep answering bit-identically;
//! - re-gridding and seasonal layer merges preserve totals;
//! - a v1 (pre-ledger) catalog still opens, queries, and upgrades.

use std::collections::BTreeMap;
use std::path::PathBuf;

use icesat_geo::{MapPoint, EPSG_3976};
use icesat_scene::SurfaceClass;
use seaice::artifact::{Artifact, Codec, Writer};
use seaice::freeboard::{FreeboardPoint, FreeboardProduct};
use seaice_catalog::{
    compact, Catalog, CompactionConfig, GridConfig, IngestMode, LayerMap, MapRect, TimeKey,
    TimeRange,
};

fn grid() -> GridConfig {
    GridConfig::new(MapPoint::new(-300_000.0, -1_300_000.0), 10_000.0, 2, 8).unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seaice_idem_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A synthetic beam product on a map-space line (see store.rs tests).
fn line_product(n: usize, x0: f64, y0: f64, dx: f64, dy: f64, fb0: f64) -> FreeboardProduct {
    let points = (0..n)
        .map(|i| {
            let m = MapPoint::new(x0 + i as f64 * dx, y0 + i as f64 * dy);
            let g = EPSG_3976.inverse(m);
            FreeboardPoint {
                along_track_m: i as f64 * 2.0,
                lat: g.lat,
                lon: g.lon,
                freeboard_m: fb0 + (i % 7) as f64 * 0.01,
                class: SurfaceClass::ALL[i % 3],
            }
        })
        .collect();
    FreeboardProduct {
        name: "idempotency line".into(),
        points,
    }
}

/// Ingests a small two-layer, three-source workload.
fn build(catalog: &Catalog) {
    for (granule, beam, x0, dy) in [
        ("20190915010203_05000210", 0usize, -304_000.0, 10.0),
        ("20190915010203_05000210", 1, -303_000.0, 14.0),
        ("20191104195311_05010210", 1, -302_000.0, 18.0),
    ] {
        let product = line_product(400, x0, -1_304_000.0, 19.0, dy, 0.2);
        catalog.ingest_beam(granule, beam, &product).unwrap();
    }
}

/// Encodes one sample in the 61-byte pre-thickness record layout (tile
/// formats v1/v2) — for hand-building legacy files.
fn encode_legacy_record(w: &mut Writer, s: &seaice_catalog::SampleRecord) {
    w.put_u64(s.source);
    w.put_f64(s.along_track_m);
    w.put_f64(s.lat);
    w.put_f64(s.lon);
    w.put_f64(s.x_m);
    w.put_f64(s.y_m);
    w.put_f64(s.freeboard_m);
    s.class.encode(w);
    w.put_u32(s.cell);
}

/// Every tile (and ledger) file in a catalog directory, bytes and all.
fn dir_bytes(dir: &std::path::Path) -> BTreeMap<PathBuf, Vec<u8>> {
    let mut out = BTreeMap::new();
    for sub in ["tiles", "ledgers"] {
        let sub = dir.join(sub);
        if !sub.is_dir() {
            continue;
        }
        for entry in std::fs::read_dir(&sub).unwrap() {
            let path = entry.unwrap().path();
            out.insert(path.clone(), std::fs::read(&path).unwrap());
        }
    }
    out
}

/// A deterministic query battery, flattened to comparable bits.
fn battery(catalog: &Catalog) -> Vec<u64> {
    let mut bits = Vec::new();
    let domain = catalog.grid().domain();
    let rects = [
        domain,
        MapRect::new(domain.min, MapPoint::new(-300_000.0, -1_300_000.0)),
        MapRect::new(
            MapPoint::new(-305_000.0, -1_305_000.0),
            MapPoint::new(-295_000.0, -1_295_000.0),
        ),
    ];
    let times = [
        TimeRange::all(),
        TimeRange::only(TimeKey::new(2019, 9).unwrap()),
        TimeRange::only(TimeKey::new(2019, 11).unwrap()),
    ];
    for rect in &rects {
        for time in times {
            let s = catalog.query_rect(rect, time).unwrap();
            s.check_consistency().unwrap();
            bits.extend([
                s.n_samples as u64,
                s.class_counts[0] as u64,
                s.class_counts[1] as u64,
                s.class_counts[2] as u64,
                s.n_ice as u64,
                s.mean_ice_freeboard_m.to_bits(),
                s.min_freeboard_m.to_bits(),
                s.max_freeboard_m.to_bits(),
                s.n_tiles as u64,
                s.n_cells as u64,
                s.n_thickness as u64,
                s.mean_thickness_m.to_bits(),
                s.ivw_mean_thickness_m.to_bits(),
                s.thickness_sigma_m.to_bits(),
            ]);
        }
    }
    for (tk, s) in catalog.query_time_range(TimeRange::all()).unwrap() {
        bits.extend([
            tk.year as u64,
            tk.month as u64,
            s.n_samples as u64,
            s.mean_ice_freeboard_m.to_bits(),
        ]);
    }
    bits.extend(cell_bits(catalog, TimeRange::all()));
    bits
}

/// `query_cells` over the whole domain, flattened to bits.
fn cell_bits(catalog: &Catalog, time: TimeRange) -> Vec<u64> {
    let mut bits = Vec::new();
    for c in catalog.query_cells(&catalog.grid().domain(), time).unwrap() {
        bits.extend([
            c.tile.level as u64,
            c.tile.x as u64,
            c.tile.y as u64,
            c.cell as u64,
            c.center.x.to_bits(),
            c.center.y.to_bits(),
            c.agg.n,
            c.agg.class_counts[0],
            c.agg.class_counts[1],
            c.agg.class_counts[2],
            c.agg.ice_n,
            c.agg.ice_sum_m.to_bits(),
            c.agg.min_freeboard_m.to_bits(),
            c.agg.max_freeboard_m.to_bits(),
            c.agg.t_n,
            c.agg.t_sum_m.to_bits(),
            c.agg.t_w_sum.to_bits(),
            c.agg.t_wt_sum.to_bits(),
            c.agg.t_p95_m.to_bits(),
        ]);
    }
    bits
}

#[test]
fn skip_reingest_is_a_byte_stable_noop() {
    let dir = temp_dir("skip");
    let catalog = Catalog::create(&dir, grid()).unwrap();
    build(&catalog);
    let stats = catalog.stats().unwrap();
    let before = dir_bytes(&dir);
    let battery_before = battery(&catalog);

    // Re-ingest the identical workload: every sample skips, no tile file
    // changes by a single byte.
    let product = line_product(400, -304_000.0, -1_304_000.0, 19.0, 10.0, 0.2);
    let report = catalog
        .ingest_beam("20190915010203_05000210", 0, &product)
        .unwrap();
    assert_eq!(report.n_samples, 0);
    assert_eq!(report.n_skipped, 400);
    assert_eq!(report.n_tiles, 0);
    assert_eq!(dir_bytes(&dir), before, "tile bytes moved on a Skip re-run");
    assert_eq!(catalog.stats().unwrap().n_samples, stats.n_samples);

    // Same through a cold reopen (the sidecar fast path survives).
    drop(catalog);
    let reopened = Catalog::open(&dir).unwrap();
    let report = reopened
        .ingest_beam("20190915010203_05000210", 0, &product)
        .unwrap();
    assert_eq!(report.n_skipped, 400);
    assert_eq!(dir_bytes(&dir), before);
    assert_eq!(battery(&reopened), battery_before);

    // A partial previous ingest heals: wipe the sidecar ledgers so the
    // fast path goes cold — the per-tile ledgers still skip everything.
    std::fs::remove_dir_all(dir.join("ledgers")).unwrap();
    let healed = Catalog::open(&dir).unwrap();
    let report = healed
        .ingest_beam("20190915010203_05000210", 0, &product)
        .unwrap();
    assert_eq!(report.n_samples, 0);
    assert_eq!(report.n_skipped, 400);
    assert_eq!(battery(&healed), battery_before);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replace_reingest_converges_to_fresh_build() {
    let dir = temp_dir("replace");
    let catalog = Catalog::create(&dir, grid()).unwrap();
    build(&catalog);

    // Perturb one source: shifted track (crosses different tiles) and
    // different freeboards.
    let perturbed = line_product(350, -299_000.0, -1_299_000.0, 23.0, 21.0, 0.31);
    let report = catalog
        .ingest_beam_with(
            "20190915010203_05000210",
            0,
            &perturbed,
            IngestMode::Replace,
        )
        .unwrap();
    assert_eq!(report.n_replaced, 400, "every prior sample was removed");
    assert_eq!(report.n_samples + report.n_out_of_domain, 350);

    // A fresh catalog built from the perturbed workload answers the
    // whole battery bit-identically.
    let fresh_dir = temp_dir("replace_fresh");
    let fresh = Catalog::create(&fresh_dir, grid()).unwrap();
    fresh
        .ingest_beam("20190915010203_05000210", 0, &perturbed)
        .unwrap();
    for (granule, beam, x0, dy) in [
        ("20190915010203_05000210", 1usize, -303_000.0, 14.0),
        ("20191104195311_05010210", 1, -302_000.0, 18.0),
    ] {
        let product = line_product(400, x0, -1_304_000.0, 19.0, dy, 0.2);
        fresh.ingest_beam(granule, beam, &product).unwrap();
    }
    assert_eq!(battery(&catalog), battery(&fresh));
    assert_eq!(
        catalog.stats().unwrap().n_samples,
        fresh.stats().unwrap().n_samples
    );
    catalog.validate().unwrap();

    // Replacing with the identical product is also stable (idempotent
    // under convergence, not bytes — versions move).
    let again = catalog
        .ingest_beam_with(
            "20190915010203_05000210",
            0,
            &perturbed,
            IngestMode::Replace,
        )
        .unwrap();
    assert_eq!(again.n_replaced, again.n_samples);
    assert_eq!(battery(&catalog), battery(&fresh));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&fresh_dir);
}

#[test]
fn identity_compaction_is_bit_identical() {
    let src_dir = temp_dir("compact_src");
    let src = Catalog::create(&src_dir, grid()).unwrap();
    build(&src);
    let battery_src = battery(&src);
    let stats_src = src.stats().unwrap();

    let dst_dir = temp_dir("compact_dst");
    let report = compact(&src_dir, &dst_dir, &CompactionConfig::rewrite(grid())).unwrap();
    assert_eq!(report.n_samples_in, stats_src.n_samples);
    assert_eq!(report.n_samples_out, stats_src.n_samples);
    assert_eq!(report.n_retired, 0);
    assert_eq!(report.n_out_of_domain, 0);
    assert_eq!(report.n_target_tiles, stats_src.n_tiles);
    assert_eq!(report.n_layers_out, stats_src.n_layers);

    let dst = Catalog::open(&dst_dir).unwrap();
    let stats_dst = dst.stats().unwrap();
    assert_eq!(stats_dst.n_samples, stats_src.n_samples);
    assert_eq!(stats_dst.n_tiles, stats_src.n_tiles);
    assert_eq!(stats_dst.n_layers, stats_src.n_layers);
    assert_eq!(battery(&dst), battery_src, "identity compaction moved bits");
    dst.validate().unwrap();

    // The compacted catalog still skips completed sources (sidecars
    // carried over).
    let product = line_product(400, -304_000.0, -1_304_000.0, 19.0, 10.0, 0.2);
    let r = dst
        .ingest_beam("20190915010203_05000210", 0, &product)
        .unwrap();
    assert_eq!(r.n_skipped, 400);

    // Compacting into a non-empty destination is refused.
    assert!(compact(&src_dir, &dst_dir, &CompactionConfig::rewrite(grid())).is_err());
    let _ = std::fs::remove_dir_all(&src_dir);
    let _ = std::fs::remove_dir_all(&dst_dir);
}

#[test]
fn regrid_and_seasonal_merge_preserve_totals() {
    let src_dir = temp_dir("regrid_src");
    let src = Catalog::create(&src_dir, grid()).unwrap();
    build(&src);
    let stats_src = src.stats().unwrap();
    let whole_src = src
        .query_rect(&src.grid().domain(), TimeRange::all())
        .unwrap();

    // Finer grid over the same domain, monthly layers folded into
    // seasons (Sep and Nov 2019 both belong to distinct seasons: Sep →
    // Sep, Nov → Sep as well — both are in Sep–Nov).
    let finer = GridConfig::new(MapPoint::new(-300_000.0, -1_300_000.0), 10_000.0, 3, 8).unwrap();
    let dst_dir = temp_dir("regrid_dst");
    let cfg = CompactionConfig {
        grid: finer,
        layers: LayerMap::Seasonal,
        ..CompactionConfig::rewrite(finer)
    };
    let report = compact(&src_dir, &dst_dir, &cfg).unwrap();
    assert_eq!(report.n_out_of_domain, 0, "same domain, nothing falls out");
    assert_eq!(report.n_samples_out, stats_src.n_samples);

    let dst = Catalog::open(&dst_dir).unwrap();
    assert_eq!(dst.stats().unwrap().n_samples, stats_src.n_samples);
    assert_eq!(
        dst.layers(),
        vec![TimeKey::new(2019, 9).unwrap()],
        "Sep + Nov 2019 fold into the Sep–Nov season"
    );
    let whole_dst = dst
        .query_rect(&dst.grid().domain(), TimeRange::all())
        .unwrap();
    // Sample-exact counts survive re-binning; tile/cell granularity and
    // float fold order legitimately change with the grid.
    assert_eq!(whole_dst.n_samples, whole_src.n_samples);
    assert_eq!(whole_dst.class_counts, whole_src.class_counts);
    assert_eq!(whole_dst.n_ice, whole_src.n_ice);
    assert!((whole_dst.mean_ice_freeboard_m - whole_src.mean_ice_freeboard_m).abs() < 1e-12);
    assert_eq!(
        whole_dst.min_freeboard_m.to_bits(),
        whole_src.min_freeboard_m.to_bits()
    );
    assert_eq!(
        whole_dst.max_freeboard_m.to_bits(),
        whole_src.max_freeboard_m.to_bits()
    );
    let total: u64 = dst
        .query_cells(&dst.grid().domain(), TimeRange::all())
        .unwrap()
        .iter()
        .map(|c| c.agg.n)
        .sum();
    assert_eq!(total, stats_src.n_samples as u64);
    dst.validate().unwrap();
    let _ = std::fs::remove_dir_all(&src_dir);
    let _ = std::fs::remove_dir_all(&dst_dir);
}

#[test]
fn retention_drops_samples_but_preserves_composites() {
    let src_dir = temp_dir("retain_src");
    let src = Catalog::create(&src_dir, grid()).unwrap();
    build(&src);
    let stats_src = src.stats().unwrap();
    let cells_src = cell_bits(&src, TimeRange::all());
    let sept = TimeRange::only(TimeKey::new(2019, 9).unwrap());
    let sept_samples = src
        .query_rect(&src.grid().domain(), sept)
        .unwrap()
        .n_samples;
    assert!(sept_samples > 0);

    // Retire everything before November 2019.
    let dst_dir = temp_dir("retain_dst");
    let cfg = CompactionConfig {
        retention: Some(TimeKey::new(2019, 11).unwrap()),
        ..CompactionConfig::rewrite(grid())
    };
    let report = compact(&src_dir, &dst_dir, &cfg).unwrap();
    assert_eq!(report.n_retired, sept_samples);
    assert_eq!(
        report.n_samples_out,
        stats_src.n_samples - sept_samples,
        "only the November layer keeps segment detail"
    );

    let dst = Catalog::open(&dst_dir).unwrap();
    // Segment-level queries see only the retained layer…
    assert_eq!(
        dst.query_rect(&dst.grid().domain(), sept)
            .unwrap()
            .n_samples,
        0
    );
    assert_eq!(
        dst.stats().unwrap().n_samples,
        stats_src.n_samples - sept_samples
    );
    // …but the gridded composites are bit-identical to the source.
    assert_eq!(cell_bits(&dst, TimeRange::all()), cells_src);
    assert_eq!(cell_bits(&dst, sept), cell_bits(&src, sept));
    dst.validate().unwrap();

    // Re-ingesting a retired source still skips (its ledger survived)…
    let product = line_product(400, -304_000.0, -1_304_000.0, 19.0, 10.0, 0.2);
    let r = dst
        .ingest_beam("20190915010203_05000210", 0, &product)
        .unwrap();
    assert_eq!(r.n_skipped, 400);
    // …and Replacing it is refused with the typed error: its samples
    // live only in the frozen base, so removal is impossible and a
    // re-merge would double-count.
    match dst.ingest_beam_with("20190915010203_05000210", 0, &product, IngestMode::Replace) {
        Err(seaice_catalog::CatalogError::ArchivedSource { source }) => {
            assert_eq!(
                source,
                seaice_catalog::SampleRecord::source_id("20190915010203_05000210", 0)
            );
        }
        other => panic!("expected ArchivedSource, got {other:?}"),
    }
    // The retained (November) layer still accepts Replace normally.
    let nov = line_product(200, -302_000.0, -1_304_000.0, 19.0, 18.0, 0.25);
    dst.ingest_beam_with("20191104195311_05010210", 1, &nov, IngestMode::Replace)
        .unwrap();
    dst.validate().unwrap();
    let _ = std::fs::remove_dir_all(&src_dir);
    let _ = std::fs::remove_dir_all(&dst_dir);
}

/// Sidecar ledgers are a cache: a truncated or corrupt one must not
/// fail the open — the per-tile ledgers still skip everything, and the
/// next completed ingest rewrites the sidecar.
#[test]
fn corrupt_sidecar_ledger_is_ignored_not_fatal() {
    let dir = temp_dir("corrupt_sidecar");
    let catalog = Catalog::create(&dir, grid()).unwrap();
    build(&catalog);
    let battery_before = battery(&catalog);
    drop(catalog);

    let ledger_path = dir.join("ledgers").join("201909.ledger");
    let bytes = std::fs::read(&ledger_path).unwrap();
    std::fs::write(&ledger_path, &bytes[..bytes.len() / 2]).unwrap();

    let reopened = Catalog::open(&dir).unwrap();
    assert_eq!(battery(&reopened), battery_before);
    // The fast path is cold for that layer, but per-tile ledgers still
    // make the re-run a no-op…
    let product = line_product(400, -304_000.0, -1_304_000.0, 19.0, 10.0, 0.2);
    let r = reopened
        .ingest_beam("20190915010203_05000210", 0, &product)
        .unwrap();
    assert_eq!(r.n_samples, 0);
    assert_eq!(r.n_skipped, 400);
    // …and the completed ingest rewrote a valid sidecar.
    drop(reopened);
    let healed = Catalog::open(&dir).unwrap();
    assert!(healed
        .layer_ledger(TimeKey::new(2019, 9).unwrap())
        .contains(&seaice_catalog::SampleRecord::source_id(
            "20190915010203_05000210",
            0
        )));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A synthetic thickness-enriched beam on a map-space line, mirroring
/// what [`seaice_products::enrich_fleet`] emits: ice samples carry
/// `(thickness, sigma > 0)`, open water carries zeros.
fn line_thickness(
    granule_id: &str,
    beam: icesat_atl03::Beam,
    n: usize,
    x0: f64,
    y0: f64,
    dx: f64,
    dy: f64,
) -> seaice_products::BeamThickness {
    let points = (0..n)
        .map(|i| {
            let m = MapPoint::new(x0 + i as f64 * dx, y0 + i as f64 * dy);
            let g = EPSG_3976.inverse(m);
            let class = SurfaceClass::ALL[i % 3];
            let water = class == SurfaceClass::OpenWater;
            seaice_products::ProductPoint {
                along_track_m: i as f64 * 2.0,
                lat: g.lat,
                lon: g.lon,
                freeboard_m: 0.2 + (i % 7) as f64 * 0.01,
                class,
                snow_depth_m: if water { 0.0 } else { 0.08 },
                snow_sigma_m: if water { 0.0 } else { 0.03 },
                thickness_m: if water {
                    0.0
                } else {
                    1.5 + (i % 5) as f64 * 0.1
                },
                thickness_sigma_m: if water {
                    0.0
                } else {
                    0.25 + (i % 4) as f64 * 0.05
                },
            }
        })
        .collect();
    seaice_products::BeamThickness {
        granule_id: granule_id.to_string(),
        beam,
        snow_model: "climatology".into(),
        points,
    }
}

/// Thickness-bearing samples ride the whole idempotency + compaction
/// battery: Skip re-ingest is byte-stable, identity compaction and a
/// retention horizon preserve the thickness aggregates bit-identically.
#[test]
fn thickness_ingest_idempotent_and_compaction_preserves_aggregates() {
    let src_dir = temp_dir("thick_src");
    let src = Catalog::create(&src_dir, grid()).unwrap();
    build(&src);
    let enriched = line_thickness(
        "20190915010203_05000210",
        icesat_atl03::Beam::Gt2l,
        300,
        -303_500.0,
        -1_304_000.0,
        21.0,
        12.0,
    );
    let report = src.ingest_thickness_beam(&enriched).unwrap();
    assert!(report.n_samples > 0);
    let stats = src.stats().unwrap();
    assert!(stats.n_thickness > 0, "bearing samples are counted");
    let whole = src
        .query_rect(&src.grid().domain(), TimeRange::all())
        .unwrap();
    whole.check_consistency().unwrap();
    assert_eq!(whole.n_thickness, stats.n_thickness);
    assert!(whole.ivw_mean_thickness_m > 0.0 && whole.thickness_sigma_m > 0.0);

    // Skip re-ingest of the enriched beam: byte-stable no-op.
    let before = dir_bytes(&src_dir);
    let battery_src = battery(&src);
    let again = src.ingest_thickness_beam(&enriched).unwrap();
    assert_eq!(again.n_samples, 0);
    assert_eq!(again.n_skipped, 300);
    assert_eq!(dir_bytes(&src_dir), before);

    // Identity compaction preserves every thickness aggregate bit.
    let dst_dir = temp_dir("thick_dst");
    compact(&src_dir, &dst_dir, &CompactionConfig::rewrite(grid())).unwrap();
    let dst = Catalog::open(&dst_dir).unwrap();
    assert_eq!(battery(&dst), battery_src);
    assert_eq!(dst.stats().unwrap().n_thickness, stats.n_thickness);
    dst.validate().unwrap();

    // Retention: segment detail goes, per-cell thickness composites
    // (sums, IVW accumulators, p95 envelope) answer bit-identically.
    let cells_src = cell_bits(&src, TimeRange::all());
    let retained_dir = temp_dir("thick_retained");
    let cfg = CompactionConfig {
        retention: Some(TimeKey::new(2019, 12).unwrap()),
        ..CompactionConfig::rewrite(grid())
    };
    compact(&src_dir, &retained_dir, &cfg).unwrap();
    let retained = Catalog::open(&retained_dir).unwrap();
    assert_eq!(retained.stats().unwrap().n_samples, 0);
    assert_eq!(cell_bits(&retained, TimeRange::all()), cells_src);
    retained.validate().unwrap();
    let _ = std::fs::remove_dir_all(&src_dir);
    let _ = std::fs::remove_dir_all(&dst_dir);
    let _ = std::fs::remove_dir_all(&retained_dir);
}

/// A catalog written entirely in the v1 (pre-ledger) format — v1
/// manifest, v1 tiles, no sidecar ledgers — opens, queries, and then
/// upgrades in place as new ingests land.
#[test]
fn v1_store_opens_queries_and_upgrades() {
    let dir = temp_dir("v1_store");

    // Build a modern catalog, then rewrite every file in v1 framing.
    let catalog = Catalog::create(&dir, grid()).unwrap();
    build(&catalog);
    let battery_before = battery(&catalog);
    let stats_before = catalog.stats().unwrap();
    drop(catalog);

    // Manifest → v1 bytes (same body, version 1).
    let manifest_path = dir.join("catalog.manifest");
    let mut w = Writer::new();
    w.put_slice(b"SICM");
    w.put_u16(1);
    grid().encode(&mut w);
    std::fs::write(&manifest_path, w.finish()).unwrap();

    // Tiles → v1 bytes (id, time, version, 61-byte samples; no ledger,
    // no base, no thickness).
    for entry in std::fs::read_dir(dir.join("tiles")).unwrap() {
        let path = entry.unwrap().path();
        let tile = seaice_catalog::Tile::load(&path).unwrap();
        let mut w = Writer::new();
        w.put_slice(b"SIT1");
        w.put_u16(1);
        tile.id.encode(&mut w);
        tile.time.encode(&mut w);
        w.put_u64(tile.version);
        w.put_u64(tile.samples().len() as u64);
        for s in tile.samples() {
            encode_legacy_record(&mut w, s);
        }
        std::fs::write(&path, w.finish()).unwrap();
    }
    // Drop the sidecars — v1 stores never had them.
    let _ = std::fs::remove_dir_all(dir.join("ledgers"));

    let v1 = Catalog::open(&dir).unwrap();
    assert_eq!(battery(&v1), battery_before, "v1 store answers unchanged");
    assert_eq!(v1.stats().unwrap().n_samples, stats_before.n_samples);
    v1.validate().unwrap();

    // Re-ingesting a source the v1 tiles hold skips via their
    // reconstructed per-tile ledgers (no sidecar fast path).
    let product = line_product(400, -304_000.0, -1_304_000.0, 19.0, 10.0, 0.2);
    let r = v1
        .ingest_beam("20190915010203_05000210", 0, &product)
        .unwrap();
    assert_eq!(r.n_samples, 0);
    assert_eq!(r.n_skipped, 400);

    // A new ingest upgrades its tiles to v2 on persist.
    let fresh = line_product(120, -301_000.0, -1_301_000.0, 10.0, 5.0, 0.4);
    v1.ingest_beam("20191104195311_05990210", 2, &fresh)
        .unwrap();
    v1.validate().unwrap();
    assert_eq!(v1.stats().unwrap().n_samples, stats_before.n_samples + 120);
    // And the identity compaction of the upgraded store still holds.
    let dst_dir = temp_dir("v1_compacted");
    compact(&dir, &dst_dir, &CompactionConfig::rewrite(grid())).unwrap();
    let dst = Catalog::open(&dst_dir).unwrap();
    assert_eq!(battery(&dst), battery(&v1));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dst_dir);
}
