//! Hydrostatic thickness retrieval with first-order uncertainty
//! propagation.
//!
//! The conversion is the same hydrostatic balance as
//! [`seaice::thickness`]:
//!
//! ```text
//! T = (ρw·hf + (ρs − ρw)·s) / (ρw − ρi),      D ≔ ρw − ρi
//! ```
//!
//! with total freeboard `hf`, snow depth `s`, and densities ρw/ρi/ρs.
//! What this module adds is the sensitivity analysis (Djepa,
//! *Sensitivity, uncertainty analyses and algorithm selection for Sea
//! Ice Thickness retrieval*): the first-order partials
//!
//! ```text
//! ∂T/∂hf = ρw/D          ∂T/∂s  = (ρs − ρw)/D     ∂T/∂ρs = s/D
//! ∂T/∂ρi = T/D           ∂T/∂ρw = (hf − s − T)/D
//! ```
//!
//! combine the five input variances into `σ_T² = Σ (∂T/∂x)²·σ_x²`,
//! reported per-term as a [`VarianceBudget`] so a consumer can see
//! *which* input dominates (on snow-loaded Antarctic ice it is almost
//! always the snow depth).

use seaice::thickness::Densities;

use crate::ProductError;

/// 1-σ uncertainties of the three densities, kg/m³.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensitySigmas {
    /// Sea water density σ.
    pub water: f64,
    /// Sea ice density σ.
    pub ice: f64,
    /// Snow density σ.
    pub snow: f64,
}

impl Default for DensitySigmas {
    /// The spreads Djepa's sensitivity study sweeps: water ±0.5, ice
    /// ±10, snow ±50 kg/m³.
    fn default() -> Self {
        DensitySigmas {
            water: 0.5,
            ice: 10.0,
            snow: 50.0,
        }
    }
}

/// Per-term variance budget of one thickness estimate, m². The five
/// terms sum to `sigma_m²` of the owning [`ThicknessEstimate`] exactly
/// (same floating-point order as the retrieval computes them in).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VarianceBudget {
    /// `(∂T/∂hf · σ_hf)²` — freeboard noise.
    pub freeboard: f64,
    /// `(∂T/∂s · σ_s)²` — snow-depth uncertainty.
    pub snow: f64,
    /// `(∂T/∂ρw · σ_ρw)²` — water density.
    pub rho_water: f64,
    /// `(∂T/∂ρi · σ_ρi)²` — ice density.
    pub rho_ice: f64,
    /// `(∂T/∂ρs · σ_ρs)²` — snow density.
    pub rho_snow: f64,
}

impl VarianceBudget {
    /// Total variance, m² — the sum of the five terms in declaration
    /// order.
    pub fn total(&self) -> f64 {
        self.freeboard + self.snow + self.rho_water + self.rho_ice + self.rho_snow
    }

    /// The dominating term's name (ties break in declaration order).
    pub fn dominant(&self) -> &'static str {
        let terms = [
            ("freeboard", self.freeboard),
            ("snow", self.snow),
            ("rho_water", self.rho_water),
            ("rho_ice", self.rho_ice),
            ("rho_snow", self.rho_snow),
        ];
        terms
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|t| t.0)
            .unwrap_or("freeboard")
    }
}

/// One retrieved thickness sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThicknessEstimate {
    /// Ice thickness, metres (clamped to ≥ 0).
    pub thickness_m: f64,
    /// 1-σ thickness uncertainty, metres — `budget.total().sqrt()`,
    /// always > 0 for a valid retrieval configuration.
    pub sigma_m: f64,
    /// The per-term variance decomposition behind `sigma_m`.
    pub budget: VarianceBudget,
}

/// The hydrostatic freeboard→thickness conversion with its uncertainty
/// model. One configured retrieval is applied unchanged across a whole
/// product so every sample shares the same densities and noise floors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThicknessRetrieval {
    /// Densities of the hydrostatic balance.
    pub densities: Densities,
    /// 1-σ uncertainties of those densities.
    pub density_sigmas: DensitySigmas,
    /// Per-sample freeboard noise σ, metres. Must be > 0: it is the
    /// floor that keeps every retrieved `sigma_m` positive, which is
    /// what marks a stored sample as thickness-bearing downstream.
    pub freeboard_sigma_m: f64,
}

impl Default for ThicknessRetrieval {
    /// Default densities (1024/915/320), Djepa-style density spreads,
    /// and a 2 cm freeboard noise floor (the paper's 2 m segments carry
    /// centimetre-level σ).
    fn default() -> Self {
        ThicknessRetrieval {
            densities: Densities::default(),
            density_sigmas: DensitySigmas::default(),
            freeboard_sigma_m: 0.02,
        }
    }
}

impl ThicknessRetrieval {
    /// Validates the configuration: ice must float, and every σ must be
    /// finite with `freeboard_sigma_m > 0`.
    pub fn validate(&self) -> Result<(), ProductError> {
        let rho = &self.densities;
        if !(rho.water.is_finite() && rho.ice.is_finite() && rho.snow.is_finite()) {
            return Err(ProductError::Unphysical("non-finite density"));
        }
        if rho.water <= rho.ice {
            return Err(ProductError::Unphysical("ice must float (rho_w > rho_i)"));
        }
        let s = &self.density_sigmas;
        if !(s.water.is_finite() && s.ice.is_finite() && s.snow.is_finite())
            || s.water < 0.0
            || s.ice < 0.0
            || s.snow < 0.0
        {
            return Err(ProductError::Unphysical("bad density sigma"));
        }
        if !self.freeboard_sigma_m.is_finite() || self.freeboard_sigma_m <= 0.0 {
            return Err(ProductError::Unphysical("freeboard sigma must be > 0"));
        }
        Ok(())
    }

    /// Retrieves `(thickness, sigma)` for one sample: total freeboard
    /// `freeboard_m`, snow depth `snow_depth_m` with uncertainty
    /// `snow_sigma_m` (all metres). Negative freeboard clamps to 0 and
    /// the snow depth clamps into `[0, freeboard]` (snow cannot outweigh
    /// the column it rides on), matching
    /// [`seaice::thickness::thickness_from_freeboard`]; the partials are
    /// evaluated at the clamped operating point.
    ///
    /// Non-finite inputs are rejected with
    /// [`ProductError::NonFinite`] — this is the boundary that keeps
    /// NaN out of catalog aggregates.
    pub fn retrieve(
        &self,
        freeboard_m: f64,
        snow_depth_m: f64,
        snow_sigma_m: f64,
    ) -> Result<ThicknessEstimate, ProductError> {
        self.validate()?;
        crate::finite(freeboard_m, "freeboard", 0)?;
        crate::finite(snow_depth_m, "snow depth", 0)?;
        crate::finite(snow_sigma_m, "snow sigma", 0)?;

        let rho = self.densities;
        let d = rho.water - rho.ice;
        let hf = freeboard_m.max(0.0);
        let s = snow_depth_m.clamp(0.0, hf);
        let t = ((rho.water * hf + (rho.snow - rho.water) * s) / d).max(0.0);

        let sq = |x: f64| x * x;
        let budget = VarianceBudget {
            freeboard: sq(rho.water / d * self.freeboard_sigma_m),
            snow: sq((rho.snow - rho.water) / d * snow_sigma_m.max(0.0)),
            rho_water: sq((hf - s - t) / d * self.density_sigmas.water),
            rho_ice: sq(t / d * self.density_sigmas.ice),
            rho_snow: sq(s / d * self.density_sigmas.snow),
        };
        Ok(ThicknessEstimate {
            thickness_m: t,
            sigma_m: budget.total().sqrt(),
            budget,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seaice::thickness::{thickness_from_freeboard, SnowModel};

    #[test]
    fn matches_core_hydrostatic_conversion() {
        let r = ThicknessRetrieval::default();
        // No snow: the estimate equals the core SnowModel::None path.
        let e = r.retrieve(0.3, 0.0, 0.0).unwrap();
        let core = thickness_from_freeboard(0.3, SnowModel::None, r.densities);
        assert_eq!(e.thickness_m.to_bits(), core.to_bits());
        // Full-snow: equals the zero-ice-freeboard path.
        let e = r.retrieve(0.3, 0.3, 0.02).unwrap();
        let core = thickness_from_freeboard(0.3, SnowModel::ZeroIceFreeboard, r.densities);
        assert_eq!(e.thickness_m.to_bits(), core.to_bits());
    }

    #[test]
    fn budget_terms_sum_to_sigma_squared() {
        let r = ThicknessRetrieval::default();
        let e = r.retrieve(0.42, 0.18, 0.05).unwrap();
        assert_eq!(e.sigma_m.to_bits(), e.budget.total().sqrt().to_bits());
        assert!(e.sigma_m > 0.0);
        for term in [
            e.budget.freeboard,
            e.budget.snow,
            e.budget.rho_water,
            e.budget.rho_ice,
            e.budget.rho_snow,
        ] {
            assert!(term >= 0.0 && term.is_finite());
        }
    }

    /// The hand-derived partials: against central finite differences of
    /// the forward model (interior operating point, away from clamps).
    #[test]
    fn partials_match_finite_differences() {
        let r = ThicknessRetrieval {
            freeboard_sigma_m: 1.0, // unit σ ⇒ budget term = partial²
            density_sigmas: DensitySigmas {
                water: 1.0,
                ice: 1.0,
                snow: 1.0,
            },
            ..ThicknessRetrieval::default()
        };
        let (hf, s) = (0.5, 0.2);
        let forward = |hf: f64, s: f64, rho: Densities| {
            (rho.water * hf + (rho.snow - rho.water) * s) / (rho.water - rho.ice)
        };
        let rho = r.densities;
        let h = 1e-6;
        let e = r.retrieve(hf, s, 1.0).unwrap();
        let checks = [
            (
                e.budget.freeboard,
                (forward(hf + h, s, rho) - forward(hf - h, s, rho)) / (2.0 * h),
            ),
            (
                e.budget.snow,
                (forward(hf, s + h, rho) - forward(hf, s - h, rho)) / (2.0 * h),
            ),
            (e.budget.rho_water, {
                let mut hi = rho;
                hi.water += h;
                let mut lo = rho;
                lo.water -= h;
                (forward(hf, s, hi) - forward(hf, s, lo)) / (2.0 * h)
            }),
            (e.budget.rho_ice, {
                let mut hi = rho;
                hi.ice += h;
                let mut lo = rho;
                lo.ice -= h;
                (forward(hf, s, hi) - forward(hf, s, lo)) / (2.0 * h)
            }),
            (e.budget.rho_snow, {
                let mut hi = rho;
                hi.snow += h;
                let mut lo = rho;
                lo.snow -= h;
                (forward(hf, s, hi) - forward(hf, s, lo)) / (2.0 * h)
            }),
        ];
        for (i, (term, fd)) in checks.iter().enumerate() {
            assert!(
                (term.sqrt() - fd.abs()).abs() < 1e-4,
                "partial {i}: analytic {} vs fd {}",
                term.sqrt(),
                fd.abs()
            );
        }
    }

    #[test]
    fn snow_dominates_on_snow_loaded_ice() {
        let r = ThicknessRetrieval::default();
        let e = r.retrieve(0.4, 0.25, 0.08).unwrap();
        assert_eq!(e.budget.dominant(), "snow");
    }

    #[test]
    fn clamps_match_core_semantics() {
        let r = ThicknessRetrieval::default();
        // Negative freeboard → zero thickness, but σ still > 0.
        let e = r.retrieve(-0.2, 0.1, 0.02).unwrap();
        assert_eq!(e.thickness_m, 0.0);
        assert!(e.sigma_m > 0.0);
        // Snow clamps to the freeboard.
        let a = r.retrieve(0.3, 5.0, 0.02).unwrap();
        let b = r.retrieve(0.3, 0.3, 0.02).unwrap();
        assert_eq!(a.thickness_m.to_bits(), b.thickness_m.to_bits());
    }

    #[test]
    fn non_finite_inputs_are_typed_errors() {
        let r = ThicknessRetrieval::default();
        assert_eq!(
            r.retrieve(f64::NAN, 0.1, 0.02),
            Err(ProductError::NonFinite {
                what: "freeboard",
                index: 0
            })
        );
        assert_eq!(
            r.retrieve(0.3, f64::INFINITY, 0.02),
            Err(ProductError::NonFinite {
                what: "snow depth",
                index: 0
            })
        );
        assert!(r.retrieve(0.3, 0.1, f64::NAN).is_err());
    }

    #[test]
    fn unphysical_configs_are_rejected() {
        let mut r = ThicknessRetrieval::default();
        r.densities.water = 900.0;
        assert_eq!(
            r.retrieve(0.3, 0.1, 0.02),
            Err(ProductError::Unphysical("ice must float (rho_w > rho_i)"))
        );
        let r = ThicknessRetrieval {
            freeboard_sigma_m: 0.0,
            ..Default::default()
        };
        assert!(matches!(
            r.retrieve(0.3, 0.1, 0.02),
            Err(ProductError::Unphysical(_))
        ));
    }
}
