//! `seaice-products` — the thickness / snow / uncertainty product family.
//!
//! The paper's pipeline stops at freeboard; its conclusion points at
//! "polar-wide scale freeboard and even thickness products". This crate
//! is that step: it turns per-beam freeboard products into per-sample
//! `(thickness, sigma)` estimates by combining
//!
//! - a pluggable [`SnowDepthModel`] (a latitude/season
//!   [`ClimatologySnow`], and a downscaled-reanalysis-style
//!   [`ReanalysisSnow`] parameterised by a gridded [`SnowPrior`], after
//!   Liu et al.'s ERA5-downscaling-with-ICESat-2 approach) with
//! - a hydrostatic [`ThicknessRetrieval`] that propagates first-order
//!   uncertainty through the freeboard→thickness conversion (partial
//!   derivatives of the hydrostatic equation over snow depth, the three
//!   densities, and freeboard noise — the Djepa-style sensitivity
//!   analysis, exposed per-term as a [`VarianceBudget`]).
//!
//! The results are packaged two ways:
//!
//! - [`ProductSet`] — a versioned stage artifact (`SIC5`) extending
//!   [`seaice::stages::SeaIceProducts`] with thickness-bearing
//!   [`ProductPoint`]s, for the staged pipeline; and
//! - [`BeamThickness`] via [`enrich_fleet`] — the per-beam form a fleet
//!   run hands to `seaice-catalog` for ingest into a tiled store.
//!
//! Every public entry point validates its numeric boundary: non-finite
//! freeboard or snow depth is rejected with a typed
//! [`ProductError::NonFinite`] instead of poisoning downstream per-cell
//! aggregates.

#![warn(missing_docs)]

mod retrieval;
mod set;
mod snow;

pub use retrieval::{DensitySigmas, ThicknessEstimate, ThicknessRetrieval, VarianceBudget};
pub use set::{enrich_fleet, BeamThickness, ProductPoint, ProductSet};
pub use snow::{ClimatologySnow, ReanalysisSnow, SnowDepthModel, SnowPrior};

/// Errors from the product-family boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum ProductError {
    /// A numeric input (freeboard, coordinate, or snow depth) was NaN or
    /// infinite. Carries which quantity and the sample index (0 for
    /// scalar entry points).
    NonFinite {
        /// Which quantity was non-finite.
        what: &'static str,
        /// Index of the offending sample in its product.
        index: usize,
    },
    /// A granule id did not start with a parseable `YYYYMM` prefix.
    BadGranule(String),
    /// A retrieval configuration violated physics (e.g. ice denser than
    /// water, or a non-positive freeboard noise).
    Unphysical(&'static str),
}

impl std::fmt::Display for ProductError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProductError::NonFinite { what, index } => {
                write!(f, "non-finite {what} at sample {index}")
            }
            ProductError::BadGranule(id) => write!(f, "granule id without YYYYMM prefix: {id:?}"),
            ProductError::Unphysical(what) => write!(f, "unphysical retrieval config: {what}"),
        }
    }
}

impl std::error::Error for ProductError {}

pub(crate) fn finite(v: f64, what: &'static str, index: usize) -> Result<f64, ProductError> {
    if v.is_finite() {
        Ok(v)
    } else {
        Err(ProductError::NonFinite { what, index })
    }
}
