//! Snow-depth models: the un-observable half of the hydrostatic
//! equation.
//!
//! ICESat-2 measures *total* (snow-surface) freeboard; the snow depth
//! riding on the ice must come from elsewhere. The two standard sources
//! are a climatology (coarse, season/latitude-driven) and a reanalysis
//! downscaled with the altimetry itself (Liu et al., *Retrieving snow
//! depth distribution by downscaling ERA5 Reanalysis with ICESat-2 laser
//! altimetry*). Both are deterministic pure functions here — a model is
//! queried per sample and must give the same answer for the same inputs,
//! because catalog equivalence tests compare served answers bit-for-bit.

/// A snow-depth estimate source.
///
/// Implementations must be deterministic pure functions of the
/// arguments: the catalog's served-equivalence battery re-derives
/// products and compares `f64::to_bits`.
pub trait SnowDepthModel {
    /// Short model name recorded in [`crate::ProductSet`] provenance.
    fn name(&self) -> &str;

    /// Snow depth and its 1-σ uncertainty, metres, for a sample at
    /// (`lat`, `lon`) degrees in calendar `month` (1–12) with measured
    /// total freeboard `freeboard_m`. Callers clamp the returned depth
    /// into `[0, freeboard]` before retrieval; models need not.
    fn snow_depth(&self, lat: f64, lon: f64, month: u8, freeboard_m: f64) -> (f64, f64);
}

/// Southern-hemisphere seasonal accumulation factor in `[0, 1]`:
/// cosine-peaked in October (late austral winter, deepest pack) and
/// smallest in April.
fn austral_season(month: u8) -> f64 {
    let phase = (f64::from(month) - 10.0) / 12.0 * std::f64::consts::TAU;
    0.65 + 0.35 * phase.cos()
}

/// Latitude/season climatology: snow deepens toward the pole and toward
/// late austral winter. The closed form is
///
/// ```text
/// depth(lat, month) = max_depth · clamp((−lat − 60)/30, 0, 1)
///                               · (0.65 + 0.35·cos(2π(month − 10)/12))
/// ```
///
/// independent of the freeboard (that is what makes it a climatology).
/// The 1-σ uncertainty is `rel_sigma · depth`, floored at `min_sigma_m`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClimatologySnow {
    /// Peak (polar, late-winter) snow depth, metres.
    pub max_depth_m: f64,
    /// Relative 1-σ uncertainty of the climatological depth.
    pub rel_sigma: f64,
    /// Floor on the absolute 1-σ, metres.
    pub min_sigma_m: f64,
}

impl ClimatologySnow {
    /// The Antarctic defaults used by the experiments: 0.35 m peak
    /// depth, 30 % relative uncertainty, 0.02 m floor.
    pub fn antarctic() -> Self {
        ClimatologySnow {
            max_depth_m: 0.35,
            rel_sigma: 0.30,
            min_sigma_m: 0.02,
        }
    }
}

impl SnowDepthModel for ClimatologySnow {
    fn name(&self) -> &str {
        "climatology"
    }

    fn snow_depth(&self, lat: f64, _lon: f64, month: u8, _freeboard_m: f64) -> (f64, f64) {
        let lat_factor = ((-lat - 60.0) / 30.0).clamp(0.0, 1.0);
        let depth = self.max_depth_m * lat_factor * austral_season(month);
        (depth, (depth * self.rel_sigma).max(self.min_sigma_m))
    }
}

/// A coarse gridded snow-depth prior (the "reanalysis" field): regular
/// lat/lon grid, row-major `[ilat · nlon + ilon]`, bilinearly
/// interpolated with edge clamping.
#[derive(Debug, Clone, PartialEq)]
pub struct SnowPrior {
    /// Latitude of grid row 0, degrees.
    pub lat0: f64,
    /// Longitude of grid column 0, degrees.
    pub lon0: f64,
    /// Latitude step, degrees (may be negative for south-up grids).
    pub dlat: f64,
    /// Longitude step, degrees.
    pub dlon: f64,
    /// Grid rows.
    pub nlat: usize,
    /// Grid columns.
    pub nlon: usize,
    /// Prior snow depth per node, metres.
    pub depth_m: Vec<f64>,
    /// Prior 1-σ per node, metres.
    pub sigma_m: Vec<f64>,
}

impl SnowPrior {
    /// Bilinear sample of `(depth, sigma)` at (`lat`, `lon`), clamping
    /// to the grid edges outside the domain.
    pub fn sample(&self, lat: f64, lon: f64) -> (f64, f64) {
        let fi = ((lat - self.lat0) / self.dlat).clamp(0.0, (self.nlat - 1) as f64);
        let fj = ((lon - self.lon0) / self.dlon).clamp(0.0, (self.nlon - 1) as f64);
        let i0 = (fi.floor() as usize).min(self.nlat - 1);
        let j0 = (fj.floor() as usize).min(self.nlon - 1);
        let i1 = (i0 + 1).min(self.nlat - 1);
        let j1 = (j0 + 1).min(self.nlon - 1);
        let wi = fi - i0 as f64;
        let wj = fj - j0 as f64;
        let at = |v: &[f64], i: usize, j: usize| v[i * self.nlon + j];
        let blend = |v: &[f64]| {
            (1.0 - wi) * ((1.0 - wj) * at(v, i0, j0) + wj * at(v, i0, j1))
                + wi * ((1.0 - wj) * at(v, i1, j0) + wj * at(v, i1, j1))
        };
        (blend(&self.depth_m), blend(&self.sigma_m))
    }
}

/// Downscaled-reanalysis-style model: a coarse [`SnowPrior`] sets the
/// regional mean, and the per-sample freeboard modulates the fine-scale
/// distribution (deeper snow collects on higher-freeboard ice — the
/// correlation Liu et al. exploit to downscale ERA5 with ICESat-2):
///
/// ```text
/// w     = hf / (hf + modulation_scale)            ∈ [0, 1)
/// depth = prior(lat, lon) · season(month) · (0.5 + w)
/// σ²    = σ_prior² + (0.1·depth)²
/// ```
///
/// so a sample at the modulation scale carries the prior depth exactly,
/// low-freeboard ice carries down to half of it, and high-freeboard ice
/// up to 1.5×.
#[derive(Debug, Clone, PartialEq)]
pub struct ReanalysisSnow {
    /// The coarse gridded prior.
    pub prior: SnowPrior,
    /// Freeboard at which the downscaling weight reaches ½, metres.
    pub modulation_scale_m: f64,
}

impl ReanalysisSnow {
    /// A deterministic synthetic Ross Sea prior: 16×16 nodes over
    /// 79°S–69°S × 180°W–160°W, depth a smooth 0.18–0.34 m field that
    /// deepens poleward with a gentle zonal ripple, σ 0.04–0.07 m.
    pub fn ross_sea_prior() -> Self {
        let (nlat, nlon) = (16usize, 16usize);
        let (lat0, lon0) = (-79.0, -180.0);
        let (dlat, dlon) = (10.0 / (nlat - 1) as f64, 20.0 / (nlon - 1) as f64);
        let mut depth_m = Vec::with_capacity(nlat * nlon);
        let mut sigma_m = Vec::with_capacity(nlat * nlon);
        for i in 0..nlat {
            for j in 0..nlon {
                let lat = lat0 + dlat * i as f64;
                let lon = lon0 + dlon * j as f64;
                let poleward = ((-lat - 69.0) / 10.0).clamp(0.0, 1.0);
                let ripple = (lon.to_radians() * 3.0).sin();
                let depth = 0.18 + 0.16 * poleward + 0.02 * ripple * poleward;
                depth_m.push(depth);
                sigma_m.push(0.04 + 0.03 * poleward);
            }
        }
        ReanalysisSnow {
            prior: SnowPrior {
                lat0,
                lon0,
                dlat,
                dlon,
                nlat,
                nlon,
                depth_m,
                sigma_m,
            },
            modulation_scale_m: 0.3,
        }
    }
}

impl SnowDepthModel for ReanalysisSnow {
    fn name(&self) -> &str {
        "reanalysis-downscaled"
    }

    fn snow_depth(&self, lat: f64, lon: f64, month: u8, freeboard_m: f64) -> (f64, f64) {
        let (d0, s0) = self.prior.sample(lat, lon);
        let hf = freeboard_m.max(0.0);
        let w = hf / (hf + self.modulation_scale_m);
        let depth = d0 * austral_season(month) * (0.5 + w);
        (depth, (s0 * s0 + (0.1 * depth) * (0.1 * depth)).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn climatology_deepens_poleward_and_in_winter() {
        let c = ClimatologySnow::antarctic();
        let (coastal, _) = c.snow_depth(-78.0, -170.0, 10, 0.3);
        let (marginal, _) = c.snow_depth(-65.0, -170.0, 10, 0.3);
        assert!(coastal > marginal, "{coastal} vs {marginal}");
        let (winter, _) = c.snow_depth(-78.0, -170.0, 10, 0.3);
        let (autumn, _) = c.snow_depth(-78.0, -170.0, 4, 0.3);
        assert!(winter > autumn, "{winter} vs {autumn}");
        // Freeboard-independent by construction.
        assert_eq!(
            c.snow_depth(-78.0, -170.0, 10, 0.1),
            c.snow_depth(-78.0, -170.0, 10, 0.9)
        );
    }

    #[test]
    fn climatology_sigma_floors() {
        let c = ClimatologySnow::antarctic();
        let (d, s) = c.snow_depth(-60.0, -170.0, 4, 0.3);
        assert_eq!(d, 0.0);
        assert_eq!(s, c.min_sigma_m);
    }

    #[test]
    fn prior_bilinear_interpolates_and_clamps() {
        let prior = SnowPrior {
            lat0: -80.0,
            lon0: -180.0,
            dlat: 1.0,
            dlon: 1.0,
            nlat: 2,
            nlon: 2,
            depth_m: vec![0.1, 0.2, 0.3, 0.4],
            sigma_m: vec![0.01, 0.01, 0.01, 0.01],
        };
        // Node hits are exact.
        assert_eq!(prior.sample(-80.0, -180.0).0, 0.1);
        assert_eq!(prior.sample(-79.0, -179.0).0, 0.4);
        // Midpoint blends all four.
        let (mid, _) = prior.sample(-79.5, -179.5);
        assert!((mid - 0.25).abs() < 1e-12, "mid = {mid}");
        // Far outside the domain clamps to the nearest edge.
        assert_eq!(prior.sample(-89.0, -200.0).0, 0.1);
        assert_eq!(prior.sample(-10.0, 40.0).0, 0.4);
    }

    #[test]
    fn reanalysis_modulates_with_freeboard() {
        let m = ReanalysisSnow::ross_sea_prior();
        let (low, _) = m.snow_depth(-75.0, -170.0, 10, 0.05);
        let (mid, _) = m.snow_depth(-75.0, -170.0, 10, 0.3);
        let (high, _) = m.snow_depth(-75.0, -170.0, 10, 1.2);
        assert!(low < mid && mid < high, "{low} {mid} {high}");
        // At the modulation scale the weight is exactly ½ → prior ×
        // season.
        let (d0, _) = m.prior.sample(-75.0, -170.0);
        assert!((mid - d0 * austral_season(10)).abs() < 1e-12);
    }

    #[test]
    fn models_are_deterministic() {
        let c = ClimatologySnow::antarctic();
        let r = ReanalysisSnow::ross_sea_prior();
        for _ in 0..3 {
            assert_eq!(
                c.snow_depth(-74.2, -171.3, 7, 0.42),
                c.snow_depth(-74.2, -171.3, 7, 0.42)
            );
            assert_eq!(
                r.snow_depth(-74.2, -171.3, 7, 0.42),
                r.snow_depth(-74.2, -171.3, 7, 0.42)
            );
        }
    }
}
