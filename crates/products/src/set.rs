//! The `ProductSet` stage artifact and the fleet-side enrichment path.
//!
//! [`ProductSet`] extends [`SeaIceProducts`] (stage 4 of the staged
//! pipeline) with per-sample thickness: the base artifact rides along
//! unchanged, so every existing consumer of stage 4 keeps working, and
//! thickness-aware consumers read the enriched [`ProductPoint`]s.
//! [`enrich_fleet`] is the same derivation applied to the per-beam
//! [`BeamProducts`] a [`seaice::fleet::FleetDriver`] run emits — the
//! form `seaice-catalog` ingests.
//!
//! ## The thickness-bearing contract
//!
//! A [`ProductPoint`] *bears* thickness iff `thickness_sigma_m > 0`:
//! every real retrieval carries a positive σ (the freeboard noise floor
//! guarantees it), while open-water samples — where thickness is 0 by
//! definition, not by measurement — carry `sigma = 0` and are excluded
//! from thickness statistics. Catalog tile formats downstream encode
//! "no thickness known" the same way.

use icesat_atl03::Beam;
use icesat_scene::SurfaceClass;
use seaice::artifact::{Artifact, ArtifactError, Codec, Reader, Writer};
use seaice::fleet::BeamProducts;
use seaice::freeboard::FreeboardPoint;
use seaice::stages::SeaIceProducts;

use crate::retrieval::{DensitySigmas, ThicknessRetrieval};
use crate::snow::SnowDepthModel;
use crate::ProductError;

/// One enriched sample: the freeboard observables plus the snow and
/// thickness estimates derived from them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProductPoint {
    /// Along-track position, metres.
    pub along_track_m: f64,
    /// Latitude, degrees.
    pub lat: f64,
    /// Longitude, degrees.
    pub lon: f64,
    /// Total (snow) freeboard, metres.
    pub freeboard_m: f64,
    /// Surface class of the segment.
    pub class: SurfaceClass,
    /// Estimated snow depth, metres (0 on open water).
    pub snow_depth_m: f64,
    /// 1-σ snow-depth uncertainty, metres.
    pub snow_sigma_m: f64,
    /// Retrieved ice thickness, metres (0 on open water).
    pub thickness_m: f64,
    /// 1-σ thickness uncertainty, metres. `> 0` iff the sample bears a
    /// retrieved thickness (see the module docs).
    pub thickness_sigma_m: f64,
}

impl ProductPoint {
    /// Whether this sample bears a retrieved thickness.
    pub fn bears_thickness(&self) -> bool {
        self.thickness_sigma_m > 0.0
    }
}

impl Codec for ProductPoint {
    fn encode(&self, w: &mut Writer) {
        self.along_track_m.encode(w);
        self.lat.encode(w);
        self.lon.encode(w);
        self.freeboard_m.encode(w);
        self.class.encode(w);
        self.snow_depth_m.encode(w);
        self.snow_sigma_m.encode(w);
        self.thickness_m.encode(w);
        self.thickness_sigma_m.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ArtifactError> {
        Ok(ProductPoint {
            along_track_m: Codec::decode(r)?,
            lat: Codec::decode(r)?,
            lon: Codec::decode(r)?,
            freeboard_m: Codec::decode(r)?,
            class: Codec::decode(r)?,
            snow_depth_m: Codec::decode(r)?,
            snow_sigma_m: Codec::decode(r)?,
            thickness_m: Codec::decode(r)?,
            thickness_sigma_m: Codec::decode(r)?,
        })
    }
}

impl Codec for BeamThickness {
    fn encode(&self, w: &mut Writer) {
        self.granule_id.encode(w);
        // The beam travels as its dense index — `Beam` itself lives in
        // `icesat-atl03` and has no codec of its own.
        w.put_u8(self.beam.index() as u8);
        self.snow_model.encode(w);
        self.points.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ArtifactError> {
        let granule_id = String::decode(r)?;
        let beam = *Beam::ALL
            .get(r.take_u8()? as usize)
            .ok_or(ArtifactError::Invalid("beam index"))?;
        Ok(BeamThickness {
            granule_id,
            beam,
            snow_model: String::decode(r)?,
            points: Vec::decode(r)?,
        })
    }
}

impl Codec for DensitySigmas {
    fn encode(&self, w: &mut Writer) {
        self.water.encode(w);
        self.ice.encode(w);
        self.snow.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ArtifactError> {
        Ok(DensitySigmas {
            water: Codec::decode(r)?,
            ice: Codec::decode(r)?,
            snow: Codec::decode(r)?,
        })
    }
}

impl Codec for ThicknessRetrieval {
    fn encode(&self, w: &mut Writer) {
        self.densities.encode(w);
        self.density_sigmas.encode(w);
        self.freeboard_sigma_m.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ArtifactError> {
        Ok(ThicknessRetrieval {
            densities: Codec::decode(r)?,
            density_sigmas: Codec::decode(r)?,
            freeboard_sigma_m: Codec::decode(r)?,
        })
    }
}

/// Stage-5 artifact: [`SeaIceProducts`] plus the thickness product
/// family derived from it. Tagged `SIC5`, following the staged pipeline
/// artifact lineage `SIC1`–`SIC4`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductSet {
    /// The unchanged stage-4 products this set derives from.
    pub base: SeaIceProducts,
    /// Name of the snow model used ([`SnowDepthModel::name`]).
    pub snow_model: String,
    /// Calendar month (1–12) the snow model was evaluated at.
    pub month: u8,
    /// The retrieval configuration (densities, σs, noise floor).
    pub retrieval: ThicknessRetrieval,
    /// Enriched samples, one per stage-4 freeboard sample, same order.
    pub points: Vec<ProductPoint>,
}

impl Codec for ProductSet {
    fn encode(&self, w: &mut Writer) {
        self.base.encode(w);
        self.snow_model.encode(w);
        self.month.encode(w);
        self.retrieval.encode(w);
        self.points.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ArtifactError> {
        Ok(ProductSet {
            base: Codec::decode(r)?,
            snow_model: Codec::decode(r)?,
            month: Codec::decode(r)?,
            retrieval: Codec::decode(r)?,
            points: Codec::decode(r)?,
        })
    }
}

impl Artifact for ProductSet {
    const TAG: [u8; 4] = *b"SIC5";
    const VERSION: u16 = 1;
}

impl ProductSet {
    /// Derives the thickness product family from stage-4 products: one
    /// [`ProductPoint`] per freeboard sample, in order. Ice samples get
    /// a snow estimate from `snow` and a `(thickness, sigma)` from
    /// `retrieval`; open-water samples carry zeros with `sigma = 0`
    /// (not thickness-bearing). Non-finite freeboard, coordinates, or
    /// model output reject the whole derivation with the offending
    /// sample's index — this is the `ProductSet` validation boundary.
    pub fn derive(
        base: &SeaIceProducts,
        month: u8,
        snow: &dyn SnowDepthModel,
        retrieval: &ThicknessRetrieval,
    ) -> Result<ProductSet, ProductError> {
        retrieval.validate()?;
        let points = enrich_points(&base.freeboard_atl03.points, month, snow, retrieval)?;
        Ok(ProductSet {
            base: base.clone(),
            snow_model: snow.name().to_string(),
            month,
            retrieval: *retrieval,
            points,
        })
    }

    /// Number of thickness-bearing samples.
    pub fn n_bearing(&self) -> usize {
        self.points.iter().filter(|p| p.bears_thickness()).count()
    }

    /// `(mean, median, p95)` thickness over bearing samples, per the
    /// shared [`seaice::stats::summary_stats`] contract.
    pub fn thickness_stats(&self) -> (f64, f64, f64) {
        let v: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.bears_thickness())
            .map(|p| p.thickness_m)
            .collect();
        seaice::stats::summary_stats(&v)
    }
}

/// One beam's enriched product — [`BeamProducts`] after thickness
/// derivation, the unit `seaice-catalog` ingests.
#[derive(Debug, Clone, PartialEq)]
pub struct BeamThickness {
    /// Granule id the beam came from (leading `YYYYMM` selects the
    /// catalog's temporal layer).
    pub granule_id: String,
    /// Which beam.
    pub beam: Beam,
    /// Name of the snow model used.
    pub snow_model: String,
    /// Enriched samples, one per freeboard sample, same order.
    pub points: Vec<ProductPoint>,
}

/// Enriches every beam of a fleet run: the calendar month comes from
/// each granule id's `YYYYMM` prefix, then each beam derives exactly as
/// [`ProductSet::derive`] does. Fails on the first malformed granule id
/// ([`ProductError::BadGranule`]) or non-finite sample.
pub fn enrich_fleet(
    beams: &[BeamProducts],
    snow: &dyn SnowDepthModel,
    retrieval: &ThicknessRetrieval,
) -> Result<Vec<BeamThickness>, ProductError> {
    retrieval.validate()?;
    beams
        .iter()
        .map(|b| {
            let month = granule_month(&b.granule_id)?;
            Ok(BeamThickness {
                granule_id: b.granule_id.clone(),
                beam: b.beam,
                snow_model: snow.name().to_string(),
                points: enrich_points(&b.freeboard.points, month, snow, retrieval)?,
            })
        })
        .collect()
}

/// Calendar month from an ATL03-style granule id's `YYYYMM` prefix.
fn granule_month(granule_id: &str) -> Result<u8, ProductError> {
    let bad = || ProductError::BadGranule(granule_id.to_string());
    let prefix = granule_id.get(..6).ok_or_else(bad)?;
    if !prefix.bytes().all(|b| b.is_ascii_digit()) {
        return Err(bad());
    }
    let month: u8 = prefix[4..6].parse().map_err(|_| bad())?;
    if (1..=12).contains(&month) {
        Ok(month)
    } else {
        Err(bad())
    }
}

fn enrich_points(
    points: &[FreeboardPoint],
    month: u8,
    snow: &dyn SnowDepthModel,
    retrieval: &ThicknessRetrieval,
) -> Result<Vec<ProductPoint>, ProductError> {
    points
        .iter()
        .enumerate()
        .map(|(index, p)| {
            crate::finite(p.freeboard_m, "freeboard", index)?;
            crate::finite(p.lat, "latitude", index)?;
            crate::finite(p.lon, "longitude", index)?;
            if p.class == SurfaceClass::OpenWater {
                return Ok(ProductPoint {
                    along_track_m: p.along_track_m,
                    lat: p.lat,
                    lon: p.lon,
                    freeboard_m: p.freeboard_m,
                    class: p.class,
                    snow_depth_m: 0.0,
                    snow_sigma_m: 0.0,
                    thickness_m: 0.0,
                    thickness_sigma_m: 0.0,
                });
            }
            let (s, s_sigma) = snow.snow_depth(p.lat, p.lon, month, p.freeboard_m);
            crate::finite(s, "snow depth", index)?;
            crate::finite(s_sigma, "snow sigma", index)?;
            let est = retrieval
                .retrieve(p.freeboard_m, s, s_sigma)
                .map_err(|e| match e {
                    ProductError::NonFinite { what, .. } => ProductError::NonFinite { what, index },
                    other => other,
                })?;
            Ok(ProductPoint {
                along_track_m: p.along_track_m,
                lat: p.lat,
                lon: p.lon,
                freeboard_m: p.freeboard_m,
                class: p.class,
                snow_depth_m: s.clamp(0.0, p.freeboard_m.max(0.0)),
                snow_sigma_m: s_sigma,
                thickness_m: est.thickness_m,
                thickness_sigma_m: est.sigma_m,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snow::{ClimatologySnow, ReanalysisSnow};
    use seaice::atl07::Atl10Freeboard;
    use seaice::freeboard::FreeboardProduct;
    use seaice::seasurface::{SeaSurface, SeaSurfaceMethod};

    fn sample_points() -> Vec<FreeboardPoint> {
        (0..40)
            .map(|i| FreeboardPoint {
                along_track_m: i as f64 * 2.0,
                lat: -74.0 - 0.001 * i as f64,
                lon: -170.0,
                freeboard_m: if i % 7 == 0 {
                    0.01
                } else {
                    0.25 + 0.01 * (i % 5) as f64
                },
                class: if i % 7 == 0 {
                    SurfaceClass::OpenWater
                } else {
                    SurfaceClass::ThickIce
                },
            })
            .collect()
    }

    fn stage4(points: Vec<FreeboardPoint>) -> SeaIceProducts {
        let empty = FreeboardProduct {
            name: "empty".into(),
            points: vec![],
        };
        SeaIceProducts {
            classes: vec![],
            classification_accuracy_vs_truth: 0.0,
            sea_surfaces: vec![],
            freeboard_atl03: FreeboardProduct {
                name: "ATL03 2m".into(),
                points,
            },
            atl07_classes: vec![],
            atl10: Atl10Freeboard {
                segments: vec![],
                classes: vec![],
                surface: SeaSurface {
                    method: SeaSurfaceMethod::NasaEquation,
                    centers_m: vec![],
                    href_m: vec![],
                    from_water: vec![],
                },
                product: empty,
            },
            surface_gap_m: 0.0,
        }
    }

    #[test]
    fn derive_bears_thickness_on_ice_and_zeros_water() {
        let base = stage4(sample_points());
        let set = ProductSet::derive(
            &base,
            10,
            &ClimatologySnow::antarctic(),
            &ThicknessRetrieval::default(),
        )
        .unwrap();
        assert_eq!(set.points.len(), base.freeboard_atl03.points.len());
        for p in &set.points {
            if p.class == SurfaceClass::OpenWater {
                assert!(!p.bears_thickness());
                assert_eq!(p.thickness_m, 0.0);
                assert_eq!(p.snow_depth_m, 0.0);
            } else {
                assert!(p.bears_thickness());
                assert!(p.thickness_m > 0.0);
                assert!(p.snow_depth_m <= p.freeboard_m);
            }
        }
        assert!(set.n_bearing() > 0 && set.n_bearing() < set.points.len());
        let (mean, median, p95) = set.thickness_stats();
        assert!(mean > 0.0 && median > 0.0 && p95 >= median);
        // The base rides along unchanged.
        assert_eq!(set.base, base);
    }

    #[test]
    fn artifact_roundtrips_bit_identically() {
        let set = ProductSet::derive(
            &stage4(sample_points()),
            7,
            &ReanalysisSnow::ross_sea_prior(),
            &ThicknessRetrieval::default(),
        )
        .unwrap();
        let bytes = set.to_bytes();
        let back = ProductSet::from_bytes(&bytes).unwrap();
        assert_eq!(back, set);
        assert_eq!(back.to_bytes(), bytes);
        assert_eq!(back.snow_model, "reanalysis-downscaled");
    }

    /// Satellite regression: a poisoned (NaN) freeboard sample must be
    /// rejected at the boundary with its index, not averaged into
    /// aggregates.
    #[test]
    fn poisoned_sample_is_rejected_with_index() {
        let mut points = sample_points();
        points[13].freeboard_m = f64::NAN;
        let err = ProductSet::derive(
            &stage4(points),
            10,
            &ClimatologySnow::antarctic(),
            &ThicknessRetrieval::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            ProductError::NonFinite {
                what: "freeboard",
                index: 13
            }
        );
        let mut points = sample_points();
        points[2].lat = f64::INFINITY;
        let err = ProductSet::derive(
            &stage4(points),
            10,
            &ClimatologySnow::antarctic(),
            &ThicknessRetrieval::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            ProductError::NonFinite {
                what: "latitude",
                index: 2
            }
        );
    }

    /// A snow model that emits NaN is caught at the same boundary.
    #[test]
    fn poisoned_snow_model_is_rejected() {
        struct BadSnow;
        impl SnowDepthModel for BadSnow {
            fn name(&self) -> &str {
                "bad"
            }
            fn snow_depth(&self, _: f64, _: f64, _: u8, _: f64) -> (f64, f64) {
                (f64::NAN, 0.02)
            }
        }
        let err = ProductSet::derive(
            &stage4(sample_points()),
            10,
            &BadSnow,
            &ThicknessRetrieval::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ProductError::NonFinite {
                what: "snow depth",
                ..
            }
        ));
    }

    #[test]
    fn fleet_enrichment_parses_months_and_rejects_bad_granules() {
        let beam = BeamProducts {
            granule_id: "20190704195311_0500021a".into(),
            beam: Beam::Gt1l,
            n_segments: 40,
            class_counts: [34, 0, 6],
            freeboard: FreeboardProduct {
                name: "ATL03 2m".into(),
                points: sample_points(),
            },
        };
        let out = enrich_fleet(
            std::slice::from_ref(&beam),
            &ClimatologySnow::antarctic(),
            &ThicknessRetrieval::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].granule_id, beam.granule_id);
        assert_eq!(out[0].beam, Beam::Gt1l);
        assert!(out[0].points.iter().any(|p| p.bears_thickness()));
        // July enrichment must match a direct ProductSet derivation.
        let set = ProductSet::derive(
            &stage4(sample_points()),
            7,
            &ClimatologySnow::antarctic(),
            &ThicknessRetrieval::default(),
        )
        .unwrap();
        assert_eq!(out[0].points, set.points);

        for bad in ["x", "2019a704195311", "20191304195311_x"] {
            let mut b = beam.clone();
            b.granule_id = bad.into();
            assert_eq!(
                enrich_fleet(
                    &[b],
                    &ClimatologySnow::antarctic(),
                    &ThicknessRetrieval::default()
                )
                .unwrap_err(),
                ProductError::BadGranule(bad.to_string())
            );
        }
    }
}
