//! Ground-truth sea-ice scene model.
//!
//! The paper labels ICESat-2 photons with coincident Sentinel-2 imagery;
//! we have neither, so we render *both* from a single synthetic truth
//! scene. The scene is a deterministic, seedable function over the
//! EPSG-3976 plane that answers, for any map point:
//!
//! - which [`SurfaceClass`] covers it (thick ice / thin ice / open water),
//! - the surface elevation above the WGS 84 ellipsoid (local sea surface
//!   height plus the class-dependent freeboard, snow, and ridging),
//! - the apparent surface reflectance that drives both the S2 band
//!   radiances and the ATL03 signal-photon rate.
//!
//! A scene is composed of a slowly-varying sea-surface height field
//! ([`noise`]), a lead network and polynyas ([`features`]), ridges on thick
//! ice, and a rigid [`drift`] model that displaces the ice field between
//! the IS2 and S2 acquisition times — the source of the misalignment the
//! paper corrects in its Table I.
//!
//! Everything is pure and deterministic: two queries with the same seed and
//! coordinates always agree, which is what lets the test-suite score the
//! pipeline against exact truth.

pub mod class;
pub mod drift;
pub mod features;
pub mod noise;
pub mod scene;

pub use class::SurfaceClass;
pub use drift::DriftModel;
pub use features::{Lead, Polynya, RidgeField};
pub use noise::{Fbm, ValueNoise};
pub use scene::{Scene, SceneConfig, SurfaceSample};
