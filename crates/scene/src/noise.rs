//! Deterministic lattice value-noise and fractional Brownian motion.
//!
//! Used for the slowly-varying sea-surface height field (geoid residual,
//! tides, inverted-barometer — the "local sea level" the paper retrieves),
//! the freeboard texture on thick ice, and snow-depth variation. The
//! implementation is a classic seeded value-noise: pseudo-random values on
//! an integer lattice blended with a smoothstep, plus an octave-summing
//! [`Fbm`] wrapper.
//!
//! A hand-rolled hash keeps the field a *pure function* of (seed, x, y) —
//! no interior state, trivially `Send + Sync`, and reproducible across
//! platforms.

/// Seeded 2-D value noise over a unit lattice. Output is in `[-1, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct ValueNoise {
    seed: u64,
}

impl ValueNoise {
    /// Creates a noise field for `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Hash of an integer lattice point to `[-1, 1]`.
    #[inline]
    fn lattice(&self, ix: i64, iy: i64) -> f64 {
        // SplitMix64-style avalanche over the packed coordinates.
        let mut z = self
            .seed
            .wrapping_add((ix as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((iy as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Map the top 53 bits to [0, 1), then to [-1, 1].
        (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }

    /// Samples the noise at continuous coordinates (in lattice units).
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let x0 = x.floor();
        let y0 = y.floor();
        let (ix, iy) = (x0 as i64, y0 as i64);
        let (fx, fy) = (x - x0, y - y0);
        // Quintic smoothstep (Perlin's fade) for C2 continuity.
        let u = fade(fx);
        let v = fade(fy);
        let n00 = self.lattice(ix, iy);
        let n10 = self.lattice(ix + 1, iy);
        let n01 = self.lattice(ix, iy + 1);
        let n11 = self.lattice(ix + 1, iy + 1);
        lerp(lerp(n00, n10, u), lerp(n01, n11, u), v)
    }
}

#[inline]
fn fade(t: f64) -> f64 {
    t * t * t * (t * (t * 6.0 - 15.0) + 10.0)
}

#[inline]
fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Fractional Brownian motion: `octaves` layers of [`ValueNoise`] with
/// geometrically increasing frequency (`lacunarity`) and decreasing
/// amplitude (`gain`). Output is renormalised to roughly `[-1, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct Fbm {
    base: ValueNoise,
    /// Number of octaves summed.
    pub octaves: u32,
    /// Frequency multiplier between octaves (typically 2).
    pub lacunarity: f64,
    /// Amplitude multiplier between octaves (typically 0.5).
    pub gain: f64,
    /// Base spatial frequency, lattice cells per metre.
    pub frequency: f64,
}

impl Fbm {
    /// An fBm field with `octaves` layers at base `frequency` (cells per
    /// metre when you pass metres to [`Fbm::sample`]).
    pub fn new(seed: u64, octaves: u32, frequency: f64) -> Self {
        Self {
            base: ValueNoise::new(seed),
            octaves,
            lacunarity: 2.0,
            gain: 0.5,
            frequency,
        }
    }

    /// Samples the field at metric coordinates `(x, y)`; output ~[-1, 1].
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let mut sum = 0.0;
        let mut amp = 1.0;
        let mut norm = 0.0;
        let mut fx = x * self.frequency;
        let mut fy = y * self.frequency;
        // Offset each octave's lattice so octaves decorrelate.
        for octave in 0..self.octaves {
            let off = octave as f64 * 17.137;
            sum += amp * self.base.sample(fx + off, fy - off);
            norm += amp;
            amp *= self.gain;
            fx *= self.lacunarity;
            fy *= self.lacunarity;
        }
        if norm > 0.0 {
            sum / norm
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic() {
        let a = ValueNoise::new(42);
        let b = ValueNoise::new(42);
        for i in 0..100 {
            let (x, y) = (i as f64 * 0.37, i as f64 * -0.73);
            assert_eq!(a.sample(x, y), b.sample(x, y));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ValueNoise::new(1);
        let b = ValueNoise::new(2);
        let differing = (0..100)
            .filter(|&i| {
                let (x, y) = (i as f64 * 0.61, i as f64 * 0.13);
                (a.sample(x, y) - b.sample(x, y)).abs() > 1e-12
            })
            .count();
        assert!(differing > 90);
    }

    #[test]
    fn noise_is_bounded() {
        let n = ValueNoise::new(7);
        for i in 0..1000 {
            let v = n.sample(i as f64 * 0.317, i as f64 * -0.117);
            assert!((-1.0..=1.0).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn noise_interpolates_lattice_values() {
        // At integer lattice points, sample() returns the lattice hash.
        let n = ValueNoise::new(9);
        for ix in -3..3i64 {
            for iy in -3..3i64 {
                let direct = n.lattice(ix, iy);
                let sampled = n.sample(ix as f64, iy as f64);
                assert!((direct - sampled).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn noise_is_continuous() {
        let n = ValueNoise::new(3);
        let eps = 1e-5;
        for i in 0..200 {
            let x = i as f64 * 0.789;
            let y = i as f64 * 0.331;
            let d = (n.sample(x + eps, y) - n.sample(x, y)).abs();
            assert!(d < 1e-3, "jump {d} at ({x},{y})");
        }
    }

    #[test]
    fn fbm_bounded_and_deterministic() {
        let f = Fbm::new(11, 5, 1.0 / 5_000.0);
        for i in 0..500 {
            let (x, y) = (i as f64 * 311.7, i as f64 * -173.3);
            let v = f.sample(x, y);
            assert!((-1.0..=1.0).contains(&v));
            assert_eq!(v, f.sample(x, y));
        }
    }

    #[test]
    fn fbm_zero_octaves_is_zero() {
        let f = Fbm::new(11, 0, 1.0);
        assert_eq!(f.sample(3.0, 4.0), 0.0);
    }

    #[test]
    fn fbm_long_wavelength_varies_slowly() {
        // A 50 km wavelength field should change by ≪ its range over 2 m.
        let f = Fbm::new(5, 4, 1.0 / 50_000.0);
        let a = f.sample(0.0, 0.0);
        let b = f.sample(2.0, 0.0);
        assert!((a - b).abs() < 1e-2);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn bounded_everywhere(seed in 0u64..1000, x in -1e7f64..1e7, y in -1e7f64..1e7) {
                let v = ValueNoise::new(seed).sample(x / 100.0, y / 100.0);
                prop_assert!((-1.0..=1.0).contains(&v));
            }

            #[test]
            fn fbm_bounded_everywhere(seed in 0u64..1000, x in -1e6f64..1e6, y in -1e6f64..1e6) {
                let v = Fbm::new(seed, 6, 1.0/10_000.0).sample(x, y);
                prop_assert!((-1.0..=1.0).contains(&v));
            }
        }
    }
}
