//! Surface classification taxonomy.
//!
//! The paper classifies 2 m ATL03 segments into exactly three classes
//! (Section III-B): thick/snow-covered sea ice, thin ice (nilas / grey ice
//! in refreezing leads and polynyas), and open water.

use serde::{Deserialize, Serialize};

/// The three surface classes of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum SurfaceClass {
    /// Thick, usually snow-covered, sea ice. The dominant class in the
    /// Ross Sea (class imbalance motivates the paper's focal loss).
    ThickIce = 0,
    /// Newly formed thin ice (nilas, grey ice) in refreezing leads and
    /// polynyas.
    ThinIce = 1,
    /// Open water (leads, polynyas).
    OpenWater = 2,
}

impl SurfaceClass {
    /// All classes, index-ordered; the classifier's output layer uses this
    /// ordering (3 softmax neurons).
    pub const ALL: [SurfaceClass; 3] = [
        SurfaceClass::ThickIce,
        SurfaceClass::ThinIce,
        SurfaceClass::OpenWater,
    ];

    /// Number of classes.
    pub const COUNT: usize = 3;

    /// Dense index in `0..3`, matching the softmax output ordering.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`SurfaceClass::index`]; returns `None` for out-of-range
    /// indices.
    pub fn from_index(i: usize) -> Option<SurfaceClass> {
        SurfaceClass::ALL.get(i).copied()
    }

    /// Human-readable label used in printed tables and figures.
    pub fn name(self) -> &'static str {
        match self {
            SurfaceClass::ThickIce => "thick ice",
            SurfaceClass::ThinIce => "thin ice",
            SurfaceClass::OpenWater => "open water",
        }
    }

    /// `true` for the class the freeboard stage uses as sea-surface
    /// reference (open water only).
    #[inline]
    pub fn is_sea_surface_reference(self) -> bool {
        matches!(self, SurfaceClass::OpenWater)
    }
}

impl std::fmt::Display for SurfaceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for c in SurfaceClass::ALL {
            assert_eq!(SurfaceClass::from_index(c.index()), Some(c));
        }
        assert_eq!(SurfaceClass::from_index(3), None);
    }

    #[test]
    fn only_open_water_is_reference() {
        assert!(SurfaceClass::OpenWater.is_sea_surface_reference());
        assert!(!SurfaceClass::ThickIce.is_sea_surface_reference());
        assert!(!SurfaceClass::ThinIce.is_sea_surface_reference());
    }

    #[test]
    fn display_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            SurfaceClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 3);
    }
}
