//! Geometric ice features: leads, polynyas, and pressure ridges.
//!
//! The Ross Sea truth scene is a thick-ice background cut by a network of
//! **leads** (elongated fractures, partly refrozen to thin ice), punctured
//! by **polynyas** (the large open-water/thin-ice areas kept open by
//! katabatic winds — Ross Ice Shelf, Terra Nova Bay, McMurdo Sound in the
//! paper), and roughened by **pressure ridges** on the thick ice.
//!
//! All features are tested by signed distance in the EPSG-3976 plane, so
//! class membership stays exact under the rigid drift displacement.

use icesat_geo::MapPoint;
use serde::{Deserialize, Serialize};

use crate::noise::ValueNoise;

/// An elongated fracture in the ice: a polyline with a half-width.
/// The central fraction of the lead stays open water; the margins have
/// refrozen to thin ice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lead {
    /// Polyline vertices in EPSG-3976 metres.
    pub path: Vec<MapPoint>,
    /// Half-width of the full (thin-ice) lead, metres.
    pub half_width_m: f64,
    /// Fraction (0..=1) of the half-width that is open water at the
    /// centre; the rest is thin ice.
    pub open_fraction: f64,
}

impl Lead {
    /// Distance from `p` to the lead centreline, metres.
    pub fn distance_to_centerline(&self, p: MapPoint) -> f64 {
        self.path
            .windows(2)
            .map(|seg| point_segment_distance(p, seg[0], seg[1]))
            .fold(f64::INFINITY, f64::min)
    }

    /// Classifies `p` against this lead alone: `None` if outside,
    /// otherwise open water in the core or thin ice in the margin.
    pub fn classify(&self, p: MapPoint) -> Option<crate::SurfaceClass> {
        let d = self.distance_to_centerline(p);
        if d > self.half_width_m {
            None
        } else if d <= self.half_width_m * self.open_fraction {
            Some(crate::SurfaceClass::OpenWater)
        } else {
            Some(crate::SurfaceClass::ThinIce)
        }
    }

    /// Axis-aligned bounding box (padded by the half-width), as
    /// `(min, max)` corners, for broad-phase culling.
    pub fn bbox(&self) -> (MapPoint, MapPoint) {
        let mut min = MapPoint::new(f64::INFINITY, f64::INFINITY);
        let mut max = MapPoint::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for v in &self.path {
            min.x = min.x.min(v.x);
            min.y = min.y.min(v.y);
            max.x = max.x.max(v.x);
            max.y = max.y.max(v.y);
        }
        (
            MapPoint::new(min.x - self.half_width_m, min.y - self.half_width_m),
            MapPoint::new(max.x + self.half_width_m, max.y + self.half_width_m),
        )
    }
}

/// A polynya: an elliptical open-water / thin-ice region.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Polynya {
    /// Centre in EPSG-3976 metres.
    pub center: MapPoint,
    /// Semi-axis along x, metres.
    pub semi_x_m: f64,
    /// Semi-axis along y, metres.
    pub semi_y_m: f64,
    /// Normalised radius (0..=1) inside which the water is open; between
    /// it and 1 the surface has refrozen to thin ice.
    pub open_core: f64,
}

impl Polynya {
    /// Normalised elliptical radius of `p` (0 at centre, 1 on boundary).
    pub fn normalized_radius(&self, p: MapPoint) -> f64 {
        let dx = (p.x - self.center.x) / self.semi_x_m;
        let dy = (p.y - self.center.y) / self.semi_y_m;
        (dx * dx + dy * dy).sqrt()
    }

    /// Classifies `p` against this polynya alone.
    pub fn classify(&self, p: MapPoint) -> Option<crate::SurfaceClass> {
        let r = self.normalized_radius(p);
        if r > 1.0 {
            None
        } else if r <= self.open_core {
            Some(crate::SurfaceClass::OpenWater)
        } else {
            Some(crate::SurfaceClass::ThinIce)
        }
    }
}

/// Sparse pressure-ridge field on thick ice: a stationary Poisson-like
/// process realised through lattice noise. Ridges add up to
/// `max_ridge_height_m` of sail height over a `ridge_width_m` footprint.
#[derive(Debug, Clone, Copy)]
pub struct RidgeField {
    noise: ValueNoise,
    /// Approximate spacing between ridge crests, metres.
    pub spacing_m: f64,
    /// Ridge sail half-width, metres.
    pub ridge_width_m: f64,
    /// Maximum sail height above the level-ice freeboard, metres.
    pub max_ridge_height_m: f64,
}

impl RidgeField {
    /// Creates a ridge field with the given geometry.
    pub fn new(seed: u64, spacing_m: f64, ridge_width_m: f64, max_ridge_height_m: f64) -> Self {
        Self {
            noise: ValueNoise::new(seed),
            spacing_m,
            ridge_width_m,
            max_ridge_height_m,
        }
    }

    /// Additional sail height at `p`, metres (0 on level ice).
    pub fn sail_height(&self, p: MapPoint) -> f64 {
        // Ridge crests live near the zero-set of a long-wavelength noise
        // field; the sail profile is a smooth bump around that set.
        let v = self
            .noise
            .sample(p.x / self.spacing_m, p.y / self.spacing_m);
        // |v| small => near a crest line.
        let crest_halfwidth = self.ridge_width_m / self.spacing_m;
        let t = (crest_halfwidth - v.abs()).max(0.0) / crest_halfwidth;
        // Second noise octave modulates sail height along the crest.
        let mod_h = 0.5
            + 0.5
                * self
                    .noise
                    .sample(p.x / self.spacing_m + 113.7, p.y / self.spacing_m - 57.3);
        self.max_ridge_height_m * t * t * mod_h
    }
}

/// Distance from point `p` to segment `ab`, metres.
pub fn point_segment_distance(p: MapPoint, a: MapPoint, b: MapPoint) -> f64 {
    let abx = b.x - a.x;
    let aby = b.y - a.y;
    let len2 = abx * abx + aby * aby;
    if len2 == 0.0 {
        return p.dist(a);
    }
    let t = (((p.x - a.x) * abx + (p.y - a.y) * aby) / len2).clamp(0.0, 1.0);
    p.dist(MapPoint::new(a.x + t * abx, a.y + t * aby))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SurfaceClass;

    fn straight_lead() -> Lead {
        Lead {
            path: vec![MapPoint::new(0.0, 0.0), MapPoint::new(1000.0, 0.0)],
            half_width_m: 100.0,
            open_fraction: 0.5,
        }
    }

    #[test]
    fn point_segment_distance_cases() {
        let a = MapPoint::new(0.0, 0.0);
        let b = MapPoint::new(10.0, 0.0);
        // Perpendicular foot inside the segment.
        assert!((point_segment_distance(MapPoint::new(5.0, 3.0), a, b) - 3.0).abs() < 1e-12);
        // Beyond either endpoint clamps to the endpoint.
        assert!((point_segment_distance(MapPoint::new(-4.0, 3.0), a, b) - 5.0).abs() < 1e-12);
        assert!((point_segment_distance(MapPoint::new(14.0, 3.0), a, b) - 5.0).abs() < 1e-12);
        // Degenerate segment.
        assert!((point_segment_distance(MapPoint::new(3.0, 4.0), a, a) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn lead_core_is_open_margin_is_thin() {
        let lead = straight_lead();
        assert_eq!(
            lead.classify(MapPoint::new(500.0, 10.0)),
            Some(SurfaceClass::OpenWater)
        );
        assert_eq!(
            lead.classify(MapPoint::new(500.0, 80.0)),
            Some(SurfaceClass::ThinIce)
        );
        assert_eq!(lead.classify(MapPoint::new(500.0, 150.0)), None);
    }

    #[test]
    fn lead_bbox_pads_by_half_width() {
        let (min, max) = straight_lead().bbox();
        assert_eq!(min, MapPoint::new(-100.0, -100.0));
        assert_eq!(max, MapPoint::new(1100.0, 100.0));
    }

    #[test]
    fn fully_open_lead_has_no_thin_margin() {
        let mut lead = straight_lead();
        lead.open_fraction = 1.0;
        assert_eq!(
            lead.classify(MapPoint::new(500.0, 99.0)),
            Some(SurfaceClass::OpenWater)
        );
    }

    #[test]
    fn polynya_rings() {
        let p = Polynya {
            center: MapPoint::new(0.0, 0.0),
            semi_x_m: 10_000.0,
            semi_y_m: 5_000.0,
            open_core: 0.6,
        };
        assert_eq!(
            p.classify(MapPoint::new(0.0, 0.0)),
            Some(SurfaceClass::OpenWater)
        );
        assert_eq!(
            p.classify(MapPoint::new(8_000.0, 0.0)),
            Some(SurfaceClass::ThinIce)
        );
        assert_eq!(p.classify(MapPoint::new(11_000.0, 0.0)), None);
        // Anisotropy: 8 km along y is outside (semi_y = 5 km).
        assert_eq!(p.classify(MapPoint::new(0.0, 8_000.0)), None);
    }

    #[test]
    fn ridge_sail_height_nonnegative_and_bounded() {
        let r = RidgeField::new(3, 500.0, 15.0, 2.0);
        let mut any_positive = false;
        for i in 0..5000 {
            let p = MapPoint::new(i as f64 * 13.7, i as f64 * -7.3);
            let h = r.sail_height(p);
            assert!(h >= 0.0, "negative sail {h}");
            assert!(h <= 2.0 + 1e-9, "sail too tall {h}");
            if h > 0.05 {
                any_positive = true;
            }
        }
        assert!(
            any_positive,
            "ridge field produced no ridges in 5000 samples"
        );
    }

    #[test]
    fn ridges_are_sparse() {
        let r = RidgeField::new(3, 500.0, 15.0, 2.0);
        let ridged = (0..10_000)
            .filter(|&i| {
                let p = MapPoint::new(i as f64 * 11.1, i as f64 * 3.3);
                r.sail_height(p) > 0.1
            })
            .count();
        // Sail footprint ~2*15 m per ~500 m spacing => roughly < 25% of area.
        assert!(ridged < 2_500, "ridges cover too much area: {ridged}/10000");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Distance to a segment is never larger than distance to
            /// either endpoint.
            #[test]
            fn segment_distance_bounded_by_endpoints(
                px in -1e4f64..1e4, py in -1e4f64..1e4,
                ax in -1e4f64..1e4, ay in -1e4f64..1e4,
                bx in -1e4f64..1e4, by in -1e4f64..1e4,
            ) {
                let p = MapPoint::new(px, py);
                let a = MapPoint::new(ax, ay);
                let b = MapPoint::new(bx, by);
                let d = point_segment_distance(p, a, b);
                prop_assert!(d <= p.dist(a) + 1e-9);
                prop_assert!(d <= p.dist(b) + 1e-9);
            }

            /// Lead classification partitions by distance thresholds.
            #[test]
            fn lead_classification_consistent(y in -200.0f64..200.0) {
                let lead = Lead {
                    path: vec![MapPoint::new(-1e3, 0.0), MapPoint::new(1e3, 0.0)],
                    half_width_m: 100.0,
                    open_fraction: 0.4,
                };
                let c = lead.classify(MapPoint::new(0.0, y));
                let d = y.abs();
                if d <= 40.0 {
                    prop_assert_eq!(c, Some(SurfaceClass::OpenWater));
                } else if d <= 100.0 {
                    prop_assert_eq!(c, Some(SurfaceClass::ThinIce));
                } else {
                    prop_assert_eq!(c, None);
                }
            }
        }
    }
}
