//! The composed ground-truth scene.
//!
//! A [`Scene`] is a deterministic function over the EPSG-3976 plane and
//! acquisition time. It layers, in priority order:
//!
//! 1. polynyas (open-water core, thin-ice rim),
//! 2. the lead network (open-water core, thin-ice margins),
//! 3. the thick-ice background (freeboard texture + snow + ridges).
//!
//! Surface elevation is `ssh + freeboard`, where the sea-surface height
//! (SSH) field is a long-wavelength fBm standing in for geoid residual,
//! tide, and inverted-barometer effects — exactly the "local sea level"
//! signal the paper's freeboard stage must recover from open-water
//! segments. Ice features ride on the [`DriftModel`]; the SSH field does
//! not (it is fixed to the Earth, not the ice).

use icesat_geo::MapPoint;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::class::SurfaceClass;
use crate::drift::DriftModel;
use crate::features::{Lead, Polynya, RidgeField};
use crate::noise::Fbm;

/// Everything needed to build a reproducible [`Scene`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Master RNG seed; all randomness derives from it.
    pub seed: u64,
    /// Scene centre in EPSG-3976 metres.
    pub center: MapPoint,
    /// Half-extent of the square scene, metres (features are placed within
    /// `center ± half_extent`).
    pub half_extent_m: f64,
    /// Number of leads to place.
    pub n_leads: usize,
    /// Lead half-width range, metres.
    pub lead_half_width_m: (f64, f64),
    /// Range of the open-water core fraction of each lead.
    pub lead_open_fraction: (f64, f64),
    /// Number of polynyas.
    pub n_polynyas: usize,
    /// Polynya semi-axis range, metres.
    pub polynya_semi_m: (f64, f64),
    /// Open-core fraction of each polynya.
    pub polynya_open_core: (f64, f64),
    /// Peak-to-peak amplitude of the sea-surface height field, metres.
    pub ssh_amplitude_m: f64,
    /// Dominant SSH wavelength, metres.
    pub ssh_wavelength_m: f64,
    /// Mean thick-ice freeboard (ice + snow above water), metres.
    pub thick_freeboard_m: f64,
    /// Amplitude of the thick-ice freeboard texture, metres.
    pub thick_freeboard_texture_m: f64,
    /// Mean thin-ice freeboard, metres.
    pub thin_freeboard_m: f64,
    /// RMS open-water surface roughness (waves), metres.
    pub water_roughness_m: f64,
    /// Ridge spacing / sail half-width / max sail height, metres.
    pub ridges: (f64, f64, f64),
    /// Rigid ice drift.
    pub drift: DriftModel,
}

impl SceneConfig {
    /// A Ross-Sea-like default: ~40 km scene, thick-ice dominated with a
    /// moderate lead network and one polynya, 0.3 m mean freeboard,
    /// ±0.15 m SSH over ~45 km.
    pub fn ross_sea(seed: u64) -> Self {
        SceneConfig {
            seed,
            center: MapPoint::new(-300_000.0, -1_300_000.0),
            half_extent_m: 20_000.0,
            n_leads: 24,
            lead_half_width_m: (15.0, 220.0),
            lead_open_fraction: (0.25, 0.8),
            n_polynyas: 1,
            polynya_semi_m: (2_500.0, 7_000.0),
            polynya_open_core: (0.45, 0.7),
            ssh_amplitude_m: 0.30,
            ssh_wavelength_m: 45_000.0,
            thick_freeboard_m: 0.32,
            thick_freeboard_texture_m: 0.10,
            thin_freeboard_m: 0.06,
            water_roughness_m: 0.02,
            ridges: (600.0, 18.0, 1.6),
            drift: DriftModel::STILL,
        }
    }

    /// Same as [`SceneConfig::ross_sea`] but with the given drift.
    pub fn ross_sea_with_drift(seed: u64, drift: DriftModel) -> Self {
        SceneConfig {
            drift,
            ..SceneConfig::ross_sea(seed)
        }
    }
}

/// One truth query result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurfaceSample {
    /// True surface class.
    pub class: SurfaceClass,
    /// Surface elevation above the WGS 84 ellipsoid, metres
    /// (`ssh + freeboard` for ice; `ssh + waves` for open water).
    pub elevation_m: f64,
    /// Sea-surface height component alone, metres.
    pub ssh_m: f64,
    /// Freeboard (elevation − ssh) — zero-mean wave noise for open water.
    pub freeboard_m: f64,
    /// Broadband surface reflectance in `[0, 1]`; drives the ATL03 signal
    /// photon rate and the S2 band radiances.
    pub reflectance: f64,
}

/// A realised ground-truth scene. Cheap to query, `Send + Sync`, and
/// deterministic for a given [`SceneConfig`].
#[derive(Debug, Clone)]
pub struct Scene {
    config: SceneConfig,
    leads: Vec<Lead>,
    lead_bboxes: Vec<(MapPoint, MapPoint)>,
    polynyas: Vec<Polynya>,
    ridge: RidgeField,
    ssh: Fbm,
    freeboard_texture: Fbm,
    water_waves: Fbm,
    reflectance_texture: Fbm,
}

impl Scene {
    /// Generates a scene from the configuration (deterministic in
    /// `config.seed`).
    pub fn generate(config: SceneConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let c = config.center;
        let e = config.half_extent_m;

        let mut leads = Vec::with_capacity(config.n_leads);
        for _ in 0..config.n_leads {
            leads.push(random_lead(&mut rng, c, e, &config));
        }
        let lead_bboxes = leads.iter().map(Lead::bbox).collect();

        let mut polynyas = Vec::with_capacity(config.n_polynyas);
        for _ in 0..config.n_polynyas {
            // Polynyas hug the "coast": the southern (−y) edge of the scene,
            // mirroring the katabatic-wind geometry of the Ross Sea.
            let cx = c.x + rng.random_range(-e..e);
            let cy = c.y - e * rng.random_range(0.55..0.95);
            let (smin, smax) = config.polynya_semi_m;
            let (omin, omax) = config.polynya_open_core;
            polynyas.push(Polynya {
                center: MapPoint::new(cx, cy),
                semi_x_m: rng.random_range(smin..smax),
                semi_y_m: rng.random_range(smin..smax) * 0.6,
                open_core: rng.random_range(omin..omax),
            });
        }

        let (spacing, width, height) = config.ridges;
        Scene {
            ridge: RidgeField::new(config.seed ^ 0xA5A5_0001, spacing, width, height),
            ssh: Fbm::new(config.seed ^ 0xA5A5_0002, 4, 1.0 / config.ssh_wavelength_m),
            freeboard_texture: Fbm::new(config.seed ^ 0xA5A5_0003, 5, 1.0 / 400.0),
            water_waves: Fbm::new(config.seed ^ 0xA5A5_0004, 3, 1.0 / 8.0),
            reflectance_texture: Fbm::new(config.seed ^ 0xA5A5_0005, 4, 1.0 / 900.0),
            config,
            leads,
            lead_bboxes,
            polynyas,
        }
    }

    /// The configuration the scene was generated from.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// The lead network (ice-fixed frame).
    pub fn leads(&self) -> &[Lead] {
        &self.leads
    }

    /// The polynyas (ice-fixed frame).
    pub fn polynyas(&self) -> &[Polynya] {
        &self.polynyas
    }

    /// Sea-surface height at an Earth-fixed point, metres. Independent of
    /// acquisition time (tides vary much slower than the ≤80 min baselines
    /// we model).
    pub fn ssh_at(&self, p: MapPoint) -> f64 {
        self.config.ssh_amplitude_m * 0.5 * self.ssh.sample(p.x, p.y)
    }

    /// True surface class observed at Earth-fixed point `p` at
    /// `t_minutes` after the reference epoch. Ice features are displaced
    /// by the drift model.
    pub fn class_at(&self, p: MapPoint, t_minutes: f64) -> SurfaceClass {
        let q = self.config.drift.to_ice_frame(p, t_minutes);
        // Priority: polynya rings, then leads, then background thick ice.
        for poly in &self.polynyas {
            if let Some(c) = poly.classify(q) {
                return c;
            }
        }
        for (lead, bbox) in self.leads.iter().zip(&self.lead_bboxes) {
            if q.x < bbox.0.x || q.x > bbox.1.x || q.y < bbox.0.y || q.y > bbox.1.y {
                continue;
            }
            if let Some(c) = lead.classify(q) {
                return c;
            }
        }
        SurfaceClass::ThickIce
    }

    /// Full truth sample at Earth-fixed point `p`, time `t_minutes`.
    pub fn sample(&self, p: MapPoint, t_minutes: f64) -> SurfaceSample {
        let class = self.class_at(p, t_minutes);
        let q = self.config.drift.to_ice_frame(p, t_minutes);
        let ssh = self.ssh_at(p);
        let (freeboard, reflectance) = match class {
            SurfaceClass::ThickIce => {
                let texture =
                    self.config.thick_freeboard_texture_m * self.freeboard_texture.sample(q.x, q.y);
                let fb =
                    (self.config.thick_freeboard_m + texture + self.ridge.sail_height(q)).max(0.02);
                let refl =
                    (0.84 + 0.10 * self.reflectance_texture.sample(q.x, q.y)).clamp(0.0, 1.0);
                (fb, refl)
            }
            SurfaceClass::ThinIce => {
                let texture = 0.03 * self.freeboard_texture.sample(q.x + 31.0, q.y - 17.0);
                let fb = (self.config.thin_freeboard_m + texture).max(0.005);
                let refl = (0.32 + 0.08 * self.reflectance_texture.sample(q.x + 31.0, q.y - 17.0))
                    .clamp(0.0, 1.0);
                (fb, refl)
            }
            SurfaceClass::OpenWater => {
                let waves = self.config.water_roughness_m * self.water_waves.sample(p.x, p.y);
                let refl = (0.06 + 0.03 * self.reflectance_texture.sample(p.x - 57.0, p.y + 91.0))
                    .clamp(0.0, 1.0);
                (waves, refl)
            }
        };
        SurfaceSample {
            class,
            elevation_m: ssh + freeboard,
            ssh_m: ssh,
            freeboard_m: freeboard,
            reflectance,
        }
    }

    /// Fraction of `n × n` grid points of each class at time `t_minutes`
    /// (thick, thin, open). Used by tests and workload generators to check
    /// class balance.
    pub fn class_fractions(&self, n: usize, t_minutes: f64) -> [f64; 3] {
        let mut counts = [0usize; 3];
        let c = self.config.center;
        let e = self.config.half_extent_m;
        for i in 0..n {
            for j in 0..n {
                let p = MapPoint::new(
                    c.x - e + 2.0 * e * (i as f64 + 0.5) / n as f64,
                    c.y - e + 2.0 * e * (j as f64 + 0.5) / n as f64,
                );
                counts[self.class_at(p, t_minutes).index()] += 1;
            }
        }
        let total = (n * n) as f64;
        [
            counts[0] as f64 / total,
            counts[1] as f64 / total,
            counts[2] as f64 / total,
        ]
    }
}

fn random_lead(rng: &mut ChaCha8Rng, center: MapPoint, extent: f64, cfg: &SceneConfig) -> Lead {
    // A lead is a jittered random-walk polyline: 3–7 segments, total length
    // 4–30 km, heading persistence with small turns (fractures are roughly
    // straight at these scales).
    let n_seg = rng.random_range(3..=7);
    let total_len = rng.random_range(4_000.0..30_000.0);
    let seg_len = total_len / n_seg as f64;
    let mut heading: f64 = rng.random_range(0.0..std::f64::consts::TAU);
    let mut p = MapPoint::new(
        center.x + rng.random_range(-extent..extent),
        center.y + rng.random_range(-extent..extent),
    );
    let mut path = vec![p];
    for _ in 0..n_seg {
        heading += rng.random_range(-0.35..0.35);
        p = MapPoint::new(p.x + seg_len * heading.cos(), p.y + seg_len * heading.sin());
        path.push(p);
    }
    let (wmin, wmax) = cfg.lead_half_width_m;
    let (omin, omax) = cfg.lead_open_fraction;
    Lead {
        path,
        half_width_m: rng.random_range(wmin..wmax),
        open_fraction: rng.random_range(omin..omax),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scene() -> Scene {
        Scene::generate(SceneConfig::ross_sea(1234))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = scene();
        let b = scene();
        let c = a.config().center;
        for i in 0..200 {
            let p = MapPoint::new(
                c.x + i as f64 * 97.0 - 10_000.0,
                c.y + i as f64 * 53.0 - 6_000.0,
            );
            assert_eq!(a.class_at(p, 0.0), b.class_at(p, 0.0));
            assert_eq!(a.sample(p, 0.0), b.sample(p, 0.0));
        }
    }

    #[test]
    fn thick_ice_dominates_ross_sea() {
        let f = scene().class_fractions(60, 0.0);
        assert!(f[0] > 0.5, "thick fraction {f:?}");
        assert!(f[1] > 0.01, "thin fraction {f:?}");
        assert!(f[2] > 0.005, "open fraction {f:?}");
        assert!((f[0] + f[1] + f[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ice_freeboard_positive_water_near_zero() {
        let s = scene();
        let c = s.config().center;
        let mut checked = [false; 3];
        for i in 0..20_000 {
            let p = MapPoint::new(
                c.x + (i % 200) as f64 * 180.0 - 18_000.0,
                c.y + (i / 200) as f64 * 360.0 - 18_000.0,
            );
            let smp = s.sample(p, 0.0);
            match smp.class {
                SurfaceClass::ThickIce => {
                    assert!(smp.freeboard_m >= 0.02);
                    checked[0] = true;
                }
                SurfaceClass::ThinIce => {
                    assert!(smp.freeboard_m >= 0.005 && smp.freeboard_m < 0.2);
                    checked[1] = true;
                }
                SurfaceClass::OpenWater => {
                    assert!(smp.freeboard_m.abs() < 0.1);
                    checked[2] = true;
                }
            }
            assert!((smp.elevation_m - smp.ssh_m - smp.freeboard_m).abs() < 1e-12);
        }
        assert!(
            checked.iter().all(|&b| b),
            "not all classes sampled: {checked:?}"
        );
    }

    #[test]
    fn reflectance_orders_classes() {
        // Mean reflectance must order thick > thin > water — the contrast
        // both the S2 segmentation and the ATL03 photon rates rely on.
        let s = scene();
        let c = s.config().center;
        let mut sums = [0.0f64; 3];
        let mut counts = [0usize; 3];
        for i in 0..40_000 {
            let p = MapPoint::new(
                c.x + (i % 200) as f64 * 190.0 - 19_000.0,
                c.y + (i / 200) as f64 * 190.0 - 19_000.0,
            );
            let smp = s.sample(p, 0.0);
            sums[smp.class.index()] += smp.reflectance;
            counts[smp.class.index()] += 1;
        }
        let mean = |i: usize| sums[i] / counts[i].max(1) as f64;
        assert!(
            mean(0) > mean(1) + 0.2,
            "thick {} thin {}",
            mean(0),
            mean(1)
        );
        assert!(
            mean(1) > mean(2) + 0.1,
            "thin {} water {}",
            mean(1),
            mean(2)
        );
    }

    #[test]
    fn ssh_is_within_amplitude_and_smooth() {
        let s = scene();
        let c = s.config().center;
        let amp = s.config().ssh_amplitude_m;
        let mut prev = None;
        for i in 0..2_000 {
            let p = MapPoint::new(c.x + i as f64 * 2.0, c.y);
            let h = s.ssh_at(p);
            assert!(h.abs() <= amp / 2.0 + 1e-9);
            if let Some(ph) = prev {
                let dh: f64 = h - ph;
                assert!(dh.abs() < 0.01, "SSH jumped {dh} m over 2 m");
            }
            prev = Some(h);
        }
    }

    #[test]
    fn drift_shifts_classes_rigidly() {
        let drift = DriftModel::from_displacement(400.0, -250.0, 40.0);
        let s = Scene::generate(SceneConfig::ross_sea_with_drift(77, drift));
        let c = s.config().center;
        let (dx, dy) = drift.displacement(40.0);
        for i in 0..2_000 {
            let p = MapPoint::new(
                c.x + (i % 50) as f64 * 400.0 - 10_000.0,
                c.y + (i / 50) as f64 * 400.0 - 8_000.0,
            );
            // A point observed at t=40 min maps to the ice frame point seen
            // at t=0 displaced by −d. So class(p + d, 40) == class(p, 0).
            assert_eq!(
                s.class_at(MapPoint::new(p.x + dx, p.y + dy), 40.0),
                s.class_at(p, 0.0)
            );
        }
    }

    #[test]
    fn ssh_does_not_drift() {
        let drift = DriftModel::from_displacement(500.0, 0.0, 10.0);
        let s = Scene::generate(SceneConfig::ross_sea_with_drift(5, drift));
        let p = MapPoint::new(s.config().center.x, s.config().center.y);
        assert_eq!(s.ssh_at(p), s.ssh_at(p));
        // ssh_at has no time argument by design; sample() at different
        // times keeps the same ssh at a fixed Earth point.
        let a = s.sample(p, 0.0).ssh_m;
        let b = s.sample(p, 60.0).ssh_m;
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_scenes() {
        let a = Scene::generate(SceneConfig::ross_sea(1));
        let b = Scene::generate(SceneConfig::ross_sea(2));
        let c = a.config().center;
        let differing = (0..500)
            .filter(|&i| {
                let p = MapPoint::new(c.x + i as f64 * 73.0, c.y + i as f64 * 41.0);
                a.class_at(p, 0.0) != b.class_at(p, 0.0)
                    || (a.sample(p, 0.0).elevation_m - b.sample(p, 0.0).elevation_m).abs() > 1e-9
            })
            .count();
        assert!(differing > 250, "only {differing}/500 points differ");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// elevation − ssh == freeboard for every sample.
            #[test]
            fn elevation_decomposition(seed in 0u64..50, dx in -15_000.0f64..15_000.0, dy in -15_000.0f64..15_000.0) {
                let s = Scene::generate(SceneConfig::ross_sea(seed));
                let c = s.config().center;
                let smp = s.sample(MapPoint::new(c.x + dx, c.y + dy), 0.0);
                prop_assert!((smp.elevation_m - smp.ssh_m - smp.freeboard_m).abs() < 1e-12);
                prop_assert!(smp.reflectance >= 0.0 && smp.reflectance <= 1.0);
            }

            /// class_at agrees with sample().class.
            #[test]
            fn class_consistency(seed in 0u64..50, dx in -15_000.0f64..15_000.0, dy in -15_000.0f64..15_000.0, t in 0.0f64..80.0) {
                let s = Scene::generate(SceneConfig::ross_sea_with_drift(
                    seed, DriftModel { vx_mps: 0.2, vy_mps: -0.1 }));
                let c = s.config().center;
                let p = MapPoint::new(c.x + dx, c.y + dy);
                prop_assert_eq!(s.class_at(p, t), s.sample(p, t).class);
            }
        }
    }
}
