//! Rigid sea-ice drift between acquisition times.
//!
//! The paper's Table I documents that S2 scenes acquired up to ~48 minutes
//! before/after the IS2 pass are displaced by 0–550 m relative to the IS2
//! track and must be shifted back before label transfer. We model the same
//! effect: the ice field (leads, ridges, freeboard texture) moves as a
//! rigid body with a constant velocity, while the *sea surface height*
//! field does not move (it is tied to the geoid/tide, not the ice).

use icesat_geo::{point::compass_direction, MapPoint};
use serde::{Deserialize, Serialize};

/// Constant-velocity rigid drift in the EPSG-3976 plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftModel {
    /// Ice velocity, metres per second, x-component (grid east).
    pub vx_mps: f64,
    /// Ice velocity, metres per second, y-component (grid north).
    pub vy_mps: f64,
}

impl DriftModel {
    /// No drift.
    pub const STILL: DriftModel = DriftModel {
        vx_mps: 0.0,
        vy_mps: 0.0,
    };

    /// A drift that produces displacement `(dx, dy)` metres over
    /// `dt_minutes` minutes.
    pub fn from_displacement(dx_m: f64, dy_m: f64, dt_minutes: f64) -> Self {
        assert!(dt_minutes != 0.0, "zero time baseline");
        let dt_s = dt_minutes * 60.0;
        DriftModel {
            vx_mps: dx_m / dt_s,
            vy_mps: dy_m / dt_s,
        }
    }

    /// Displacement accumulated over `dt_minutes` minutes, metres.
    pub fn displacement(&self, dt_minutes: f64) -> (f64, f64) {
        let dt_s = dt_minutes * 60.0;
        (self.vx_mps * dt_s, self.vy_mps * dt_s)
    }

    /// Maps a point observed at time `t = dt_minutes` back to the ice-fixed
    /// frame at `t = 0` (subtracts the accumulated displacement).
    pub fn to_ice_frame(&self, p: MapPoint, dt_minutes: f64) -> MapPoint {
        let (dx, dy) = self.displacement(dt_minutes);
        p.shifted(-dx, -dy)
    }

    /// Drift speed, metres per second.
    pub fn speed_mps(&self) -> f64 {
        (self.vx_mps * self.vx_mps + self.vy_mps * self.vy_mps).sqrt()
    }

    /// Formats the displacement over `dt_minutes` the way Table I reports
    /// S2 shifts: `"550 m / NW"`, or `"0 m"` below `round_m` metres.
    pub fn table1_shift(&self, dt_minutes: f64, round_m: f64) -> String {
        let (dx, dy) = self.displacement(dt_minutes);
        let mag = (dx * dx + dy * dy).sqrt();
        // Round to the nearest 50 m like the paper's entries.
        let rounded = (mag / 50.0).round() * 50.0;
        if rounded < round_m {
            "0 m".to_string()
        } else {
            format!("{:.0} m / {}", rounded, compass_direction(dx, dy))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displacement_scales_with_time() {
        let d = DriftModel::from_displacement(550.0, 0.0, 10.0);
        let (dx, dy) = d.displacement(10.0);
        assert!((dx - 550.0).abs() < 1e-9);
        assert!(dy.abs() < 1e-12);
        let (dx2, _) = d.displacement(20.0);
        assert!((dx2 - 1100.0).abs() < 1e-9);
    }

    #[test]
    fn ice_frame_inverts_displacement() {
        let d = DriftModel::from_displacement(-300.0, 400.0, 30.0);
        let obs = MapPoint::new(1000.0, 2000.0);
        let ice = d.to_ice_frame(obs, 30.0);
        assert!((ice.x - 1300.0).abs() < 1e-9);
        assert!((ice.y - 1600.0).abs() < 1e-9);
    }

    #[test]
    fn still_model_is_identity() {
        let p = MapPoint::new(5.0, -7.0);
        assert_eq!(DriftModel::STILL.to_ice_frame(p, 123.0), p);
        assert_eq!(DriftModel::STILL.speed_mps(), 0.0);
    }

    #[test]
    fn table1_formatting() {
        // 550 m toward grid north-west over 9.55 minutes.
        let l = 550.0 / std::f64::consts::SQRT_2;
        let d = DriftModel::from_displacement(-l, l, 9.55);
        assert_eq!(d.table1_shift(9.55, 50.0), "550 m / NW");
        // Negligible drift prints as "0 m".
        let d0 = DriftModel::from_displacement(10.0, 0.0, 60.0);
        assert_eq!(d0.table1_shift(60.0, 50.0), "0 m");
    }

    #[test]
    fn speed_is_euclidean_norm() {
        let d = DriftModel {
            vx_mps: 0.3,
            vy_mps: 0.4,
        };
        assert!((d.speed_mps() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero time baseline")]
    fn zero_baseline_panics() {
        let _ = DriftModel::from_displacement(1.0, 1.0, 0.0);
    }
}
