//! Color-based segmentation with thin-cloud and shadow filtering.
//!
//! Implements the spirit of the paper's ref. \[5\] (color-based segmentation
//! that tolerates thin cloud and shadow) as an explicit physical unmixing.
//! The rendered (and, to good approximation, the real) observation at a
//! pixel is
//!
//! ```text
//! obs_b = (1 − s)·(1 − t)·r_b(class) + (1 − s)·t·A_b
//! ```
//!
//! with `t` the cloud optical thickness, `s` the shadow darkening, `r_b`
//! the class signature and `A_b` the cloud albedo. Substituting
//! `u = (1−s)(1−t)` and `v = (1−s)t` makes the model **linear** in
//! `(u, v)` for a hypothesised class. For each of the three classes we
//! solve the 4-band least squares in closed form, recover `t = v/(u+v)`
//! and `s = 1 − (u+v)`, and keep the class with the smallest residual.
//! Pixels whose best fit needs `t` above the thick-cloud threshold are
//! marked [`Label::Cloud`] — they carry no usable surface information,
//! exactly the pixels the paper excludes and later fixes manually.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use icesat_scene::SurfaceClass;

use crate::raster::{Label, LabelRaster, Raster};
use crate::render::{class_signature, S2Image, CLOUD_ALBEDO};

/// Segmentation knobs.
#[derive(Debug, Clone, PartialEq, Copy, Serialize, Deserialize)]
pub struct SegmentationConfig {
    /// Estimated cloud thickness above which the pixel is unusable.
    pub thick_cloud_t: f64,
    /// Maximum physically-allowed shadow darkening (guards the solver
    /// against degenerate fits).
    pub max_shadow: f64,
}

impl Default for SegmentationConfig {
    fn default() -> Self {
        SegmentationConfig {
            thick_cloud_t: 0.5,
            max_shadow: 0.6,
        }
    }
}

/// Aggregate numbers from one segmentation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentationReport {
    /// Pixels per class (thick, thin, open).
    pub class_counts: [usize; 3],
    /// Pixels masked as thick cloud.
    pub cloud_pixels: usize,
    /// Mean estimated cloud optical thickness over usable pixels.
    pub mean_thin_cloud_t: f64,
    /// Mean estimated shadow darkening over usable pixels.
    pub mean_shadow_s: f64,
}

/// Per-pixel unmixing result.
#[derive(Debug, Clone, Copy)]
struct Fit {
    class: SurfaceClass,
    t: f64,
    s: f64,
    residual: f64,
}

/// Segments an image into the three surface classes plus a thick-cloud
/// mask.
pub fn segment_image(img: &S2Image, cfg: &SegmentationConfig) -> (LabelRaster, SegmentationReport) {
    let w = img.width();
    let h = img.height();

    let results: Vec<(Label, f64, f64)> = (0..h)
        .into_par_iter()
        .flat_map_iter(|row| {
            let img = &img;
            (0..w).map(move |col| {
                let obs = img.bands(col, row);
                let fit = best_fit(&obs, cfg);
                if fit.t > cfg.thick_cloud_t {
                    (Label::Cloud, fit.t, fit.s)
                } else {
                    (Label::Class(fit.class), fit.t, fit.s)
                }
            })
        })
        .collect();

    let mut class_counts = [0usize; 3];
    let mut cloud_pixels = 0usize;
    let mut t_sum = 0.0;
    let mut s_sum = 0.0;
    let mut usable = 0usize;
    let mut labels = Vec::with_capacity(results.len());
    for (label, t, s) in results {
        match label {
            Label::Class(c) => {
                class_counts[c.index()] += 1;
                t_sum += t;
                s_sum += s;
                usable += 1;
            }
            Label::Cloud => cloud_pixels += 1,
        }
        labels.push(label);
    }

    let raster = Raster::from_data(w, h, img.b02.origin(), img.b02.pixel_size_m(), labels);
    let report = SegmentationReport {
        class_counts,
        cloud_pixels,
        mean_thin_cloud_t: if usable > 0 {
            t_sum / usable as f64
        } else {
            0.0
        },
        mean_shadow_s: if usable > 0 {
            s_sum / usable as f64
        } else {
            0.0
        },
    };
    (raster, report)
}

/// Solves the per-class linear unmixing and returns the best class.
fn best_fit(obs: &[f64; 4], cfg: &SegmentationConfig) -> Fit {
    let mut best: Option<Fit> = None;
    for class in SurfaceClass::ALL {
        let fit = fit_class(obs, class, cfg);
        if best.map(|b| fit.residual < b.residual).unwrap_or(true) {
            best = Some(fit);
        }
    }
    best.unwrap()
}

/// Least-squares `(u, v)` for one hypothesised class, with physical
/// constraints `u ≥ 0`, `v ≥ 0`, `u + v ≤ 1`, `s ≤ max_shadow`.
fn fit_class(obs: &[f64; 4], class: SurfaceClass, cfg: &SegmentationConfig) -> Fit {
    let r = class_signature(class);
    let a = CLOUD_ALBEDO;
    // Normal equations for obs ≈ u·r + v·a.
    let (mut rr, mut ra, mut aa, mut ro, mut ao) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for b in 0..4 {
        rr += r[b] * r[b];
        ra += r[b] * a[b];
        aa += a[b] * a[b];
        ro += r[b] * obs[b];
        ao += a[b] * obs[b];
    }
    let det = rr * aa - ra * ra;
    let (mut u, mut v) = if det.abs() < 1e-12 {
        (ro / rr.max(1e-12), 0.0)
    } else {
        ((aa * ro - ra * ao) / det, (rr * ao - ra * ro) / det)
    };

    // Project onto the physical region.
    if v < 0.0 {
        v = 0.0;
        u = (ro / rr.max(1e-12)).max(0.0);
    }
    if u < 0.0 {
        u = 0.0;
        v = (ao / aa.max(1e-12)).max(0.0);
    }
    let sum = u + v;
    let min_uv = 1.0 - cfg.max_shadow;
    if sum > 1.0 {
        // s < 0 is unphysical: rescale onto u + v = 1.
        u /= sum;
        v /= sum;
    } else if sum < min_uv && sum > 0.0 {
        // Deeper shadow than allowed: rescale up.
        u *= min_uv / sum;
        v *= min_uv / sum;
    }

    let mut residual = 0.0;
    for b in 0..4 {
        let model = u * r[b] + v * a[b];
        residual += (obs[b] - model).powi(2);
    }
    let t = if u + v > 1e-9 { v / (u + v) } else { 0.0 };
    let s = (1.0 - (u + v)).clamp(0.0, 1.0);
    Fit {
        class,
        t,
        s,
        residual: residual.sqrt(),
    }
}

/// Scores a label raster against the rendered truth: returns
/// `(accuracy_on_usable, n_usable)`, where a pixel is usable when both
/// rasters agree it is not cloud.
pub fn score_against_truth(labels: &LabelRaster, truth: &LabelRaster) -> (f64, usize) {
    assert_eq!(labels.width(), truth.width());
    assert_eq!(labels.height(), truth.height());
    let mut correct = 0usize;
    let mut usable = 0usize;
    for (l, t) in labels.data().iter().zip(truth.data()) {
        if let (Label::Class(lc), Label::Class(tc)) = (l, t) {
            usable += 1;
            if lc == tc {
                correct += 1;
            }
        }
    }
    if usable == 0 {
        (0.0, 0)
    } else {
        (correct as f64 / usable as f64, usable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::{render_scene, RenderConfig};
    use icesat_scene::{Scene, SceneConfig};

    fn image(seed: u64, cloud: f64) -> S2Image {
        let mut sc = SceneConfig::ross_sea(seed);
        sc.half_extent_m = 3_000.0;
        let scene = Scene::generate(sc);
        render_scene(
            &scene,
            &RenderConfig {
                seed,
                pixel_size_m: 40.0,
                cloud_cover: cloud,
                ..RenderConfig::default()
            },
        )
    }

    #[test]
    fn clean_signatures_classify_exactly() {
        let cfg = SegmentationConfig::default();
        for class in SurfaceClass::ALL {
            let obs = class_signature(class);
            let fit = best_fit(&obs, &cfg);
            assert_eq!(fit.class, class);
            assert!(fit.t < 0.05, "spurious cloud t = {}", fit.t);
            assert!(fit.s < 0.05, "spurious shadow s = {}", fit.s);
        }
    }

    #[test]
    fn thin_cloud_is_seen_through() {
        let cfg = SegmentationConfig::default();
        for class in SurfaceClass::ALL {
            let r = class_signature(class);
            let t = 0.3;
            let obs = [
                r[0] * (1.0 - t) + CLOUD_ALBEDO[0] * t,
                r[1] * (1.0 - t) + CLOUD_ALBEDO[1] * t,
                r[2] * (1.0 - t) + CLOUD_ALBEDO[2] * t,
                r[3] * (1.0 - t) + CLOUD_ALBEDO[3] * t,
            ];
            let fit = best_fit(&obs, &cfg);
            assert_eq!(fit.class, class, "misclassified under thin cloud");
            assert!((fit.t - t).abs() < 0.05, "t estimate {} vs {}", fit.t, t);
        }
    }

    #[test]
    fn shadow_is_tolerated() {
        let cfg = SegmentationConfig::default();
        for class in [SurfaceClass::ThickIce, SurfaceClass::ThinIce] {
            let r = class_signature(class);
            let s = 0.3;
            let obs = [
                r[0] * (1.0 - s),
                r[1] * (1.0 - s),
                r[2] * (1.0 - s),
                r[3] * (1.0 - s),
            ];
            let fit = best_fit(&obs, &cfg);
            assert_eq!(fit.class, class, "misclassified in shadow");
            assert!((fit.s - s).abs() < 0.1, "s estimate {} vs {}", fit.s, s);
        }
    }

    #[test]
    fn thick_cloud_is_masked() {
        let cfg = SegmentationConfig::default();
        let t = 0.85;
        let r = class_signature(SurfaceClass::ThickIce);
        let obs = [
            r[0] * (1.0 - t) + CLOUD_ALBEDO[0] * t,
            r[1] * (1.0 - t) + CLOUD_ALBEDO[1] * t,
            r[2] * (1.0 - t) + CLOUD_ALBEDO[2] * t,
            r[3] * (1.0 - t) + CLOUD_ALBEDO[3] * t,
        ];
        let fit = best_fit(&obs, &cfg);
        assert!(
            fit.t > cfg.thick_cloud_t,
            "thick cloud not detected: t = {}",
            fit.t
        );
    }

    #[test]
    fn clear_scene_accuracy_is_high() {
        let img = image(21, 0.0);
        let (labels, report) = segment_image(&img, &SegmentationConfig::default());
        let (acc, usable) = score_against_truth(&labels, &img.truth);
        assert!(usable > 1000);
        assert!(acc > 0.95, "clear-sky accuracy {acc}");
        assert_eq!(
            report.cloud_pixels + report.class_counts.iter().sum::<usize>(),
            labels.data().len()
        );
    }

    #[test]
    fn cloudy_scene_accuracy_stays_usable() {
        let img = image(23, 0.45);
        let (labels, report) = segment_image(&img, &SegmentationConfig::default());
        let (acc, usable) = score_against_truth(&labels, &img.truth);
        assert!(usable > 500);
        assert!(acc > 0.88, "cloudy accuracy {acc}");
        assert!(report.mean_thin_cloud_t > 0.0);
    }

    #[test]
    fn report_counts_are_consistent() {
        let img = image(29, 0.3);
        let (labels, report) = segment_image(&img, &SegmentationConfig::default());
        let from_raster = labels
            .data()
            .iter()
            .filter(|l| matches!(l, Label::Cloud))
            .count();
        assert_eq!(report.cloud_pixels, from_raster);
        let total: usize = report.class_counts.iter().sum();
        assert_eq!(total + report.cloud_pixels, labels.data().len());
    }

    #[test]
    fn segmentation_is_deterministic() {
        let img = image(31, 0.4);
        let (a, _) = segment_image(&img, &SegmentationConfig::default());
        let (b, _) = segment_image(&img, &SegmentationConfig::default());
        assert_eq!(a.data(), b.data());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// For any synthetic mixture of a class with cloud and shadow
            /// inside the physical region, the classifier recovers the
            /// class (thin ambiguity aside, the residual of the true class
            /// is zero by construction).
            #[test]
            fn unmixing_recovers_class(
                class_idx in 0usize..3,
                t in 0.0f64..0.45,
                s in 0.0f64..0.35,
            ) {
                let class = SurfaceClass::from_index(class_idx).unwrap();
                let r = class_signature(class);
                let mut obs = [0f64; 4];
                for b in 0..4 {
                    obs[b] = (1.0 - s) * ((1.0 - t) * r[b] + t * CLOUD_ALBEDO[b]);
                }
                let fit = best_fit(&obs, &SegmentationConfig::default());
                prop_assert_eq!(fit.class, class);
                prop_assert!((fit.t - t).abs() < 0.08);
            }
        }
    }
}
