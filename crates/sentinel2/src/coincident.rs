//! IS2 × S2 coincident pairs (paper Table I).
//!
//! The paper searches for S2 scenes within 80 minutes of an IS2 pass; the
//! ice drifts in between, so the segmented S2 labels are displaced
//! relative to the IS2 track and must be shifted back. A
//! [`CoincidentPair`] bundles the rendered+segmented S2 scene with its
//! acquisition offset and the *true* displacement (for scoring the drift
//! estimator, which lives in the `seaice` crate).

use icesat_scene::Scene;
use serde::{Deserialize, Serialize};

use crate::raster::LabelRaster;
use crate::render::{render_scene, RenderConfig, S2Image};
use crate::segmentation::{segment_image, SegmentationConfig, SegmentationReport};

/// Configuration for building a coincident pair.
#[derive(Debug, Clone, PartialEq, Copy, Serialize, Deserialize, Default)]
pub struct PairConfig {
    /// Renderer settings (including `acquisition_offset_min`).
    pub render: RenderConfig,
    /// Segmentation settings.
    pub segmentation: SegmentationConfig,
}

/// A coincident S2 acquisition for an IS2 pass over the same scene.
#[derive(Debug, Clone)]
pub struct CoincidentPair {
    /// The rendered S2 scene (bands + truth).
    pub image: S2Image,
    /// Segmented labels (what the real pipeline would have — *not* truth).
    pub labels: LabelRaster,
    /// Segmentation statistics.
    pub report: SegmentationReport,
    /// Minutes between IS2 (epoch 0) and S2 acquisition.
    pub time_difference_min: f64,
    /// True ice displacement (S2 relative to IS2 frame), metres.
    pub true_shift_m: (f64, f64),
}

impl CoincidentPair {
    /// Renders and segments the S2 half of a pair over `scene`, acquired
    /// `cfg.render.acquisition_offset_min` minutes from the IS2 pass.
    pub fn build(scene: &Scene, cfg: &PairConfig) -> CoincidentPair {
        let image = render_scene(scene, &cfg.render);
        let (labels, report) = segment_image(&image, &cfg.segmentation);
        let dt = cfg.render.acquisition_offset_min;
        let true_shift_m = scene.config().drift.displacement(dt);
        CoincidentPair {
            image,
            labels,
            report,
            time_difference_min: dt,
            true_shift_m,
        }
    }

    /// Labels shifted by `(dx, dy)` metres — the Table I correction. A
    /// *correct* correction uses the negated true shift so the labels
    /// re-align with the IS2 (epoch 0) ice positions.
    pub fn shifted_labels(&self, dx: f64, dy: f64) -> LabelRaster {
        self.labels.shifted(dx, dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raster::Label;
    use icesat_geo::MapPoint;
    use icesat_scene::{DriftModel, SceneConfig, SurfaceClass};

    fn drifting_scene(seed: u64) -> Scene {
        let mut sc = SceneConfig::ross_sea_with_drift(
            seed,
            DriftModel::from_displacement(380.0, -270.0, 35.0),
        );
        sc.half_extent_m = 3_000.0;
        Scene::generate(sc)
    }

    fn pair_cfg(dt: f64) -> PairConfig {
        PairConfig {
            render: RenderConfig {
                seed: 9,
                pixel_size_m: 40.0,
                acquisition_offset_min: dt,
                ..RenderConfig::default()
            },
            segmentation: SegmentationConfig::default(),
        }
    }

    #[test]
    fn true_shift_matches_drift_model() {
        let scene = drifting_scene(41);
        let pair = CoincidentPair::build(&scene, &pair_cfg(35.0));
        assert!((pair.true_shift_m.0 - 380.0).abs() < 1e-9);
        assert!((pair.true_shift_m.1 - -270.0).abs() < 1e-9);
        assert_eq!(pair.time_difference_min, 35.0);
    }

    #[test]
    fn zero_offset_pair_has_zero_shift() {
        let scene = drifting_scene(43);
        let pair = CoincidentPair::build(&scene, &pair_cfg(0.0));
        assert_eq!(pair.true_shift_m, (0.0, 0.0));
    }

    #[test]
    fn shift_correction_realigns_labels_with_epoch_truth() {
        // Sample the S2 labels at IS2-time truth points: uncorrected
        // agreement should be worse than agreement after shifting the
        // raster by the negated true displacement.
        let scene = drifting_scene(45);
        let pair = CoincidentPair::build(&scene, &pair_cfg(35.0));
        let (dx, dy) = pair.true_shift_m;
        let corrected = pair.shifted_labels(-dx, -dy);

        let c = scene.config().center;
        let mut raw_hits = 0usize;
        let mut cor_hits = 0usize;
        let mut n = 0usize;
        for i in 0..4000 {
            let p = MapPoint::new(
                c.x + ((i % 64) as f64 - 32.0) * 80.0,
                c.y + ((i / 64) as f64 - 32.0) * 80.0,
            );
            let truth: SurfaceClass = scene.class_at(p, 0.0);
            let raw = pair.labels.sample(p).copied();
            let cor = corrected.sample(p).copied();
            if let (Some(Label::Class(r)), Some(Label::Class(k))) = (raw, cor) {
                n += 1;
                if r == truth {
                    raw_hits += 1;
                }
                if k == truth {
                    cor_hits += 1;
                }
            }
        }
        assert!(n > 2000);
        let raw_acc = raw_hits as f64 / n as f64;
        let cor_acc = cor_hits as f64 / n as f64;
        assert!(
            cor_acc > raw_acc,
            "shift correction did not help: raw {raw_acc:.3} vs corrected {cor_acc:.3}"
        );
        assert!(cor_acc > 0.93, "corrected accuracy {cor_acc:.3}");
    }
}
