//! Synthetic Sentinel-2 scene renderer.
//!
//! Renders the four 10 m bands the segmentation uses — B02 (blue), B03
//! (green), B04 (red), B08 (NIR) — as top-of-atmosphere reflectances:
//!
//! 1. sample the truth scene at each pixel centre *at the S2 acquisition
//!    time* (so ice drift displaces the image relative to the IS2 track),
//! 2. turn the scene's broadband reflectance into band values through
//!    per-class spectral shapes (snow is bright and flat, thin ice grey
//!    with a NIR drop, water dark and NIR-black),
//! 3. add Gaussian sensor noise,
//! 4. composite a thin/thick **cloud** layer (fBm optical-thickness field,
//!    spectrally almost flat) and the matching displaced **cloud shadow**.
//!
//! The renderer also exports the pixel-exact truth labels + thick-cloud
//! mask so segmentation accuracy can be scored.

use icesat_geo::MapPoint;
use icesat_scene::{Fbm, Scene, SurfaceClass};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::raster::{Label, LabelRaster, Raster};

/// Band spectral shape per class: multipliers applied to the scene's
/// broadband reflectance, order `[B02, B03, B04, B08]`.
pub fn class_spectral_shape(class: SurfaceClass) -> [f64; 4] {
    match class {
        SurfaceClass::ThickIce => [1.00, 0.98, 0.96, 0.82],
        SurfaceClass::ThinIce => [0.95, 1.00, 0.90, 0.50],
        SurfaceClass::OpenWater => [1.00, 0.90, 0.70, 0.30],
    }
}

/// Canonical (texture-free) band signature per class, used by the
/// physics-based segmentation: shape × the class's mean broadband
/// reflectance from the scene model.
pub fn class_signature(class: SurfaceClass) -> [f64; 4] {
    let base = match class {
        SurfaceClass::ThickIce => 0.84,
        SurfaceClass::ThinIce => 0.32,
        SurfaceClass::OpenWater => 0.06,
    };
    let shape = class_spectral_shape(class);
    [
        shape[0] * base,
        shape[1] * base,
        shape[2] * base,
        shape[3] * base,
    ]
}

/// Cloud single-scattering albedo per band (bright, slightly blue).
pub const CLOUD_ALBEDO: [f64; 4] = [0.78, 0.77, 0.76, 0.72];

/// Renderer configuration.
#[derive(Debug, Clone, PartialEq, Copy, Serialize, Deserialize)]
pub struct RenderConfig {
    /// RNG seed for sensor noise and the cloud field.
    pub seed: u64,
    /// Pixel size, metres (S2 visible/NIR bands: 10 m; tests often use
    /// coarser grids for speed).
    pub pixel_size_m: f64,
    /// Gaussian sensor noise σ in reflectance units.
    pub sensor_noise: f64,
    /// Cloud coverage control in `[0, 1]`: 0 = clear sky.
    pub cloud_cover: f64,
    /// Dominant cloud wavelength, metres.
    pub cloud_scale_m: f64,
    /// Peak shadow darkening fraction in `[0, 1]`.
    pub shadow_strength: f64,
    /// Shadow displacement from its cloud, metres (sun geometry), x then y.
    pub shadow_offset_m: (f64, f64),
    /// Minutes from the scene epoch (IS2 pass) to this S2 acquisition;
    /// drives drift displacement. Negative = S2 acquired earlier.
    pub acquisition_offset_min: f64,
    /// Optical thickness above which a pixel counts as thick cloud in the
    /// exported truth mask.
    pub thick_cloud_threshold: f64,
}

impl Default for RenderConfig {
    fn default() -> Self {
        RenderConfig {
            seed: 0,
            pixel_size_m: 10.0,
            sensor_noise: 0.012,
            cloud_cover: 0.0,
            cloud_scale_m: 9_000.0,
            shadow_strength: 0.35,
            shadow_offset_m: (1_400.0, -900.0),
            acquisition_offset_min: 0.0,
            thick_cloud_threshold: 0.55,
        }
    }
}

/// A rendered four-band Sentinel-2 scene plus pixel-exact truth.
#[derive(Debug, Clone)]
pub struct S2Image {
    /// Blue band reflectance.
    pub b02: Raster<f32>,
    /// Green band reflectance.
    pub b03: Raster<f32>,
    /// Red band reflectance.
    pub b04: Raster<f32>,
    /// Near-infrared band reflectance.
    pub b08: Raster<f32>,
    /// Truth labels with the thick-cloud mask applied — the scoring
    /// reference, *not* an input to segmentation.
    pub truth: LabelRaster,
    /// Minutes from the scene epoch to this acquisition.
    pub acquisition_offset_min: f64,
}

impl S2Image {
    /// Observed band vector at pixel `(col, row)`.
    pub fn bands(&self, col: usize, row: usize) -> [f64; 4] {
        [
            *self.b02.get(col, row) as f64,
            *self.b03.get(col, row) as f64,
            *self.b04.get(col, row) as f64,
            *self.b08.get(col, row) as f64,
        ]
    }

    /// Raster width, pixels.
    pub fn width(&self) -> usize {
        self.b02.width()
    }

    /// Raster height, pixels.
    pub fn height(&self) -> usize {
        self.b02.height()
    }
}

/// Renders the square region `scene.config().center ± half_extent` at the
/// configured pixel size and acquisition time.
pub fn render_scene(scene: &Scene, cfg: &RenderConfig) -> S2Image {
    let c = scene.config().center;
    let e = scene.config().half_extent_m;
    let n = ((2.0 * e) / cfg.pixel_size_m).round() as usize;
    assert!(n > 0, "degenerate raster");
    let origin = MapPoint::new(c.x - e, c.y + e);

    let cloud = Fbm::new(cfg.seed ^ 0x5151_AAAA, 4, 1.0 / cfg.cloud_scale_m);
    let noise = Fbm::new(cfg.seed ^ 0x5151_BBBB, 1, 1.0 / (cfg.pixel_size_m * 0.9));
    let t = cfg.acquisition_offset_min;

    // Render rows in parallel; each row produces its slice of each band
    // (B02, B03, B04, B08, truth labels).
    type BandRow = (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>, Vec<Label>);
    let rows: Vec<BandRow> = (0..n)
        .into_par_iter()
        .map(|row| {
            let mut r02 = Vec::with_capacity(n);
            let mut r03 = Vec::with_capacity(n);
            let mut r04 = Vec::with_capacity(n);
            let mut r08 = Vec::with_capacity(n);
            let mut rlab = Vec::with_capacity(n);
            for col in 0..n {
                let p = MapPoint::new(
                    origin.x + (col as f64 + 0.5) * cfg.pixel_size_m,
                    origin.y - (row as f64 + 0.5) * cfg.pixel_size_m,
                );
                let truth = scene.sample(p, t);
                let shape = class_spectral_shape(truth.class);
                let opt = cloud_optical_thickness(&cloud, p, cfg.cloud_cover);
                let shadow_src =
                    MapPoint::new(p.x + cfg.shadow_offset_m.0, p.y + cfg.shadow_offset_m.1);
                let s = cfg.shadow_strength
                    * cloud_optical_thickness(&cloud, shadow_src, cfg.cloud_cover);

                let mut bands = [0f64; 4];
                for (b, band) in bands.iter_mut().enumerate() {
                    let surf = shape[b] * truth.reflectance;
                    let with_cloud = surf * (1.0 - opt) + CLOUD_ALBEDO[b] * opt;
                    // Shadows darken the surface contribution only.
                    let shaded = with_cloud * (1.0 - s * (1.0 - opt));
                    // Deterministic per-pixel-per-band "sensor noise".
                    let nz = cfg.sensor_noise
                        * noise.sample(p.x + 1_000_003.0 * b as f64, p.y - 777_777.0 * b as f64);
                    *band = (shaded + nz).clamp(0.0, 1.2);
                }
                r02.push(bands[0] as f32);
                r03.push(bands[1] as f32);
                r04.push(bands[2] as f32);
                r08.push(bands[3] as f32);
                rlab.push(if opt > cfg.thick_cloud_threshold {
                    Label::Cloud
                } else {
                    Label::Class(truth.class)
                });
            }
            (r02, r03, r04, r08, rlab)
        })
        .collect();

    let mut d02 = Vec::with_capacity(n * n);
    let mut d03 = Vec::with_capacity(n * n);
    let mut d04 = Vec::with_capacity(n * n);
    let mut d08 = Vec::with_capacity(n * n);
    let mut dlab = Vec::with_capacity(n * n);
    for (a, b, c2, d, l) in rows {
        d02.extend(a);
        d03.extend(b);
        d04.extend(c2);
        d08.extend(d);
        dlab.extend(l);
    }

    S2Image {
        b02: Raster::from_data(n, n, origin, cfg.pixel_size_m, d02),
        b03: Raster::from_data(n, n, origin, cfg.pixel_size_m, d03),
        b04: Raster::from_data(n, n, origin, cfg.pixel_size_m, d04),
        b08: Raster::from_data(n, n, origin, cfg.pixel_size_m, d08),
        truth: Raster::from_data(n, n, origin, cfg.pixel_size_m, dlab),
        acquisition_offset_min: cfg.acquisition_offset_min,
    }
}

/// Cloud optical thickness in `[0, 0.9]` at `p` for coverage `cover`.
fn cloud_optical_thickness(cloud: &Fbm, p: MapPoint, cover: f64) -> f64 {
    if cover <= 0.0 {
        return 0.0;
    }
    // fBm normalisation concentrates values near 0; expand by 1.5 so the
    // optical-thickness field reaches both clear sky and opaque cloud.
    let c = 0.5 * ((1.5 * cloud.sample(p.x, p.y)).clamp(-1.0, 1.0) + 1.0); // [0, 1]
    let threshold = 1.0 - cover;
    (((c - threshold) / (1.0 - threshold).max(1e-9)).clamp(0.0, 1.0) * 0.9).min(0.9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icesat_scene::SceneConfig;

    fn small_image(seed: u64, cloud_cover: f64) -> (Scene, S2Image) {
        let mut sc = SceneConfig::ross_sea(seed);
        sc.half_extent_m = 3_000.0; // keep test rasters small
        let scene = Scene::generate(sc);
        let cfg = RenderConfig {
            seed,
            pixel_size_m: 40.0,
            cloud_cover,
            // Small test scenes need several independent cloud cells.
            cloud_scale_m: 2_500.0,
            ..RenderConfig::default()
        };
        let img = render_scene(&scene, &cfg);
        (scene, img)
    }

    #[test]
    fn render_is_deterministic() {
        let (_, a) = small_image(3, 0.3);
        let (_, b) = small_image(3, 0.3);
        assert_eq!(a.b02.data(), b.b02.data());
        assert_eq!(a.b08.data(), b.b08.data());
        assert_eq!(a.truth.data(), b.truth.data());
    }

    #[test]
    fn raster_covers_scene_extent() {
        let (scene, img) = small_image(5, 0.0);
        let c = scene.config().center;
        let e = scene.config().half_extent_m;
        assert_eq!(img.width(), (2.0 * e / 40.0) as usize);
        // Pixel centres at the corners stay inside the scene square.
        let nw = img.b02.pixel_to_map(0, 0);
        assert!((nw.x - (c.x - e + 20.0)).abs() < 1e-9);
        assert!((nw.y - (c.y + e - 20.0)).abs() < 1e-9);
    }

    #[test]
    fn clear_sky_signatures_separate_classes() {
        let (_, img) = small_image(7, 0.0);
        let mut sums = [[0f64; 4]; 3];
        let mut counts = [0usize; 3];
        for row in 0..img.height() {
            for col in 0..img.width() {
                if let Label::Class(c) = img.truth.get(col, row) {
                    let b = img.bands(col, row);
                    for k in 0..4 {
                        sums[c.index()][k] += b[k];
                    }
                    counts[c.index()] += 1;
                }
            }
        }
        assert!(counts.iter().all(|&c| c > 10), "counts {counts:?}");
        let mean = |i: usize, k: usize| sums[i][k] / counts[i] as f64;
        // Visible brightness separates thick > thin > water.
        assert!(mean(0, 1) > mean(1, 1) + 0.2);
        assert!(mean(1, 1) > mean(2, 1) + 0.1);
        // NIR drop of thin ice vs its green: shape check.
        assert!(mean(1, 3) < mean(1, 1) * 0.7);
        // Water is NIR-black.
        assert!(mean(2, 3) < 0.06);
    }

    #[test]
    fn clouds_brighten_water_and_mask_truth() {
        let (_, clear) = small_image(11, 0.0);
        let (_, cloudy) = small_image(11, 0.7);
        let n_cloud = cloudy
            .truth
            .data()
            .iter()
            .filter(|l| **l == Label::Cloud)
            .count();
        assert!(n_cloud > 0, "no thick cloud at 0.7 cover");
        assert_eq!(
            clear
                .truth
                .data()
                .iter()
                .filter(|l| **l == Label::Cloud)
                .count(),
            0
        );
        // Mean blue brightness rises under cloud.
        let mean = |img: &S2Image| {
            img.b02.data().iter().map(|&v| v as f64).sum::<f64>() / img.b02.data().len() as f64
        };
        assert!(mean(&cloudy) > mean(&clear) - 0.02);
    }

    #[test]
    fn reflectances_are_physical() {
        let (_, img) = small_image(13, 0.5);
        for r in [&img.b02, &img.b03, &img.b04, &img.b08] {
            assert!(r.data().iter().all(|&v| (0.0..=1.2).contains(&v)));
        }
    }

    #[test]
    fn acquisition_time_displaces_ice() {
        // With drift, the same pixel grid rendered at t=0 and t=40 min
        // must differ (the ice moved), and the fraction of differing truth
        // labels should be small but nonzero.
        let mut sc = SceneConfig::ross_sea(17);
        sc.half_extent_m = 3_000.0;
        sc.drift = icesat_scene::DriftModel::from_displacement(400.0, 300.0, 40.0);
        let scene = Scene::generate(sc);
        let base = RenderConfig {
            seed: 17,
            pixel_size_m: 40.0,
            ..RenderConfig::default()
        };
        let img0 = render_scene(&scene, &base);
        let img40 = render_scene(
            &scene,
            &RenderConfig {
                acquisition_offset_min: 40.0,
                ..base
            },
        );
        let differing = img0
            .truth
            .data()
            .iter()
            .zip(img40.truth.data())
            .filter(|(a, b)| a != b)
            .count();
        assert!(differing > 0, "drift had no effect");
        assert!(
            (differing as f64) < 0.5 * img0.truth.data().len() as f64,
            "drift changed more than half the labels"
        );
    }

    #[test]
    fn class_signature_matches_shape_times_base() {
        for c in SurfaceClass::ALL {
            let sig = class_signature(c);
            let shape = class_spectral_shape(c);
            for k in 1..4 {
                // Ratios of signature entries equal ratios of shape entries.
                let a = sig[k] / sig[0];
                let b = shape[k] / shape[0];
                assert!((a - b).abs() < 1e-12);
            }
        }
    }
}
