//! Sentinel-2 substrate: synthetic multi-spectral scenes and the
//! color-based segmentation used for IS2 auto-labeling.
//!
//! The paper labels ATL03 photons by overlaying coincident Sentinel-2 L1C
//! images segmented with a *thin-cloud and shadow-filtered color-based*
//! method (their ref. \[5\]). We render statistically equivalent S2 scenes
//! from the same truth [`icesat_scene::Scene`] the ATL03 generator uses:
//!
//! - [`raster`] — georeferenced rasters in the EPSG-3976 plane,
//! - [`render`] — the scene renderer: per-class spectral signatures for
//!   B02/B03/B04/B08, sensor noise, thin/thick cloud and shadow layers,
//! - [`segmentation`] — the color-based classifier with a dark-channel
//!   haze (thin cloud) correction, shadow-tolerant water test, and a
//!   thick-cloud validity mask,
//! - [`coincident`] — builds the IS2×S2 coincident pair: an S2 scene
//!   acquired `dt` minutes from the IS2 pass, displaced by ice drift
//!   (paper Table I).

pub mod coincident;
pub mod raster;
pub mod render;
pub mod segmentation;

pub use coincident::{CoincidentPair, PairConfig};
pub use raster::{Label, LabelRaster, Raster};
pub use render::{render_scene, RenderConfig, S2Image};
pub use segmentation::{segment_image, SegmentationConfig, SegmentationReport};
