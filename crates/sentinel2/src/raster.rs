//! Georeferenced rasters in the EPSG-3976 plane.
//!
//! A [`Raster`] is a row-major grid with a north-up geotransform: pixel
//! `(0, 0)` is the north-west corner, `x` grows east, `y` grows south.
//! That matches Sentinel-2 L1C tiling and keeps map↔pixel conversion a
//! two-multiply affair.

use icesat_geo::MapPoint;
use serde::{Deserialize, Serialize};

/// Row-major georeferenced grid of `T`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Raster<T> {
    width: usize,
    height: usize,
    /// Map coordinates of the *outer corner* of pixel (0,0) — the NW
    /// corner of the raster.
    origin: MapPoint,
    /// Pixel edge length, metres.
    pixel_size_m: f64,
    data: Vec<T>,
}

impl<T: Clone> Raster<T> {
    /// Creates a raster filled with `fill`.
    pub fn filled(
        width: usize,
        height: usize,
        origin: MapPoint,
        pixel_size_m: f64,
        fill: T,
    ) -> Self {
        assert!(width > 0 && height > 0, "raster must be non-empty");
        assert!(pixel_size_m > 0.0, "pixel size must be positive");
        Raster {
            width,
            height,
            origin,
            pixel_size_m,
            data: vec![fill; width * height],
        }
    }

    /// Creates a raster from row-major data (length must be `w*h`).
    pub fn from_data(
        width: usize,
        height: usize,
        origin: MapPoint,
        pixel_size_m: f64,
        data: Vec<T>,
    ) -> Self {
        assert_eq!(data.len(), width * height, "data length mismatch");
        assert!(pixel_size_m > 0.0, "pixel size must be positive");
        Raster {
            width,
            height,
            origin,
            pixel_size_m,
            data,
        }
    }

    /// Raster width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Raster height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// NW-corner origin in map coordinates.
    pub fn origin(&self) -> MapPoint {
        self.origin
    }

    /// Pixel edge length, metres.
    pub fn pixel_size_m(&self) -> f64 {
        self.pixel_size_m
    }

    /// Borrow the row-major data.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the row-major data.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Value at pixel `(col, row)`; panics out of bounds.
    #[inline]
    pub fn get(&self, col: usize, row: usize) -> &T {
        assert!(col < self.width && row < self.height, "pixel out of bounds");
        &self.data[row * self.width + col]
    }

    /// Sets pixel `(col, row)`.
    #[inline]
    pub fn set(&mut self, col: usize, row: usize, value: T) {
        assert!(col < self.width && row < self.height, "pixel out of bounds");
        self.data[row * self.width + col] = value;
    }

    /// Map coordinates of the *centre* of pixel `(col, row)`.
    pub fn pixel_to_map(&self, col: usize, row: usize) -> MapPoint {
        MapPoint::new(
            self.origin.x + (col as f64 + 0.5) * self.pixel_size_m,
            self.origin.y - (row as f64 + 0.5) * self.pixel_size_m,
        )
    }

    /// Pixel containing map point `p`, or `None` if outside the raster.
    pub fn map_to_pixel(&self, p: MapPoint) -> Option<(usize, usize)> {
        let fx = (p.x - self.origin.x) / self.pixel_size_m;
        let fy = (self.origin.y - p.y) / self.pixel_size_m;
        if fx < 0.0 || fy < 0.0 {
            return None;
        }
        let (col, row) = (fx as usize, fy as usize);
        if col < self.width && row < self.height {
            Some((col, row))
        } else {
            None
        }
    }

    /// Value at the pixel containing `p`, or `None` outside.
    pub fn sample(&self, p: MapPoint) -> Option<&T> {
        self.map_to_pixel(p).map(|(c, r)| self.get(c, r))
    }

    /// Returns a raster with the same grid whose origin is shifted by
    /// `(dx, dy)` metres — the "shift of S2 images" drift correction of
    /// the paper's Table I (pure georeferencing change; pixels untouched).
    pub fn shifted(&self, dx: f64, dy: f64) -> Raster<T> {
        Raster {
            origin: self.origin.shifted(dx, dy),
            ..self.clone()
        }
    }
}

impl Raster<f32> {
    /// Box-blur with half-width `radius_px`, separable two-pass, edge
    /// clamped. Used by the haze estimator in segmentation.
    pub fn box_blur(&self, radius_px: usize) -> Raster<f32> {
        if radius_px == 0 {
            return self.clone();
        }
        let mut tmp = vec![0f32; self.data.len()];
        let w = self.width as isize;
        let h = self.height as isize;
        let r = radius_px as isize;
        // Horizontal pass.
        for row in 0..h {
            for col in 0..w {
                let lo = (col - r).max(0);
                let hi = (col + r).min(w - 1);
                let mut s = 0f32;
                for c in lo..=hi {
                    s += self.data[(row * w + c) as usize];
                }
                tmp[(row * w + col) as usize] = s / (hi - lo + 1) as f32;
            }
        }
        // Vertical pass.
        let mut out = vec![0f32; self.data.len()];
        for row in 0..h {
            for col in 0..w {
                let lo = (row - r).max(0);
                let hi = (row + r).min(h - 1);
                let mut s = 0f32;
                for rr in lo..=hi {
                    s += tmp[(rr * w + col) as usize];
                }
                out[(row * w + col) as usize] = s / (hi - lo + 1) as f32;
            }
        }
        Raster {
            width: self.width,
            height: self.height,
            origin: self.origin,
            pixel_size_m: self.pixel_size_m,
            data: out,
        }
    }
}

/// Segmentation output label per pixel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Label {
    /// Confidently classified surface.
    Class(icesat_scene::SurfaceClass),
    /// Obscured by thick cloud — unusable for auto-labeling.
    Cloud,
}

impl Label {
    /// The surface class, if usable.
    pub fn class(self) -> Option<icesat_scene::SurfaceClass> {
        match self {
            Label::Class(c) => Some(c),
            Label::Cloud => None,
        }
    }
}

/// A classified (label) raster.
pub type LabelRaster = Raster<Label>;

#[cfg(test)]
mod tests {
    use super::*;
    use icesat_scene::SurfaceClass;

    fn raster() -> Raster<f32> {
        Raster::filled(4, 3, MapPoint::new(100.0, 200.0), 10.0, 0.0)
    }

    #[test]
    fn geotransform_roundtrip() {
        let r = raster();
        for row in 0..3 {
            for col in 0..4 {
                let m = r.pixel_to_map(col, row);
                assert_eq!(r.map_to_pixel(m), Some((col, row)));
            }
        }
    }

    #[test]
    fn north_up_orientation() {
        let r = raster();
        let nw = r.pixel_to_map(0, 0);
        let se = r.pixel_to_map(3, 2);
        assert!(nw.x < se.x, "x grows east");
        assert!(nw.y > se.y, "y shrinks southward");
        assert_eq!(nw, MapPoint::new(105.0, 195.0));
    }

    #[test]
    fn out_of_bounds_sampling() {
        let r = raster();
        assert_eq!(r.map_to_pixel(MapPoint::new(99.0, 195.0)), None);
        assert_eq!(r.map_to_pixel(MapPoint::new(141.0, 195.0)), None);
        assert_eq!(r.map_to_pixel(MapPoint::new(105.0, 201.0)), None);
        assert_eq!(r.map_to_pixel(MapPoint::new(105.0, 169.0)), None);
        assert!(r.sample(MapPoint::new(105.0, 195.0)).is_some());
    }

    #[test]
    fn get_set() {
        let mut r = raster();
        r.set(2, 1, 7.5);
        assert_eq!(*r.get(2, 1), 7.5);
        assert_eq!(*r.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let _ = raster().get(4, 0);
    }

    #[test]
    fn shifted_moves_georeferencing_only() {
        let mut r = raster();
        r.set(1, 1, 3.0);
        let s = r.shifted(
            550.0 / std::f64::consts::SQRT_2,
            550.0 / std::f64::consts::SQRT_2,
        );
        assert_eq!(s.data(), r.data());
        assert!(s.origin().x > r.origin().x);
        // The same pixel content now answers for shifted map points.
        let m_old = r.pixel_to_map(1, 1);
        let m_new = s.pixel_to_map(1, 1);
        assert!((m_new.x - m_old.x - 550.0 / std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn box_blur_preserves_constant_fields() {
        let r = Raster::filled(16, 16, MapPoint::new(0.0, 0.0), 10.0, 2.5f32);
        let b = r.box_blur(3);
        assert!(b.data().iter().all(|&v| (v - 2.5).abs() < 1e-6));
    }

    #[test]
    fn box_blur_smooths_impulse() {
        let mut r = Raster::filled(11, 11, MapPoint::new(0.0, 0.0), 10.0, 0.0f32);
        r.set(5, 5, 1.0);
        let b = r.box_blur(1);
        // A radius-1 box blur spreads the impulse over a 3x3 of 1/9 each.
        assert!((b.get(5, 5) - 1.0 / 9.0).abs() < 1e-6);
        assert!((b.get(4, 4) - 1.0 / 9.0).abs() < 1e-6);
        assert!(*b.get(8, 8) == 0.0);
        // Mass is conserved away from edges.
        let total: f32 = b.data().iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
    }

    #[test]
    fn box_blur_zero_radius_is_identity() {
        let mut r = raster();
        r.set(3, 2, 9.0);
        assert_eq!(r.box_blur(0), r);
    }

    #[test]
    fn label_class_accessor() {
        assert_eq!(
            Label::Class(SurfaceClass::ThinIce).class(),
            Some(SurfaceClass::ThinIce)
        );
        assert_eq!(Label::Cloud.class(), None);
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn from_data_checks_length() {
        let _ = Raster::from_data(2, 2, MapPoint::new(0.0, 0.0), 1.0, vec![0f32; 3]);
    }
}
