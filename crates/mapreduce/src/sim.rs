//! Deterministic cost-model scheduler.
//!
//! Wall-clock runs reproduce the paper's scalability *shape* only as far
//! as the host machine allows. The simulator makes the tables exactly
//! reproducible: given per-task costs it computes the makespan of the
//! Spark-style schedule (round-robin partition placement across
//! executors, dynamic slot pulling inside each executor = list
//! scheduling), plus two calibrated overheads:
//!
//! - a per-task dispatch overhead (Spark task serialisation/launch), and
//! - an Amdahl **serial fraction** per stage. The paper's own numbers pin
//!   these down: the reduce stage scales ~linearly (390 s → 24 s,
//!   16.25× at 16 slots) while the load stage saturates at 9× — an
//!   Amdahl fit of the load column gives a serial fraction of ≈0.052
//!   (driver-side listing + namespace work), which we adopt as the
//!   default.

use serde::{Deserialize, Serialize};

use crate::stage::{StageReport, StageTimes};

/// Calibrated overhead model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimCost {
    /// Per-task dispatch overhead, seconds.
    pub task_overhead_s: f64,
    /// Serial (non-parallelisable) fraction of the load stage.
    pub load_serial_fraction: f64,
    /// Serial fraction of the reduce stage.
    pub reduce_serial_fraction: f64,
    /// Constant plan-registration ("map") time, seconds.
    pub map_registration_s: f64,
}

impl Default for SimCost {
    fn default() -> Self {
        SimCost {
            task_overhead_s: 0.03,
            load_serial_fraction: 0.052,
            reduce_serial_fraction: 0.0,
            map_registration_s: 0.3,
        }
    }
}

/// A simulated executors × cores cluster.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimCluster {
    /// Number of executors.
    pub executors: usize,
    /// Cores per executor.
    pub cores: usize,
    /// Overhead model.
    pub cost: SimCost,
}

/// Simulated stage durations.
pub type SimReport = StageReport;

impl SimCluster {
    /// Creates a simulated cluster.
    pub fn new(executors: usize, cores: usize, cost: SimCost) -> Self {
        assert!(executors > 0 && cores > 0, "cluster must have workers");
        SimCluster {
            executors,
            cores,
            cost,
        }
    }

    /// Makespan of `task_costs` under the Spark-style schedule: task `i`
    /// goes to executor `i % executors`; inside an executor tasks are
    /// pulled in order by the first free slot.
    pub fn makespan_s(&self, task_costs: &[f64]) -> f64 {
        let mut executor_tasks: Vec<Vec<f64>> = vec![Vec::new(); self.executors];
        for (i, &c) in task_costs.iter().enumerate() {
            assert!(c >= 0.0, "negative task cost");
            executor_tasks[i % self.executors].push(c + self.cost.task_overhead_s);
        }
        executor_tasks
            .into_iter()
            .map(|tasks| {
                let mut slots = vec![0.0f64; self.cores];
                for t in tasks {
                    // First-free-slot pull: argmin over slot clocks.
                    let (idx, _) = slots
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.total_cmp(b.1))
                        .expect("at least one slot");
                    slots[idx] += t;
                }
                slots.into_iter().fold(0.0, f64::max)
            })
            .fold(0.0, f64::max)
    }

    /// Simulated duration of a stage with Amdahl serial fraction `serial`:
    /// the serial part runs once on the driver, the rest is scheduled.
    pub fn stage_s(&self, task_costs: &[f64], serial: f64) -> f64 {
        assert!((0.0..1.0).contains(&serial), "serial fraction in [0,1)");
        let total: f64 = task_costs.iter().sum();
        let parallel: Vec<f64> = task_costs.iter().map(|c| c * (1.0 - serial)).collect();
        serial * total + self.makespan_s(&parallel)
    }

    /// Simulates a full load → map → reduce pipeline.
    pub fn simulate_pipeline(&self, load_costs: &[f64], reduce_costs: &[f64]) -> SimReport {
        let times = StageTimes {
            load_s: self.stage_s(load_costs, self.cost.load_serial_fraction),
            map_s: self.cost.map_registration_s,
            reduce_s: self.stage_s(reduce_costs, self.cost.reduce_serial_fraction),
        };
        StageReport {
            executors: self.executors,
            cores: self.cores,
            times,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, c: f64) -> Vec<f64> {
        vec![c; n]
    }

    fn no_overhead() -> SimCost {
        SimCost {
            task_overhead_s: 0.0,
            load_serial_fraction: 0.0,
            reduce_serial_fraction: 0.0,
            map_registration_s: 0.0,
        }
    }

    #[test]
    fn single_slot_sums_costs() {
        let c = SimCluster::new(1, 1, no_overhead());
        assert!((c.makespan_s(&uniform(10, 2.0)) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_division_is_linear() {
        // 16 equal tasks on 4x4 -> one task per slot.
        let c = SimCluster::new(4, 4, no_overhead());
        assert!((c.makespan_s(&uniform(16, 3.0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_costs_a_round() {
        // 17 tasks on 16 slots: one slot does two.
        let c = SimCluster::new(4, 4, no_overhead());
        assert!((c.makespan_s(&uniform(17, 3.0)) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn round_robin_placement_can_skew_executors() {
        // 4 tasks, 2 executors: each executor gets 2 tasks; with 1 core
        // each, makespan = 2 tasks serially.
        let c = SimCluster::new(2, 1, no_overhead());
        assert!((c.makespan_s(&uniform(4, 1.0)) - 2.0).abs() < 1e-12);
        // Heterogeneous: big tasks land on executor 0 (indices 0, 2).
        let c2 = SimCluster::new(2, 1, no_overhead());
        let costs = [10.0, 1.0, 10.0, 1.0];
        assert!((c2.makespan_s(&costs) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn task_overhead_accumulates() {
        let mut cost = no_overhead();
        cost.task_overhead_s = 0.5;
        let c = SimCluster::new(1, 1, cost);
        assert!((c.makespan_s(&uniform(4, 1.0)) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn amdahl_serial_fraction_caps_speedup() {
        let cost = SimCost {
            load_serial_fraction: 0.052,
            ..no_overhead()
        };
        let tasks = uniform(160, 1.0);
        let t1 = SimCluster::new(1, 1, cost).stage_s(&tasks, 0.052);
        let t16 = SimCluster::new(4, 4, cost).stage_s(&tasks, 0.052);
        let speedup = t1 / t16;
        // Amdahl predicts 1/(0.052 + 0.948/16) ≈ 8.96 — the paper's 9.0.
        assert!((speedup - 9.0).abs() < 0.3, "load speedup {speedup}");
    }

    #[test]
    fn paper_grid_shape_matches_table2() {
        // Sweep the paper's executors×cores grid and verify the *shape*:
        // monotone speedups, near-linear reduce, saturating load.
        let cost = SimCost::default();
        let reduce_tasks = uniform(320, 390.0 / 320.0); // total 390 s like Table II
        let load_tasks = uniform(320, 108.0 / 320.0);
        let t_base = SimCluster::new(1, 1, cost).simulate_pipeline(&load_tasks, &reduce_tasks);
        let mut prev_speedup = 0.0;
        for &(e, k) in &[(1, 2), (2, 2), (4, 2), (4, 4)] {
            let r = SimCluster::new(e, k, cost).simulate_pipeline(&load_tasks, &reduce_tasks);
            let s_reduce = t_base.times.reduce_s / r.times.reduce_s;
            let s_load = t_base.times.load_s / r.times.load_s;
            assert!(s_reduce > prev_speedup, "reduce speedup not monotone");
            prev_speedup = s_reduce;
            assert!(s_load <= s_reduce + 0.5, "load should saturate first");
            if (e, k) == (4, 4) {
                assert!(s_reduce > 12.0, "16-slot reduce speedup {s_reduce}");
                assert!(
                    (7.0..11.0).contains(&s_load),
                    "16-slot load speedup {s_load}"
                );
            }
        }
        // Map registration time is constant across topologies.
        assert!((t_base.times.map_s - cost.map_registration_s).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "negative task cost")]
    fn negative_cost_panics() {
        let c = SimCluster::new(1, 1, no_overhead());
        let _ = c.makespan_s(&[-1.0]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Makespan is bounded below by max(task) and total/slots, and
            /// above by the serial sum; more slots never hurt.
            #[test]
            fn makespan_bounds(
                n in 1usize..50,
                execs in 1usize..5,
                cores in 1usize..5,
                seed in 0u64..100,
            ) {
                use rand::{Rng, SeedableRng};
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
                let costs: Vec<f64> = (0..n).map(|_| rng.random_range(0.01..5.0)).collect();
                let c = SimCluster::new(execs, cores, no_overhead());
                let m = c.makespan_s(&costs);
                let total: f64 = costs.iter().sum();
                let longest = costs.iter().fold(0.0f64, |a, &b| a.max(b));
                prop_assert!(m >= longest - 1e-9);
                prop_assert!(m >= total / (execs * cores) as f64 - 1e-9);
                prop_assert!(m <= total + 1e-9);
                // Doubling cores never increases makespan.
                let c2 = SimCluster::new(execs, cores * 2, no_overhead());
                prop_assert!(c2.makespan_s(&costs) <= m + 1e-9);
            }
        }
    }
}
