//! Stage timing reports.
//!
//! The paper's Tables II and V report three columns per topology — load,
//! map, and reduce time — where "map" is the (cheap) registration of the
//! transformation plan and "reduce" is the action that executes it.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Wall-clock durations of the three pipeline stages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimes {
    /// Seconds spent materialising input partitions (file reads, decode).
    pub load_s: f64,
    /// Seconds spent registering transformations (plan building).
    pub map_s: f64,
    /// Seconds executing the action (the actual distributed compute).
    pub reduce_s: f64,
}

impl StageTimes {
    /// Total of the three stages, seconds.
    pub fn total_s(&self) -> f64 {
        self.load_s + self.map_s + self.reduce_s
    }
}

/// A full per-run report: topology plus stage times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// Number of executors.
    pub executors: usize,
    /// Cores per executor.
    pub cores: usize,
    /// Measured (or simulated) stage durations.
    pub times: StageTimes,
}

impl StageReport {
    /// Total parallelism of the topology.
    pub fn parallelism(&self) -> usize {
        self.executors * self.cores
    }
}

/// Converts a [`Duration`] to fractional seconds.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let t = StageTimes {
            load_s: 1.0,
            map_s: 0.25,
            reduce_s: 3.5,
        };
        assert!((t.total_s() - 4.75).abs() < 1e-12);
    }

    #[test]
    fn parallelism_is_product() {
        let r = StageReport {
            executors: 4,
            cores: 4,
            times: StageTimes::default(),
        };
        assert_eq!(r.parallelism(), 16);
    }

    #[test]
    fn secs_converts() {
        assert!((secs(Duration::from_millis(1500)) - 1.5).abs() < 1e-9);
    }
}
