//! Scalability sweep harness: renders Tables II / V style reports.
//!
//! A [`ScalingTable`] runs a workload over the paper's executors × cores
//! grid (default {1,2,4} × {1,2,4} restricted to the seven rows the paper
//! prints), computes the speedup columns relative to the 1×1 baseline,
//! and formats the familiar table.

use serde::{Deserialize, Serialize};

use crate::stage::StageReport;

/// One table row: topology, stage times, and speedups vs the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Executors.
    pub executors: usize,
    /// Cores per executor.
    pub cores: usize,
    /// Load time, seconds.
    pub load_s: f64,
    /// Map (plan registration) time, seconds.
    pub map_s: f64,
    /// Reduce (action) time, seconds.
    pub reduce_s: f64,
    /// Load speedup vs the 1×1 row.
    pub speedup_load: f64,
    /// Reduce speedup vs the 1×1 row.
    pub speedup_reduce: f64,
}

/// A full scalability table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingTable {
    /// Table caption.
    pub title: String,
    /// Rows in sweep order (1×1 first).
    pub rows: Vec<ScalingRow>,
}

/// The paper's sweep grid: (executors, cores) in Tables II and V order.
pub const PAPER_GRID: [(usize, usize); 9] = [
    (1, 1),
    (1, 2),
    (1, 4),
    (2, 1),
    (2, 2),
    (2, 4),
    (4, 1),
    (4, 2),
    (4, 4),
];

impl ScalingTable {
    /// Builds a table by running `workload` for every grid topology.
    /// `workload` must return the stage report for that topology. The
    /// first grid entry is the baseline.
    pub fn sweep<F>(title: &str, grid: &[(usize, usize)], mut workload: F) -> ScalingTable
    where
        F: FnMut(usize, usize) -> StageReport,
    {
        assert!(!grid.is_empty(), "empty sweep grid");
        let mut rows = Vec::with_capacity(grid.len());
        let mut base: Option<(f64, f64)> = None;
        for &(e, c) in grid {
            let report = workload(e, c);
            let (bl, br) = *base.get_or_insert((report.times.load_s, report.times.reduce_s));
            rows.push(ScalingRow {
                executors: e,
                cores: c,
                load_s: report.times.load_s,
                map_s: report.times.map_s,
                reduce_s: report.times.reduce_s,
                speedup_load: safe_ratio(bl, report.times.load_s),
                speedup_reduce: safe_ratio(br, report.times.reduce_s),
            });
        }
        ScalingTable {
            title: title.to_string(),
            rows,
        }
    }

    /// Maximum reduce speedup across rows (the paper's headline numbers:
    /// 16.25× for auto-labeling, 15.68× for freeboard).
    pub fn max_reduce_speedup(&self) -> f64 {
        self.rows.iter().fold(0.0, |a, r| a.max(r.speedup_reduce))
    }

    /// Maximum load speedup across rows (paper: 9.0× / 8.54×).
    pub fn max_load_speedup(&self) -> f64 {
        self.rows.iter().fold(0.0, |a, r| a.max(r.speedup_load))
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        out.push_str(
            "Executors  Cores  Load(s)   Map(s)  Reduce(s)  Speedup-Load  Speedup-Reduce\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:>9}  {:>5}  {:>8.2} {:>8.3}  {:>9.2}  {:>12.2}  {:>14.2}\n",
                r.executors,
                r.cores,
                r.load_s,
                r.map_s,
                r.reduce_s,
                r.speedup_load,
                r.speedup_reduce
            ));
        }
        out
    }
}

fn safe_ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        if num <= 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimCluster, SimCost};
    use crate::stage::StageTimes;

    #[test]
    fn sweep_computes_speedups_vs_first_row() {
        let table = ScalingTable::sweep("t", &[(1, 1), (2, 2)], |e, c| StageReport {
            executors: e,
            cores: c,
            times: StageTimes {
                load_s: 100.0 / (e * c) as f64,
                map_s: 0.3,
                reduce_s: 400.0 / (e * c) as f64,
            },
        });
        assert_eq!(table.rows.len(), 2);
        assert!((table.rows[0].speedup_load - 1.0).abs() < 1e-12);
        assert!((table.rows[1].speedup_reduce - 4.0).abs() < 1e-12);
        assert!((table.max_reduce_speedup() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn simulated_paper_table_has_paper_shape() {
        let cost = SimCost::default();
        let load: Vec<f64> = vec![108.0 / 320.0; 320];
        let reduce: Vec<f64> = vec![390.0 / 320.0; 320];
        let table = ScalingTable::sweep("Table II (simulated)", &PAPER_GRID, |e, c| {
            SimCluster::new(e, c, cost).simulate_pipeline(&load, &reduce)
        });
        // Paper: reduce 16.25x, load 9.0x at 4x4.
        let last = table.rows.last().unwrap();
        assert_eq!((last.executors, last.cores), (4, 4));
        assert!(
            last.speedup_reduce > 12.0 && last.speedup_reduce <= 16.5,
            "reduce speedup {}",
            last.speedup_reduce
        );
        assert!(
            (6.5..11.0).contains(&last.speedup_load),
            "load speedup {}",
            last.speedup_load
        );
        // Monotone within the equal-executor series.
        assert!(table.rows[2].speedup_reduce > table.rows[1].speedup_reduce);
        // Baseline row is 1.0 by construction.
        assert!((table.rows[0].speedup_load - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_contains_all_rows() {
        let table = ScalingTable::sweep("demo", &[(1, 1), (4, 4)], |e, c| StageReport {
            executors: e,
            cores: c,
            times: StageTimes {
                load_s: 1.0,
                map_s: 0.1,
                reduce_s: 2.0,
            },
        });
        let s = table.render();
        assert!(s.contains("demo"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn safe_ratio_handles_zero() {
        assert_eq!(safe_ratio(0.0, 0.0), 1.0);
        assert!(safe_ratio(1.0, 0.0).is_infinite());
    }

    #[test]
    #[should_panic(expected = "empty sweep grid")]
    fn empty_grid_panics() {
        let _ = ScalingTable::sweep("t", &[], |_, _| unreachable!());
    }
}
