//! Executor/core topology with real threaded execution.
//!
//! A [`Cluster`] mirrors the paper's Dataproc setup: `executors`
//! independent workers, each running `cores` task slots. Partitions are
//! assigned to executors round-robin (Spark's block placement for
//! `parallelize`d data); inside an executor the task slots *pull* work
//! dynamically from the executor-local queue, so a slow partition doesn't
//! idle sibling cores. Actions combine per-partition results **in
//! partition order**, making every topology produce identical results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::rdd::Rdd;
use crate::stage::{StageReport, StageTimes};

/// An executors × cores cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cluster {
    executors: usize,
    cores: usize,
}

impl Cluster {
    /// Creates a cluster with `executors` workers of `cores` slots each.
    pub fn new(executors: usize, cores: usize) -> Self {
        assert!(executors > 0 && cores > 0, "cluster must have workers");
        Cluster { executors, cores }
    }

    /// Executors in the cluster.
    pub fn executors(&self) -> usize {
        self.executors
    }

    /// Cores (task slots) per executor.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Total task slots.
    pub fn parallelism(&self) -> usize {
        self.executors * self.cores
    }

    /// Loads `sources` in parallel, one partition per source, returning
    /// the materialised RDD and the load duration in seconds.
    pub fn load<S, T, F>(&self, sources: Vec<S>, loader: F) -> (Rdd<T>, f64)
    where
        S: Send + Sync,
        T: Clone + Send + Sync + 'static,
        F: Fn(&S) -> Vec<T> + Send + Sync,
    {
        let start = Instant::now();
        let n = sources.len();
        let slots: Vec<Mutex<Option<Vec<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        self.run_tasks(n, |task_idx| {
            let loaded = loader(&sources[task_idx]);
            *slots[task_idx].lock() = Some(loaded);
        });
        let parts: Vec<Vec<T>> = slots
            .into_iter()
            .map(|m| m.into_inner().expect("load task did not run"))
            .collect();
        (Rdd::from_partitions(parts), start.elapsed().as_secs_f64())
    }

    /// Runs the action: computes every partition of `rdd` on the cluster,
    /// folds each partition with `fold`, then combines the per-partition
    /// results in partition order with `combine`. Returns the result and
    /// the reduce duration in seconds.
    pub fn fold<T, R, F, C>(&self, rdd: &Rdd<T>, fold: F, combine: C) -> (Option<R>, f64)
    where
        T: Send + Sync + 'static,
        R: Send,
        F: Fn(Vec<T>) -> R + Send + Sync,
        C: Fn(R, R) -> R,
    {
        let start = Instant::now();
        let n = rdd.n_partitions();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        self.run_tasks(n, |i| {
            let r = fold(rdd.compute_partition(i));
            *slots[i].lock() = Some(r);
        });
        let mut acc: Option<R> = None;
        for slot in slots {
            let r = slot.into_inner().expect("fold task did not run");
            acc = Some(match acc {
                None => r,
                Some(a) => combine(a, r),
            });
        }
        (acc, start.elapsed().as_secs_f64())
    }

    /// Collects all elements in partition order.
    pub fn collect<T>(&self, rdd: &Rdd<T>) -> (Vec<T>, f64)
    where
        T: Send + Sync + 'static,
    {
        let (out, secs) = self.fold(
            rdd,
            |p| p,
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        (out.unwrap_or_default(), secs)
    }

    /// Counts elements.
    pub fn count<T>(&self, rdd: &Rdd<T>) -> (usize, f64)
    where
        T: Send + Sync + 'static,
    {
        let (n, secs) = self.fold(rdd, |p| p.len(), |a, b| a + b);
        (n.unwrap_or(0), secs)
    }

    /// Full paper-style run: load sources, register the (lazy) plan via
    /// `plan`, execute the action via `fold`/`combine`, and report the
    /// three stage times.
    pub fn run_pipeline<S, T, U, R, L, P, F, C>(
        &self,
        sources: Vec<S>,
        loader: L,
        plan: P,
        fold: F,
        combine: C,
    ) -> (Option<R>, StageReport)
    where
        S: Send + Sync,
        T: Clone + Send + Sync + 'static,
        U: Send + Sync + 'static,
        R: Send,
        L: Fn(&S) -> Vec<T> + Send + Sync,
        P: FnOnce(&Rdd<T>) -> Rdd<U>,
        F: Fn(Vec<U>) -> R + Send + Sync,
        C: Fn(R, R) -> R,
    {
        let (base, load_s) = self.load(sources, loader);
        let map_start = Instant::now();
        let planned = plan(&base);
        let map_s = map_start.elapsed().as_secs_f64();
        let (result, reduce_s) = self.fold(&planned, fold, combine);
        let report = StageReport {
            executors: self.executors,
            cores: self.cores,
            times: StageTimes {
                load_s,
                map_s,
                reduce_s,
            },
        };
        (result, report)
    }

    /// Executes `n_tasks` tasks on the topology. Task `i` is pinned to
    /// executor `i % executors` (round-robin placement); within an
    /// executor, its `cores` threads pull the executor's tasks dynamically.
    fn run_tasks<F>(&self, n_tasks: usize, task: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        if n_tasks == 0 {
            return;
        }
        // Executor-local task lists (round-robin by task index).
        let mut queues: Vec<Vec<usize>> = vec![Vec::new(); self.executors];
        for i in 0..n_tasks {
            queues[i % self.executors].push(i);
        }
        let task = &task;
        std::thread::scope(|scope| {
            for queue in &queues {
                let cursor = AtomicUsize::new(0);
                // One scope per executor would serialise executors; instead
                // spawn all executor threads into the same scope, each
                // closing over its executor's queue and cursor.
                let cursor = std::sync::Arc::new(cursor);
                for _slot in 0..self.cores {
                    let cursor = std::sync::Arc::clone(&cursor);
                    scope.spawn(move || loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        match queue.get(k) {
                            Some(&task_idx) => task(task_idx),
                            None => break,
                        }
                    });
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_matches_sequential_reference() {
        let data: Vec<i64> = (0..10_000).collect();
        let rdd = Rdd::parallelize(data.clone(), 16)
            .map(|x| x * 3)
            .filter(|x| x % 2 == 0);
        let reference: i64 = rdd.collect_sequential().iter().sum();
        for (e, c) in [(1, 1), (1, 4), (2, 2), (4, 4), (3, 5)] {
            let (sum, _) = Cluster::new(e, c).fold(&rdd, |p| p.iter().sum::<i64>(), |a, b| a + b);
            assert_eq!(sum, Some(reference), "topology {e}x{c}");
        }
    }

    #[test]
    fn collect_preserves_partition_order() {
        let data: Vec<i32> = (0..1000).collect();
        let rdd = Rdd::parallelize(data.clone(), 7);
        let (out, _) = Cluster::new(4, 2).collect(&rdd);
        assert_eq!(out, data);
    }

    #[test]
    fn count_counts() {
        let rdd = Rdd::parallelize((0..999).collect::<Vec<i32>>(), 5).filter(|x| x % 3 == 0);
        let (n, _) = Cluster::new(2, 3).count(&rdd);
        assert_eq!(n, 333);
    }

    #[test]
    fn load_materialises_one_partition_per_source() {
        let sources: Vec<usize> = (0..6).collect();
        let (rdd, _) = Cluster::new(2, 2).load(sources, |&s| vec![s * 10, s * 10 + 1]);
        assert_eq!(rdd.n_partitions(), 6);
        assert_eq!(rdd.compute_partition(4), vec![40, 41]);
    }

    #[test]
    fn pipeline_reports_all_stages() {
        let sources: Vec<u64> = (0..8).collect();
        let (result, report) = Cluster::new(2, 2).run_pipeline(
            sources,
            |&s| (0..100u64).map(|i| s * 100 + i).collect::<Vec<u64>>(),
            |rdd| rdd.map(|x| x as f64).filter(|x| *x >= 0.0),
            |p| p.iter().sum::<f64>(),
            |a, b| a + b,
        );
        let expect: f64 = (0..800u64).map(|x| x as f64).sum();
        assert_eq!(result, Some(expect));
        assert!(report.times.load_s >= 0.0);
        assert!(
            report.times.map_s < 0.5,
            "plan registration should be ~instant"
        );
        assert!(report.times.reduce_s >= 0.0);
        assert_eq!(report.parallelism(), 4);
    }

    #[test]
    fn empty_rdd_folds_to_none() {
        let rdd = Rdd::from_partitions(Vec::<Vec<i32>>::new());
        let (r, _) = Cluster::new(2, 2).fold(&rdd, |p| p.len(), |a, b| a + b);
        assert_eq!(r, None);
    }

    #[test]
    fn more_cores_than_tasks_is_fine() {
        let rdd = Rdd::parallelize(vec![1, 2, 3], 2);
        let (n, _) = Cluster::new(4, 4).count(&rdd);
        assert_eq!(n, 3);
    }

    #[test]
    fn parallel_speedup_on_compute_bound_work() {
        // A compute-heavy fold should speed up with more slots. Use a
        // generous tolerance: CI machines share cores. Meaningless on a
        // single-core host — the threads would just time-slice.
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            < 4
        {
            return;
        }
        let rdd = Rdd::parallelize((0u64..512).collect::<Vec<u64>>(), 64);
        let spin = |p: Vec<u64>| -> u64 {
            p.into_iter()
                .map(|x| {
                    let mut acc = x;
                    for i in 0..40_000u64 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                    }
                    acc & 1
                })
                .sum()
        };
        let (_, t1) = Cluster::new(1, 1).fold(&rdd, spin, |a, b| a + b);
        let (_, t8) = Cluster::new(4, 2).fold(&rdd, spin, |a, b| a + b);
        assert!(
            t1 > t8 * 2.0,
            "8 slots not faster than 1: t1={t1:.3}s t8={t8:.3}s"
        );
    }

    #[test]
    #[should_panic(expected = "must have workers")]
    fn zero_executors_panics() {
        let _ = Cluster::new(0, 2);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Any topology gives the sequential answer.
            #[test]
            fn topology_invariance(
                n in 1usize..500,
                parts in 1usize..12,
                execs in 1usize..5,
                cores in 1usize..5,
            ) {
                let data: Vec<i64> = (0..n as i64).collect();
                let rdd = Rdd::parallelize(data, parts).map(|x| x * 7 - 3);
                let expect: i64 = rdd.collect_sequential().iter().sum();
                let (got, _) = Cluster::new(execs, cores).fold(&rdd, |p| p.iter().sum::<i64>(), |a, b| a + b);
                prop_assert_eq!(got, Some(expect));
            }
        }
    }
}
