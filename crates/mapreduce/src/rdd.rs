//! Partitioned datasets with lazy transformation plans.
//!
//! An [`Rdd<T>`] knows how to *compute* each of its partitions on demand.
//! `map`/`filter` wrap the compute closure without touching data — that is
//! the whole trick behind the paper's near-constant sub-second "map time"
//! column: registering a transformation is O(1); only actions execute.

use std::sync::Arc;

/// Per-partition compute function: given a partition index, produce the
/// partition's elements.
pub(crate) type PartFn<T> = Arc<dyn Fn(usize) -> Vec<T> + Send + Sync>;

/// A lazily-computed, partitioned dataset.
#[derive(Clone)]
pub struct Rdd<T> {
    n_partitions: usize,
    pub(crate) compute: PartFn<T>,
}

impl<T: Send + Sync + 'static> Rdd<T> {
    /// Creates an RDD from already-materialised partitions. Computing a
    /// partition clones it out of the shared store (Spark semantics: the
    /// base block is immutable and reusable across actions).
    pub fn from_partitions(parts: Vec<Vec<T>>) -> Self
    where
        T: Clone,
    {
        let n = parts.len();
        let store = Arc::new(parts);
        Rdd {
            n_partitions: n,
            compute: Arc::new(move |i| store[i].clone()),
        }
    }

    /// Splits `data` into `n_partitions` contiguous chunks of
    /// near-equal size.
    pub fn parallelize(data: Vec<T>, n_partitions: usize) -> Self
    where
        T: Clone,
    {
        assert!(n_partitions > 0, "need at least one partition");
        let n = data.len();
        let mut parts: Vec<Vec<T>> = Vec::with_capacity(n_partitions);
        let base = n / n_partitions;
        let extra = n % n_partitions;
        let mut it = data.into_iter();
        for p in 0..n_partitions {
            let take = base + usize::from(p < extra);
            parts.push(it.by_ref().take(take).collect());
        }
        Rdd::from_partitions(parts)
    }

    /// Number of partitions.
    pub fn n_partitions(&self) -> usize {
        self.n_partitions
    }

    /// Lazily applies `f` to every element. O(1): no data is touched.
    pub fn map<U, F>(&self, f: F) -> Rdd<U>
    where
        U: Send + Sync + 'static,
        F: Fn(T) -> U + Send + Sync + 'static,
    {
        let inner = Arc::clone(&self.compute);
        let f = Arc::new(f);
        Rdd {
            n_partitions: self.n_partitions,
            compute: Arc::new(move |i| inner(i).into_iter().map(|x| f(x)).collect()),
        }
    }

    /// Lazily keeps elements satisfying `pred`. O(1).
    pub fn filter<F>(&self, pred: F) -> Rdd<T>
    where
        F: Fn(&T) -> bool + Send + Sync + 'static,
    {
        let inner = Arc::clone(&self.compute);
        let pred = Arc::new(pred);
        Rdd {
            n_partitions: self.n_partitions,
            compute: Arc::new(move |i| inner(i).into_iter().filter(|x| pred(x)).collect()),
        }
    }

    /// Lazily expands each element into zero or more outputs. O(1).
    pub fn flat_map<U, F, I>(&self, f: F) -> Rdd<U>
    where
        U: Send + Sync + 'static,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Send + Sync + 'static,
    {
        let inner = Arc::clone(&self.compute);
        let f = Arc::new(f);
        Rdd {
            n_partitions: self.n_partitions,
            compute: Arc::new(move |i| inner(i).into_iter().flat_map(|x| f(x)).collect()),
        }
    }

    /// Lazily transforms whole partitions (gives the map access to
    /// partition-local context, like Spark's `mapPartitions`). O(1).
    pub fn map_partitions<U, F>(&self, f: F) -> Rdd<U>
    where
        U: Send + Sync + 'static,
        F: Fn(Vec<T>) -> Vec<U> + Send + Sync + 'static,
    {
        let inner = Arc::clone(&self.compute);
        let f = Arc::new(f);
        Rdd {
            n_partitions: self.n_partitions,
            compute: Arc::new(move |i| f(inner(i))),
        }
    }

    /// Computes one partition (used by the cluster executor and tests).
    pub fn compute_partition(&self, i: usize) -> Vec<T> {
        assert!(i < self.n_partitions, "partition index out of range");
        (self.compute)(i)
    }

    /// Computes every partition sequentially and concatenates — the
    /// single-threaded reference semantics actions must match.
    pub fn collect_sequential(&self) -> Vec<T> {
        (0..self.n_partitions)
            .flat_map(|i| self.compute_partition(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelize_balances_partitions() {
        let rdd = Rdd::parallelize((0..10).collect::<Vec<i32>>(), 3);
        assert_eq!(rdd.n_partitions(), 3);
        let sizes: Vec<usize> = (0..3).map(|i| rdd.compute_partition(i).len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        assert_eq!(rdd.collect_sequential(), (0..10).collect::<Vec<i32>>());
    }

    #[test]
    fn parallelize_more_partitions_than_items() {
        let rdd = Rdd::parallelize(vec![1, 2], 5);
        assert_eq!(rdd.n_partitions(), 5);
        assert_eq!(rdd.collect_sequential(), vec![1, 2]);
        assert!(rdd.compute_partition(4).is_empty());
    }

    #[test]
    fn map_filter_flatmap_compose() {
        let rdd = Rdd::parallelize((1..=8).collect::<Vec<i64>>(), 2)
            .map(|x| x * 10)
            .filter(|x| x % 20 == 0)
            .flat_map(|x| vec![x, x + 1]);
        assert_eq!(
            rdd.collect_sequential(),
            vec![20, 21, 40, 41, 60, 61, 80, 81]
        );
    }

    #[test]
    fn transformations_are_lazy() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let rdd = Rdd::parallelize(vec![1, 2, 3], 1).map(|x| {
            CALLS.fetch_add(1, Ordering::SeqCst);
            x + 1
        });
        assert_eq!(CALLS.load(Ordering::SeqCst), 0, "map ran eagerly");
        let _ = rdd.collect_sequential();
        assert_eq!(CALLS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn map_partitions_sees_whole_partition() {
        let rdd = Rdd::parallelize((0..9).collect::<Vec<i32>>(), 3)
            .map_partitions(|p| vec![p.iter().sum::<i32>()]);
        assert_eq!(rdd.collect_sequential(), vec![1 + 2, 3 + 4 + 5, 6 + 7 + 8]);
    }

    #[test]
    fn recompute_is_reproducible() {
        let rdd = Rdd::parallelize((0..100).collect::<Vec<i32>>(), 7).map(|x| x * x);
        assert_eq!(rdd.compute_partition(3), rdd.compute_partition(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_partition_index_panics() {
        let rdd = Rdd::parallelize(vec![1], 1);
        let _ = rdd.compute_partition(1);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        let _ = Rdd::parallelize(vec![1], 0);
    }
}
