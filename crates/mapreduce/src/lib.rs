//! `sparklite` — a miniature PySpark-shaped map-reduce engine.
//!
//! The paper scales IS2 auto-labeling (Table II) and freeboard computation
//! (Table V) with PySpark on a Google Cloud Dataproc cluster, sweeping
//! **executors × cores** over {1,2,4} × {1,2,4} and reporting load / map /
//! reduce times plus speedups. This crate reproduces that execution model
//! without a JVM:
//!
//! - [`cluster`] — an executor/core topology that really runs tasks on
//!   that many OS threads, with Spark-style dynamic task pulling inside
//!   each executor;
//! - [`rdd`] — partitioned datasets with lazy `map`/`filter` registration
//!   (the paper's sub-second "map time" is plan registration, not
//!   execution) and eager actions (`reduce`, `collect`) that run the whole
//!   pipeline;
//! - [`stage`] — per-stage wall-clock timing reports;
//! - [`sim`] — a deterministic cost-model scheduler that reproduces the
//!   scalability *tables* bit-for-bit on any host (list scheduling with
//!   per-task overhead and per-executor load bandwidth);
//! - [`scaling`] — the sweep harness that renders paper-style scalability
//!   tables with speedup columns.
//!
//! Reductions combine per-partition results in partition order, so any
//! `(executors, cores)` topology produces identical results — only timing
//! changes. Tests assert exactly that invariant.

pub mod cluster;
pub mod rdd;
pub mod scaling;
pub mod sim;
pub mod stage;

pub use cluster::Cluster;
pub use rdd::Rdd;
pub use scaling::{ScalingRow, ScalingTable};
pub use sim::{SimCluster, SimCost, SimReport};
pub use stage::{StageReport, StageTimes};
