//! Remote serve-path demo: classify a granule fleet, shard the products
//! across two leased catalog servers by quadkey prefix, and query them
//! over TCP through the client-side router — verifying the routed
//! answers are bit-identical to an in-process catalog.
//!
//! ```text
//! cargo run --release --example catalog_remote_queries
//! ```

use std::sync::Arc;

use icesat2_seaice::catalog::client::partition_products;
use icesat2_seaice::catalog::{
    Catalog, CatalogClient, CatalogOptions, CatalogServer, GridConfig, LeaseOptions, ShardRouter,
    ShardSpec, TileScope, TimeRange,
};
use icesat2_seaice::geo::EPSG_3976;
use icesat2_seaice::seaice::fleet::FleetDriver;
use icesat2_seaice::seaice::pipeline::{Pipeline, PipelineConfig};
use icesat2_seaice::seaice::stages::PipelineBuilder;
use icesat2_seaice::sparklite::Cluster;

fn main() {
    let pipeline = Pipeline::new(PipelineConfig::small(91));
    let tag = std::process::id();
    let fleet_dir = std::env::temp_dir().join(format!("seaice_remote_fleet_{tag}"));
    let local_dir = std::env::temp_dir().join(format!("seaice_remote_local_{tag}"));
    let shard_dirs = [
        std::env::temp_dir().join(format!("seaice_remote_shard0_{tag}")),
        std::env::temp_dir().join(format!("seaice_remote_shard1_{tag}")),
    ];
    for dir in std::iter::once(&local_dir).chain(&shard_dirs) {
        let _ = std::fs::remove_dir_all(dir);
    }

    println!("training one classifier (staged pipeline)...");
    let run = PipelineBuilder::new(pipeline.cfg.clone()).run();
    let sources = FleetDriver::write_fleet(&pipeline, &fleet_dir, 3).expect("fleet");
    let driver = FleetDriver::new(Cluster::new(2, 2), &pipeline.cfg);
    let grid = GridConfig::around(pipeline.cfg.scene.center, 2.0 * pipeline.cfg.track_length_m);

    // Classify the fleet once; the same products feed the in-process
    // truth store and the sharded deployment.
    println!("classifying the fleet into one local catalog + two shards...");
    let (products, _) = driver.classify_run(&sources, &run.models);
    let local = Catalog::create(&local_dir, grid).expect("local catalog");
    let ingest = local.ingest_products(&products).expect("local ingest");
    println!("  local store: {} samples", ingest.n_samples);

    // Shard the same products by quadkey prefix: southern tiles ("0"/"1")
    // and northern tiles ("2"/"3"), each behind its own *leased* writer
    // — the lease protocol that lets shard ingests run in separate
    // processes without write conflicts.
    let scopes = [
        TileScope::of(&["0", "1"]).expect("south scope"),
        TileScope::of(&["2", "3"]).expect("north scope"),
    ];
    let mut shard_catalogs = Vec::new();
    for ((dir, part), name) in shard_dirs
        .iter()
        .zip(partition_products(&grid, &scopes, &products))
        .zip(["shard-south", "shard-north"])
    {
        let catalog = Catalog::create_writer(
            dir,
            grid,
            CatalogOptions::default(),
            &LeaseOptions::new(name),
        )
        .expect("leased shard writer");
        for (granule, beam, product) in &part {
            catalog
                .ingest_beam(granule, *beam, product)
                .expect("shard ingest");
        }
        println!(
            "  {name}: {} samples under lease '{}'",
            catalog.stats().expect("stats").n_samples,
            catalog.lease().expect("leased").owner
        );
        shard_catalogs.push(Arc::new(catalog));
    }

    // Put TCP servers in front of everything.
    let full_server = CatalogServer::serve(Arc::new(local), "127.0.0.1:0").expect("server");
    let shard_servers: Vec<CatalogServer> = shard_catalogs
        .iter()
        .map(|c| CatalogServer::serve(Arc::clone(c), "127.0.0.1:0").expect("shard server"))
        .collect();
    println!(
        "serving on {} (full) and {} + {} (shards)",
        full_server.addr(),
        shard_servers[0].addr(),
        shard_servers[1].addr()
    );

    // A remote client against the full store, and the shard router.
    let mut client = CatalogClient::connect(&full_server.addr().to_string()).expect("client");
    let specs: Vec<ShardSpec> = shard_servers
        .iter()
        .zip(&scopes)
        .map(|(server, scope)| ShardSpec {
            addr: server.addr().to_string(),
            scope: scope.clone(),
        })
        .collect();
    let mut router = ShardRouter::connect(&specs).expect("router");

    let domain = client.grid().domain();
    let served = client
        .query_rect(&domain, TimeRange::all())
        .expect("served query");
    let routed = router
        .query_rect(&domain, TimeRange::all())
        .expect("routed query");
    println!(
        "  served (1 server):   {} samples, mean ice freeboard {:.4} m",
        served.n_samples, served.mean_ice_freeboard_m
    );
    println!(
        "  routed (2 shards):   {} samples, mean ice freeboard {:.4} m",
        routed.n_samples, routed.mean_ice_freeboard_m
    );
    assert_eq!(served, routed, "router must merge bit-identically");
    assert_eq!(
        served.mean_ice_freeboard_m.to_bits(),
        routed.mean_ice_freeboard_m.to_bits()
    );
    println!("  bit-identical: true");

    // A remote point probe routes to exactly one shard.
    let probe = EPSG_3976.inverse(pipeline.cfg.scene.center);
    if let Some(cell) = router.query_point(probe, TimeRange::all()).expect("point") {
        println!(
            "  point probe @scene centre -> {} samples in one {:.0} m cell (one shard answered)",
            cell.agg.n,
            router.grid().cell_size_m()
        );
    }

    // Remote composite + stats through the router.
    let cells = router
        .query_cells(&domain, TimeRange::all())
        .expect("cells");
    let stats = router.stats().expect("stats");
    println!(
        "  routed composite: {} cells; {} tiles / {} samples across {} shards",
        cells.len(),
        stats.n_tiles,
        stats.n_samples,
        router.n_shards()
    );
    router.validate().expect("remote validation");

    let served_stats = full_server.stats();
    println!(
        "  full server handled {} requests over {} connections ({} records streamed)",
        served_stats.requests, served_stats.connections, served_stats.records_streamed
    );

    for server in shard_servers {
        server.shutdown();
    }
    full_server.shutdown();
    let _ = std::fs::remove_dir_all(&fleet_dir);
    for dir in std::iter::once(&local_dir).chain(&shard_dirs) {
        let _ = std::fs::remove_dir_all(dir);
    }
}
