//! Auto-labeling walkthrough: drift-shifted Sentinel-2 labels onto an
//! ICESat-2 track (the paper's Table I + Figure 2 story).
//!
//! Curates a track (stage 1 of the staged API) over a scene with real ice
//! drift and an S2 acquisition 40 minutes after the IS2 pass, shows how
//! badly *raw* label transfer does, then runs the labeling stage — drift
//! estimation + correction + the simulated manual pass — and compares.
//!
//! ```text
//! cargo run --release --example autolabel_track
//! ```

use icesat2_seaice::scene::DriftModel;
use icesat2_seaice::seaice::labeling::{autolabel_segments, label_accuracy};
use icesat2_seaice::seaice::pipeline::PipelineConfig;
use icesat2_seaice::seaice::stages::PipelineBuilder;

fn main() {
    let dt_min = 40.0;
    // ~0.17 m/s of ice drift — a brisk but realistic Ross Sea day.
    let drift = DriftModel::from_displacement(-350.0, 250.0, dt_min);
    let mut cfg = PipelineConfig::small(7);
    cfg.scene.drift = drift;
    cfg.scene.half_extent_m = 5_000.0;
    cfg.track_length_m = 8_000.0;
    cfg.pair.render.pixel_size_m = 25.0;
    cfg.pair.render.cloud_cover = 0.25;
    cfg.pair.render.acquisition_offset_min = dt_min;
    println!(
        "ice drift: {:.2} m/s -> {:.0} m displacement over {dt_min} min",
        drift.speed_mps(),
        drift.speed_mps() * dt_min * 60.0
    );

    // Stage 1: granule synthesis, preprocessing, 2 m resampling, and the
    // segmented coincident S2 scene — one artifact.
    let track = PipelineBuilder::new(cfg).curate();
    let scene = track.scene();
    println!(
        "ATL03 beam {}: {} photons -> {} 2 m segments",
        track.beam,
        track.beam_data.photons.len(),
        track.segments.len()
    );
    println!(
        "S2 segmentation: {:?} px per class, {} cloud px",
        track.s2_report.class_counts, track.s2_report.cloud_pixels
    );

    // Raw transfer — misaligned by the drift.
    let raw = autolabel_segments(&track.segments, &track.labels);
    let (raw_acc, raw_n) = label_accuracy(&raw, &scene, 0.0);
    println!(
        "\nraw label transfer:      accuracy {:.2}% ({} labelled)",
        100.0 * raw_acc,
        raw_n
    );

    // Stage 2: drift estimation + correction + manual clean-up (paper
    // Table I) in one call.
    let labeled = track.label();
    println!(
        "estimated S2 shift:      ({:+.0} m, {:+.0} m)  [truth: ({:+.0}, {:+.0})]",
        labeled.drift.dx_m, labeled.drift.dy_m, -track.true_shift_m.0, -track.true_shift_m.1
    );
    let (final_acc, final_n) = label_accuracy(&labeled.labels, &scene, 0.0);
    println!(
        "after correction + manual pass: accuracy {:.2}% ({} labelled)",
        100.0 * final_acc,
        final_n
    );
    assert!((final_acc - labeled.autolabel_accuracy).abs() < 1e-12);

    // A Figure-2-style strip of the final labels.
    println!("\nalong(m)  elev(m)   label");
    for ls in labeled.labels.iter().step_by(labeled.labels.len() / 25) {
        println!(
            "{:>8.0}  {:>7.3}   {}",
            ls.segment.along_track_m,
            ls.segment.mean_h_m,
            ls.label.map(|c| c.name()).unwrap_or("cloud")
        );
    }
}
