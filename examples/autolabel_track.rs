//! Auto-labeling walkthrough: drift-shifted Sentinel-2 labels onto an
//! ICESat-2 track (the paper's Table I + Figure 2 story).
//!
//! Builds a scene with real ice drift, renders a coincident S2 scene 40
//! minutes after the IS2 pass, shows how badly raw label transfer does,
//! estimates the shift, and re-labels.
//!
//! ```text
//! cargo run --release --example autolabel_track
//! ```

use icesat2_seaice::atl03::generator::test_meta;
use icesat2_seaice::atl03::{
    preprocess_beam, resample_2m, Atl03Generator, Beam, GeneratorConfig, PreprocessConfig,
    ResampleConfig, TrackConfig,
};
use icesat2_seaice::scene::{DriftModel, Scene, SceneConfig};
use icesat2_seaice::seaice::labeling::{
    autolabel_segments, estimate_drift, label_accuracy, manual_correction, AutoLabelConfig,
};
use icesat2_seaice::sentinel2::{CoincidentPair, PairConfig, RenderConfig, SegmentationConfig};

fn main() {
    let dt_min = 40.0;
    // ~0.17 m/s of ice drift — a brisk but realistic Ross Sea day.
    let drift = DriftModel::from_displacement(-350.0, 250.0, dt_min);
    let mut sc = SceneConfig::ross_sea_with_drift(7, drift);
    sc.half_extent_m = 5_000.0;
    let scene = Scene::generate(sc);
    println!(
        "ice drift: {:.2} m/s -> {:.0} m displacement over {dt_min} min",
        drift.speed_mps(),
        drift.speed_mps() * dt_min * 60.0
    );

    // IS2 granule at t = 0.
    let track = TrackConfig::crossing(scene.config().center, 8_000.0);
    let granule = Atl03Generator::new(&scene, GeneratorConfig { seed: 7, ..Default::default() })
        .generate(test_meta(0.0), &track, &[Beam::Gt2l]);
    let pre = preprocess_beam(granule.beam(Beam::Gt2l).unwrap(), &PreprocessConfig::default());
    println!(
        "ATL03 beam gt2l: {} photons -> {} signal after preprocessing",
        pre.report.n_input, pre.report.n_signal
    );
    let segments = resample_2m(&pre, &ResampleConfig::default());
    println!("2 m resampling: {} segments", segments.len());

    // Coincident S2 scene at t = +40 min (ice has moved).
    let pair = CoincidentPair::build(
        &scene,
        &PairConfig {
            render: RenderConfig {
                seed: 77,
                pixel_size_m: 25.0,
                cloud_cover: 0.25,
                acquisition_offset_min: dt_min,
                ..RenderConfig::default()
            },
            segmentation: SegmentationConfig::default(),
        },
    );
    println!(
        "S2 segmentation: {:?} px per class, {} cloud px",
        pair.report.class_counts, pair.report.cloud_pixels
    );

    // Raw transfer — misaligned by the drift.
    let raw = autolabel_segments(&segments, &pair.labels);
    let (raw_acc, raw_n) = label_accuracy(&raw, &scene, 0.0);
    println!("\nraw label transfer:      accuracy {:.2}% ({} labelled)", 100.0 * raw_acc, raw_n);

    // Estimate and apply the shift (paper Table I).
    let cfg = AutoLabelConfig::default();
    let est = estimate_drift(&segments, &pair.labels, &cfg);
    println!(
        "estimated S2 shift:      ({:+.0} m, {:+.0} m)  [truth: ({:+.0}, {:+.0})]",
        est.dx_m, est.dy_m, -pair.true_shift_m.0, -pair.true_shift_m.1
    );
    let mut corrected = autolabel_segments(&segments, &pair.labels.shifted(est.dx_m, est.dy_m));
    let (cor_acc, _) = label_accuracy(&corrected, &scene, 0.0);
    println!("after drift correction:  accuracy {:.2}%", 100.0 * cor_acc);

    // The paper's manual pass over transitions and cloud gaps.
    let fixes = manual_correction(&mut corrected, &scene, 0.0, &cfg);
    let (final_acc, final_n) = label_accuracy(&corrected, &scene, 0.0);
    println!(
        "after manual clean-up:   accuracy {:.2}% ({} cloud fills, {} transition fixes, {} labelled)",
        100.0 * final_acc,
        fixes.corrected_cloud,
        fixes.corrected_transition,
        final_n
    );

    // A Figure-2-style strip of the final labels.
    println!("\nalong(m)  elev(m)   label");
    for ls in corrected.iter().step_by(corrected.len() / 25) {
        println!(
            "{:>8.0}  {:>7.3}   {}",
            ls.segment.along_track_m,
            ls.segment.mean_h_m,
            ls.label.map(|c| c.name()).unwrap_or("cloud")
        );
    }
}
