//! Freeboard retrieval deep-dive (the paper's Figures 8–11).
//!
//! Curates a track (staged API, stage 1), classifies it with the fast
//! decision tree, derives the local sea surface with all four candidate
//! methods, compares their quality against the scene's true sea-surface
//! height, and prints the ATL03-vs-ATL10 freeboard comparison.
//!
//! ```text
//! cargo run --release --example freeboard_retrieval
//! ```

use icesat2_seaice::atl03::preprocess_beam;
use icesat2_seaice::scene::SurfaceClass;
use icesat2_seaice::seaice::atl07::{
    atl07_segments, classify_atl07, Atl10Freeboard, DecisionTreeConfig,
};
use icesat2_seaice::seaice::eval;
use icesat2_seaice::seaice::freeboard::FreeboardProduct;
use icesat2_seaice::seaice::heuristic::{heuristic_classes, HeuristicConfig};
use icesat2_seaice::seaice::pipeline::PipelineConfig;
use icesat2_seaice::seaice::seasurface::{SeaSurface, SeaSurfaceMethod, WindowConfig};
use icesat2_seaice::seaice::stages::PipelineBuilder;

fn main() {
    let mut cfg = PipelineConfig::small(31);
    cfg.track_length_m = 12_000.0;
    cfg.scene.half_extent_m = 6_500.0;
    let track_km = cfg.track_length_m / 1000.0;

    // Stage 1 only: granule + preprocessing + 2 m segments.
    let track = PipelineBuilder::new(cfg).curate();
    let scene = track.scene();

    // Fast physics-threshold classification for this demo (relative
    // elevation + photon rate; see seaice::heuristic for why pure rate
    // thresholds fail at 2 m windows).
    let classes: Vec<SurfaceClass> =
        heuristic_classes(&track.segments, &HeuristicConfig::default());
    let n_water = classes
        .iter()
        .filter(|c| **c == SurfaceClass::OpenWater)
        .count();
    println!(
        "{} segments over {:.0} km, {} classified open water",
        track.segments.len(),
        track_km,
        n_water
    );

    println!("\nlocal sea surface, four methods (10 km windows, 5 km overlap):");
    println!("method            windows  water-cov  roughness(m)  RMSE-vs-truth(m)");
    let mut nasa: Option<SeaSurface> = None;
    for method in SeaSurfaceMethod::ALL {
        let ss = SeaSurface::compute(&track.segments, &classes, method, &WindowConfig::default());
        let rmse = eval::sea_surface_rmse(&scene, &track.segments, &ss);
        println!(
            "{:<17} {:>7}  {:>8.0}%  {:>12.4}  {:>16.4}",
            method.name(),
            ss.centers_m.len(),
            100.0 * ss.water_coverage(),
            ss.roughness(),
            rmse
        );
        if method == SeaSurfaceMethod::NasaEquation {
            nasa = Some(ss);
        }
    }
    let nasa = nasa.expect("nasa surface");

    // 2 m freeboard vs the ATL10 emulation (the raw beam photons ride
    // along in the curated artifact precisely for this baseline).
    let fb03 = FreeboardProduct::from_segments("ATL03 2m", &track.segments, &classes, &nasa);
    let pre = preprocess_beam(&track.beam_data, &track.config.preprocess);
    let a07 = atl07_segments(&pre);
    let c07 = classify_atl07(&a07, &DecisionTreeConfig::default());
    let atl10 = Atl10Freeboard::build(a07, c07);

    println!("\nfreeboard products:");
    for p in [&fb03, &atl10.product] {
        let (mean, median, p95) = p.stats();
        println!(
            "  {:<16} {:>7} pts  {:>7.1}/km  mean {:.3}  median {:.3}  p95 {:.3}  peak {:.3} m",
            p.name,
            p.len(),
            p.density_per_km(),
            mean,
            median,
            p95,
            p.modal_freeboard(-0.2, 1.2, 56)
        );
    }
    println!(
        "\ndensity ratio ATL03/ATL10 = {:.0}x;  freeboard RMSE vs truth = {:.3} m",
        eval::density_ratio(&fb03, &atl10.product),
        eval::freeboard_rmse_vs_truth(&scene, &fb03, 0.0)
    );

    println!("\nfreeboard histogram (ATL03 | ATL10):");
    let h03 = fb03.histogram(-0.1, 0.9, 20);
    let h10 = atl10.product.histogram(-0.1, 0.9, 20);
    let max03 = h03.iter().map(|&(_, c)| c).max().unwrap_or(1).max(1);
    for ((center, a), (_, b)) in h03.iter().zip(&h10) {
        let bar = "#".repeat(a * 40 / max03);
        println!("  {center:>5.2} m {a:>6} {b:>4}  {bar}");
    }
}
