//! Quickstart: the staged pipeline in one page.
//!
//! Generates a synthetic Ross Sea scene, synthesises an ATL03 granule
//! over it, auto-labels the 2 m segments from a coincident Sentinel-2
//! scene, trains the paper's LSTM, and retrieves freeboard — one typed,
//! serializable artifact per stage:
//!
//! `CuratedTrack → LabeledDataset → TrainedModels → SeaIceProducts`
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use icesat2_seaice::seaice::pipeline::PipelineConfig;
use icesat2_seaice::seaice::stages::{PipelineBuilder, TrainedModels};
use icesat2_seaice::seaice::Artifact;

fn main() {
    println!("== ICESat-2 ATL03 sea-ice pipeline quickstart (staged API) ==\n");
    let cfg = PipelineConfig::small(2024);
    println!(
        "scene: {} km track over a {} km synthetic Ross Sea scene",
        cfg.track_length_m / 1000.0,
        2.0 * cfg.scene.half_extent_m / 1000.0
    );

    // Each stage is an explicit artifact; `PipelineBuilder::run` chains
    // all four and keeps every intermediate.
    let run = PipelineBuilder::new(cfg).run();

    println!("\n-- stage 1: curation (CuratedTrack)");
    println!("  2 m segments:         {}", run.track.segments.len());
    println!(
        "  S2 raster:            {}x{} px, {} cloud px",
        run.track.labels.width(),
        run.track.labels.height(),
        run.track.s2_report.cloud_pixels
    );

    println!("\n-- stage 2: auto-labeling (LabeledDataset)");
    println!(
        "  estimated S2 shift:   ({:.0} m, {:.0} m)",
        run.labeled.drift.dx_m, run.labeled.drift.dy_m
    );
    println!(
        "  auto-label accuracy:  {:.2}%",
        100.0 * run.labeled.autolabel_accuracy
    );

    println!("\n-- stage 3: deep-learning training (TrainedModels, held-out 20%)");
    for (name, r) in [
        ("LSTM", run.models.lstm_report),
        ("MLP", run.models.mlp_report),
    ] {
        println!(
            "  {name:<4} accuracy {:.2}%  precision {:.2}%  recall {:.2}%  F1 {:.2}%",
            100.0 * r.accuracy,
            100.0 * r.precision,
            100.0 * r.recall,
            100.0 * r.f1
        );
    }

    println!("\n-- stage 4: inference + sea surface + freeboard (SeaIceProducts)");
    println!(
        "  LSTM vs truth over the full track: {:.2}%",
        100.0 * run.products.classification_accuracy_vs_truth
    );
    for ss in &run.products.sea_surfaces {
        println!(
            "  sea surface [{:<15}] windows {:>3}  roughness {:.4} m",
            ss.method.name(),
            ss.centers_m.len(),
            ss.roughness()
        );
    }
    let (mean, median, p95) = run.products.freeboard_atl03.stats();
    println!(
        "  ATL03 2 m freeboard: {} pts ({:.0}/km), mean {:.3} m, median {:.3} m, p95 {:.3} m",
        run.products.freeboard_atl03.len(),
        run.products.freeboard_atl03.density_per_km(),
        mean,
        median,
        p95
    );
    println!(
        "  ATL10 baseline:      {} pts ({:.1}/km)  -> density ratio {:.0}x",
        run.products.atl10.product.len(),
        run.products.atl10.product.density_per_km(),
        run.products.freeboard_atl03.density_per_km() / run.products.atl10.product.density_per_km()
    );
    println!(
        "  ATL03-vs-ATL07 sea-surface gap: {:.3} m (paper: ~0.1 m)",
        run.products.surface_gap_m
    );

    // Every artifact serializes: persist the trained models, reload them,
    // and verify the reloaded classifier reproduces the inference.
    let path = std::env::temp_dir().join("quickstart_models.sic3");
    run.models.save(&path).expect("save models");
    let mut reloaded = TrainedModels::load(&path).expect("load models");
    let classes = reloaded.classify(&run.track.segments);
    println!(
        "\n-- artifact roundtrip: saved TrainedModels ({} bytes), reloaded, predictions identical: {}",
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
        classes == run.products.classes
    );
    let _ = std::fs::remove_file(&path);
}
