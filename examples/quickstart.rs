//! Quickstart: the whole pipeline in one page.
//!
//! Generates a synthetic Ross Sea scene, synthesises an ATL03 granule
//! over it, auto-labels the 2 m segments from a coincident Sentinel-2
//! scene, trains the paper's LSTM, and retrieves freeboard.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use icesat2_seaice::seaice::pipeline::{Pipeline, PipelineConfig};

fn main() {
    println!("== ICESat-2 ATL03 sea-ice pipeline quickstart ==\n");
    let pipeline = Pipeline::new(PipelineConfig::small(2024));
    println!(
        "scene: {} km track over a {} km synthetic Ross Sea scene",
        pipeline.cfg.track_length_m / 1000.0,
        2.0 * pipeline.cfg.scene.half_extent_m / 1000.0
    );

    let products = pipeline.run();

    println!("\n-- stage 1: curation + auto-labeling");
    println!("  2 m segments:         {}", products.segments.len());
    println!(
        "  estimated S2 shift:   ({:.0} m, {:.0} m)",
        products.drift.dx_m, products.drift.dy_m
    );
    println!(
        "  auto-label accuracy:  {:.2}%",
        100.0 * products.autolabel_accuracy
    );

    println!("\n-- stage 2: deep-learning training (held-out 20%)");
    for (name, r) in &products.reports {
        println!(
            "  {name:<4} accuracy {:.2}%  precision {:.2}%  recall {:.2}%  F1 {:.2}%",
            100.0 * r.accuracy,
            100.0 * r.precision,
            100.0 * r.recall,
            100.0 * r.f1
        );
    }

    println!("\n-- stage 3: inference");
    println!(
        "  LSTM vs truth over the full track: {:.2}%",
        100.0 * products.classification_accuracy_vs_truth
    );

    println!("\n-- stage 4: sea surface + freeboard");
    for (name, ss) in &products.sea_surfaces {
        println!(
            "  sea surface [{name:<15}] windows {:>3}  roughness {:.4} m",
            ss.centers_m.len(),
            ss.roughness()
        );
    }
    let (mean, median, p95) = products.freeboard_atl03.stats();
    println!(
        "  ATL03 2 m freeboard: {} pts ({:.0}/km), mean {:.3} m, median {:.3} m, p95 {:.3} m",
        products.freeboard_atl03.len(),
        products.freeboard_atl03.density_per_km(),
        mean,
        median,
        p95
    );
    println!(
        "  ATL10 baseline:      {} pts ({:.1}/km)  -> density ratio {:.0}x",
        products.atl10.product.len(),
        products.atl10.product.density_per_km(),
        products.freeboard_atl03.density_per_km() / products.atl10.product.density_per_km()
    );
    println!(
        "  ATL03-vs-ATL07 sea-surface gap: {:.3} m (paper: ~0.1 m)",
        products.surface_gap_m
    );
}
