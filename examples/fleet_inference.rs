//! Fleet inference: train once, classify many granules in parallel.
//!
//! The access pattern the staged API exists for — and the one a
//! monolithic `run()` makes impossible: stage 1–3 run **once** on a
//! training track, the resulting [`TrainedModels`] artifact is broadcast
//! (as serialized bytes, Spark-style) to a [`FleetDriver`] cluster, and
//! every `(granule, beam)` partition runs preprocessing, LSTM inference,
//! sea-surface derivation, and freeboard retrieval with the shared model.
//!
//! ```text
//! cargo run --release --example fleet_inference
//! ```

use icesat2_seaice::seaice::fleet::FleetDriver;
use icesat2_seaice::seaice::pipeline::{Pipeline, PipelineConfig};
use icesat2_seaice::seaice::stages::PipelineBuilder;
use icesat2_seaice::sparklite::Cluster;

fn main() {
    let cfg = PipelineConfig::small(77);

    // Train once (stages 1-3) on the reference track.
    println!("training the paper's LSTM on the reference track ...");
    let track = PipelineBuilder::new(cfg.clone()).curate();
    let labeled = track.label();
    let models = labeled.train(&track);
    println!(
        "  held-out LSTM accuracy {:.2}%  (MLP {:.2}%)",
        100.0 * models.lstm_report.accuracy,
        100.0 * models.mlp_report.accuracy
    );

    // Materialise a fleet: 4 granules x 3 strong beams = 12 partitions.
    let pipeline = Pipeline::new(cfg.clone());
    let dir = std::env::temp_dir().join("seaice_fleet_inference_example");
    let n_granules = 4;
    let sources = FleetDriver::write_fleet(&pipeline, &dir, n_granules).expect("fleet");
    println!(
        "\nfleet: {n_granules} granules ({} beam partitions) under {dir:?}",
        sources.len()
    );

    // One shared TrainedModels, fanned out over executors x cores.
    let driver = FleetDriver::new(Cluster::new(2, 2), &cfg);
    let (products, report) = driver.classify_run(&sources, &models);
    println!(
        "cluster 2x2: load {:.2}s  map {:.3}s  reduce {:.2}s\n",
        report.times.load_s, report.times.map_s, report.times.reduce_s
    );

    println!("granule                  beam  segs   thick   thin  water  mean fb(m)");
    for p in &products {
        println!(
            "{:<24} {:<5} {:>5}  {:>5}  {:>5}  {:>5}  {:>9.3}",
            p.granule_id,
            p.beam.name(),
            p.n_segments,
            p.class_counts[0],
            p.class_counts[1],
            p.class_counts[2],
            p.mean_ice_freeboard_m()
        );
    }

    let total_segments: usize = products.iter().map(|p| p.n_segments).sum();
    let total_points: usize = products.iter().map(|p| p.freeboard.len()).sum();
    println!(
        "\n{} segments classified, {} freeboard points, one training run.",
        total_segments, total_points
    );

    let _ = std::fs::remove_dir_all(&dir);
}
