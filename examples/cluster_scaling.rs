//! Map-reduce scaling demo (the paper's Tables II and V on your cores).
//!
//! Writes a fleet of binary ATL03 granules to disk, then sweeps the
//! paper's executors × cores grid twice through [`FleetDriver`] — once
//! auto-labeling, once computing freeboard — printing load/map/reduce
//! times and speedups. Finishes with the cost-model simulation at the
//! paper's calibration.
//!
//! ```text
//! cargo run --release --example cluster_scaling
//! ```

use std::sync::Arc;

use icesat2_seaice::seaice::fleet::FleetDriver;
use icesat2_seaice::seaice::pipeline::{Pipeline, PipelineConfig};
use icesat2_seaice::sparklite::scaling::PAPER_GRID;
use icesat2_seaice::sparklite::{Cluster, ScalingTable, SimCluster, SimCost};

fn main() {
    let mut cfg = PipelineConfig::small(51);
    cfg.track_length_m = 6_000.0;
    let pipeline = Pipeline::new(cfg);
    let dir = std::env::temp_dir().join("seaice_cluster_scaling_example");
    let n_granules = 6; // 18 beam partitions
    println!("writing {n_granules} granules (3 strong beams each) to {dir:?} ...");
    let sources = FleetDriver::write_fleet(&pipeline, &dir, n_granules).expect("fleet");
    let pair = pipeline.coincident_pair();
    let raster = Arc::new(pair.labels.clone());

    let grid = &PAPER_GRID[..];

    let autolabel = ScalingTable::sweep("auto-labeling (measured on this host)", grid, |e, c| {
        let driver = FleetDriver::new(Cluster::new(e, c), &pipeline.cfg);
        let (_, report) = driver.autolabel_run(&sources, Arc::clone(&raster));
        report
    });
    println!("\n{}", autolabel.render());

    let freeboard = ScalingTable::sweep("freeboard (measured on this host)", grid, |e, c| {
        let driver = FleetDriver::new(Cluster::new(e, c), &pipeline.cfg);
        let (_, report) = driver.freeboard_run(&sources);
        report
    });
    println!("{}", freeboard.render());

    // The deterministic simulation at the paper's absolute calibration.
    let load: Vec<f64> = vec![108.0 / 320.0; 320];
    let reduce: Vec<f64> = vec![390.0 / 320.0; 320];
    let sim = ScalingTable::sweep(
        "simulated cluster at the paper's Table II calibration",
        grid,
        |e, c| SimCluster::new(e, c, SimCost::default()).simulate_pipeline(&load, &reduce),
    );
    println!("{}", sim.render());
    println!(
        "paper headline: 16.25x reduce / 9.0x load at 4x4 — simulated {:.2}x / {:.2}x",
        sim.max_reduce_speedup(),
        sim.max_load_speedup()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
