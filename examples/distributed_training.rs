//! Horovod-style distributed training demo (the paper's Table IV /
//! Figure 5 on your own cores).
//!
//! Stages 1–2 of the staged API provide the labelled training set; the
//! paper's LSTM then trains on 1, 2, and 4 worker threads standing in for
//! GPUs: rank-0 broadcast, per-rank gradient computation, ring all-reduce
//! averaging, identical local Adam updates. Also prints the calibrated
//! DGX A100 cost model, which reproduces the paper's published speedup
//! curve exactly.
//!
//! ```text
//! cargo run --release --example distributed_training
//! ```

use icesat2_seaice::hvd::costmodel::{render_table4, DgxCostModel};
use icesat2_seaice::hvd::{DistributedTrainer, TrainerConfig};
use icesat2_seaice::neurite::{Adam, FocalLoss};
use icesat2_seaice::seaice::features::sequence_dataset;
use icesat2_seaice::seaice::models::{build_model, ModelKind};
use icesat2_seaice::seaice::pipeline::PipelineConfig;
use icesat2_seaice::seaice::stages::PipelineBuilder;

fn main() {
    // Stages 1–2: curation + auto-labeling, as explicit artifacts.
    let track = PipelineBuilder::new(PipelineConfig::small(11)).curate();
    let labeled = track.label();
    let labels = labeled.label_indices();
    let data = sequence_dataset(&track.segments, &labels, true, &track.config.features);
    println!(
        "training set: {} sequence windows of 5 x 6 features\n",
        data.len()
    );

    println!("measured on worker threads (paper model, focal loss, Adam 0.003):");
    println!("workers  time(s)  s/epoch   data/s  speedup  final-loss");
    let mut base: Option<f64> = None;
    for n in [1usize, 2, 4] {
        let (_, stats) = DistributedTrainer::train(
            |rank| build_model(ModelKind::PaperLstm, 11 ^ rank as u64),
            || Box::new(Adam::new(0.003)),
            &FocalLoss::new(2.0),
            &data,
            &TrainerConfig {
                n_workers: n,
                batch_size: 32,
                epochs: 3,
                seed: 11,
            },
        );
        let b = *base.get_or_insert(stats.total_s);
        println!(
            "{n:>7}  {:>7.2}  {:>7.3}  {:>7.0}  {:>7.2}  {:>10.4}",
            stats.total_s,
            stats.per_epoch_s,
            stats.samples_per_s,
            b / stats.total_s,
            stats.epoch_losses.last().unwrap()
        );
    }

    println!("\nDGX A100 cost model at the paper's calibration:");
    let model = DgxCostModel::paper_default();
    print!("{}", render_table4(&model.table4(&[1, 2, 4, 6, 8])));
    println!("\npaper Table IV speedups: 1.96 / 3.81 / 5.68 / 7.25 at 2 / 4 / 6 / 8 GPUs");
}
