//! Serve-path demo: classify a granule fleet into a catalog, then query
//! it like a downstream consumer.
//!
//! ```text
//! cargo run --release --example catalog_queries
//! ```

use icesat2_seaice::catalog::{Catalog, CatalogSink, GridConfig, TimeRange};
use icesat2_seaice::geo::EPSG_3976;
use icesat2_seaice::seaice::fleet::FleetDriver;
use icesat2_seaice::seaice::pipeline::{Pipeline, PipelineConfig};
use icesat2_seaice::seaice::stages::PipelineBuilder;
use icesat2_seaice::sparklite::Cluster;

fn main() {
    let pipeline = Pipeline::new(PipelineConfig::small(91));
    let fleet_dir = std::env::temp_dir().join("seaice_catalog_example_fleet");
    let cat_dir = std::env::temp_dir().join("seaice_catalog_example_store");
    let _ = std::fs::remove_dir_all(&cat_dir);

    println!("training one classifier (staged pipeline)...");
    let run = PipelineBuilder::new(pipeline.cfg.clone()).run();

    let n_granules = 3;
    println!("writing {n_granules} granules and classifying the fleet into a catalog...");
    let sources = FleetDriver::write_fleet(&pipeline, &fleet_dir, n_granules).expect("fleet");
    let driver = FleetDriver::new(Cluster::new(2, 2), &pipeline.cfg);
    let grid = GridConfig::around(pipeline.cfg.scene.center, 2.0 * pipeline.cfg.track_length_m);
    let catalog = Catalog::create(&cat_dir, grid).expect("create catalog");
    let (ingest, report) = driver
        .classify_into_catalog(&sources, &run.models, &catalog)
        .expect("classify into catalog");
    println!(
        "  ingested {} samples ({} out of domain) — fleet reduce {:.2}s",
        ingest.n_samples, ingest.n_out_of_domain, report.times.reduce_s
    );

    let whole = catalog
        .query_rect(&catalog.grid().domain(), TimeRange::all())
        .expect("domain query");
    println!(
        "  domain: {} samples over {} cells, mean ice freeboard {:.3} m (min {:.3}, max {:.3})",
        whole.n_samples,
        whole.n_cells,
        whole.mean_ice_freeboard_m,
        whole.min_freeboard_m,
        whole.max_freeboard_m
    );

    let probe = EPSG_3976.inverse(pipeline.cfg.scene.center);
    if let Some(cell) = catalog
        .query_point(probe, TimeRange::all())
        .expect("point query")
    {
        println!(
            "  point probe {:.3}S {:.3}E: {} samples in its {:.0} m cell, dominant class {:?}",
            -probe.lat,
            probe.lon,
            cell.agg.n,
            catalog.grid().cell_size_m(),
            cell.agg.dominant_class()
        );
    }

    let cells = catalog
        .query_cells(&catalog.grid().domain(), TimeRange::all())
        .expect("cells");
    println!(
        "  gridded composite: {} populated cells; first cell mean ice fb {:.3} m",
        cells.len(),
        cells
            .first()
            .map(|c| c.agg.mean_ice_freeboard_m())
            .unwrap_or(0.0)
    );

    let stats = catalog.stats().expect("stats");
    println!(
        "  store: {} layers / {} tiles / {} samples, cache hit rate {:.1}%",
        stats.n_layers,
        stats.n_tiles,
        stats.n_samples,
        stats.cache.hit_rate() * 100.0
    );

    let _ = std::fs::remove_dir_all(&fleet_dir);
    let _ = std::fs::remove_dir_all(&cat_dir);
}
