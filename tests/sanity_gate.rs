//! Tier-1 gate: the workspace must be sanity-clean.
//!
//! This makes `cargo test -q` fail — with the full finding list — the
//! moment anyone reintroduces a lock-order inversion, a panic on the
//! serve path, hasher-ordered aggregation, an allocating hot kernel,
//! an unaudited `unsafe`, or wire constants that drift from
//! `docs/PROTOCOL.md`. See `docs/LINTS.md` for the rule catalogue and
//! the inline suppression syntax.

use std::path::Path;

#[test]
fn workspace_is_sanity_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = sanity::run_workspace(root);
    assert!(
        findings.is_empty(),
        "the workspace has sanity findings; fix them or suppress with \
         `// sanity: allow(<rule>) -- <reason>` (docs/LINTS.md):\n{}",
        sanity::render_text(&findings)
    );
}
