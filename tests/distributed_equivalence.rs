//! Distribution must never change results — only wall-clock time.
//! These tests pin the equivalences the scalability tables rely on.

use std::sync::Arc;

use icesat2_seaice::hvd::{DistributedTrainer, TrainerConfig};
use icesat2_seaice::neurite::{Adam, BatchIter, CrossEntropy, Dataset, Matrix};
use icesat2_seaice::seaice::fleet::FleetDriver;
use icesat2_seaice::seaice::models::{build_model, ModelKind};
use icesat2_seaice::seaice::pipeline::{Pipeline, PipelineConfig};
use icesat2_seaice::sparklite::Cluster;

#[test]
fn scaled_runs_are_invariant_across_topologies() {
    let pipeline = Pipeline::new(PipelineConfig::small(3001));
    let dir = std::env::temp_dir().join("integration_scaled_invariance");
    let sources = FleetDriver::write_fleet(&pipeline, &dir, 2).unwrap();
    let pair = pipeline.coincident_pair();
    let raster = Arc::new(pair.labels.clone());

    let mut label_counts = Vec::new();
    let mut freeboard_results = Vec::new();
    for (e, c) in [(1usize, 1usize), (1, 4), (3, 2), (4, 4)] {
        let driver = FleetDriver::new(Cluster::new(e, c), &pipeline.cfg);
        let (counts, _) = driver.autolabel_run(&sources, Arc::clone(&raster));
        label_counts.push(counts);
        let (summary, _) = driver.freeboard_run(&sources);
        freeboard_results.push(summary);
    }
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        label_counts.windows(2).all(|w| w[0] == w[1]),
        "{label_counts:?}"
    );
    for w in freeboard_results.windows(2) {
        assert_eq!(
            w[0].n_ice_segments, w[1].n_ice_segments,
            "freeboard point counts diverged"
        );
        assert!(
            (w[0].mean_freeboard_m - w[1].mean_freeboard_m).abs() < 1e-12,
            "mean freeboard diverged"
        );
    }
    // And the numbers are non-trivial.
    assert!(label_counts[0].iter().sum::<usize>() > 1_000);
    assert!(freeboard_results[0].n_ice_segments > 100);
}

#[test]
fn horovod_single_worker_equals_plain_loop() {
    // Synthetic two-moon-ish data.
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3003);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for _ in 0..160 {
        let cls = rng.random_range(0..2usize);
        let cx: f32 = if cls == 0 { -1.0 } else { 1.0 };
        rows.push(vec![
            cx + rng.random_range(-0.3..0.3f32),
            -cx + rng.random_range(-0.3..0.3f32),
        ]);
        labels.push(cls);
    }
    let data = Dataset::new(Matrix::from_rows(&rows), labels);

    let make = |_rank: usize| {
        let mut r = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        icesat2_seaice::neurite::Sequential::new()
            .add(icesat2_seaice::neurite::Dense::new(
                2,
                8,
                icesat2_seaice::neurite::Activation::Relu,
                &mut r,
            ))
            .add(icesat2_seaice::neurite::Dense::new(
                8,
                2,
                icesat2_seaice::neurite::Activation::Linear,
                &mut r,
            ))
    };

    let cfg = TrainerConfig {
        n_workers: 1,
        batch_size: 16,
        epochs: 3,
        seed: 13,
    };
    let (hvd_model, _) = DistributedTrainer::train(
        make,
        || Box::new(Adam::new(0.01)),
        &CrossEntropy,
        &data,
        &cfg,
    );

    let mut local = make(0);
    let mut opt = Adam::new(0.01);
    for epoch in 0..cfg.epochs {
        for (x, y) in BatchIter::new(&data, cfg.batch_size, cfg.seed ^ epoch as u64) {
            local.train_step(&x, &y, &CrossEntropy, &mut opt);
        }
    }
    for (a, b) in hvd_model.flat_params().iter().zip(local.flat_params()) {
        assert!((a - b).abs() < 1e-6, "replica drift {a} vs {b}");
    }
}

#[test]
fn distributed_paper_lstm_trains_on_real_pipeline_data() {
    // The full stack: pipeline stage 1 data into the distributed trainer
    // with the paper's architecture at 4 workers.
    let pipeline = Pipeline::new(PipelineConfig::small(3005));
    let granule = pipeline.generate_granule();
    let segments = pipeline.segments_for_beam(&granule, icesat2_seaice::atl03::Beam::Gt2l);
    let pair = pipeline.coincident_pair();
    let (labeled, _) = pipeline.autolabel(&segments, &pair);
    let labels: Vec<usize> = labeled.iter().map(|l| l.label.unwrap().index()).collect();
    let data = icesat2_seaice::seaice::features::sequence_dataset(
        &segments,
        &labels,
        true,
        &pipeline.cfg.features,
    );

    let (mut model, stats) = DistributedTrainer::train(
        |rank| build_model(ModelKind::PaperLstm, 3005 ^ rank as u64),
        || Box::new(Adam::new(0.003)),
        &icesat2_seaice::neurite::FocalLoss::new(2.0),
        &data,
        &TrainerConfig {
            n_workers: 4,
            batch_size: 32,
            epochs: 3,
            seed: 17,
        },
    );
    assert_eq!(stats.n_workers, 4);
    assert!(stats.epoch_losses.len() == 3);
    let preds = model.predict(&data.x);
    let acc = preds.iter().zip(&data.y).filter(|(a, b)| a == b).count() as f64 / data.len() as f64;
    assert!(acc > 0.85, "distributed LSTM accuracy {acc}");
}
