//! The qualitative claims of every table and figure must hold at the
//! quick workload scale — the same assertions EXPERIMENTS.md records at
//! full scale.

use seaice_bench::common::Scale;
use seaice_bench::{figures, tables};

#[test]
fn table2_and_table5_simulations_match_paper_shape() {
    let t2 = tables::table2(Scale::Quick);
    // Simulated sweep matches the paper's headline factors closely.
    let reduce = t2.metric("sim_max_reduce_speedup").unwrap();
    let load = t2.metric("sim_max_load_speedup").unwrap();
    assert!(
        (12.0..=16.5).contains(&reduce),
        "table2 sim reduce {reduce}"
    );
    assert!((7.0..=11.0).contains(&load), "table2 sim load {load}");
    // Measured run on this host parallelises at all — meaningful only
    // when the host actually has spare cores.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= 4 {
        assert!(t2.metric("measured_max_reduce_speedup").unwrap() > 1.2);
    }

    let t5 = tables::table5(Scale::Quick);
    let reduce5 = t5.metric("sim_max_reduce_speedup").unwrap();
    assert!(
        (12.0..=16.5).contains(&reduce5),
        "table5 sim reduce {reduce5}"
    );
    assert!(t5.metric("freeboard_points").unwrap() > 100.0);
    let fb = t5.metric("mean_freeboard_m").unwrap();
    assert!((0.05..0.8).contains(&fb), "mean freeboard {fb}");
}

#[test]
fn table3_and_fig4_model_ranking_holds() {
    let t3 = tables::table3(Scale::Quick);
    let lstm = t3.metric("lstm_accuracy").unwrap();
    let mlp = t3.metric("mlp_accuracy").unwrap();
    assert!(lstm > 0.85, "LSTM accuracy {lstm}");
    assert!(lstm > mlp, "LSTM {lstm} must beat MLP {mlp}");

    let f4 = figures::fig4(Scale::Quick);
    let thick = f4.metric("thick_recall").unwrap();
    let water = f4.metric("water_recall").unwrap();
    assert!(thick > 0.9, "thick recall {thick}");
    assert!(
        thick >= water,
        "majority-class recall must lead: thick {thick} vs water {water}"
    );
}

#[test]
fn table4_cost_model_reproduces_paper_speedups() {
    let t4 = tables::table4(Scale::Quick);
    let sim8 = t4.metric("sim_speedup_8").unwrap();
    assert!((7.0..7.5).contains(&sim8), "8-GPU sim speedup {sim8}");
}

#[test]
fn fig6_fig8_fig10_product_claims_hold() {
    let f6 = figures::fig6(Scale::Quick);
    assert!(
        f6.metric("density_ratio").unwrap() > 5.0,
        "ATL03 must be much denser than ATL07"
    );
    assert!(f6.metric("atl03_truth_accuracy").unwrap() > 0.85);

    let f8 = figures::fig8(Scale::Quick);
    // The gap between our surface and the ATL07 emulation is
    // decimetre-scale, like the paper's ~0.1 m.
    assert!(f8.metric("surface_gap_m").unwrap() < 0.3);
    // The chosen (NASA) method has reasonable truth error.
    assert!(f8.metric("nasa-equation_rmse").unwrap() < 0.15);

    let f10 = figures::fig10(Scale::Quick);
    assert!(f10.metric("density_ratio").unwrap() > 5.0);
    assert!(
        f10.metric("peak_gap_m").unwrap() < 0.1,
        "freeboard distribution peaks must roughly coincide"
    );
    let rmse = f10.metric("freeboard_rmse_m").unwrap();
    assert!(rmse < 0.2, "freeboard RMSE {rmse}");
}

#[test]
fn table1_drift_estimates_recover_paper_shifts() {
    let t1 = tables::table1(Scale::Quick);
    // At the quick scale (4 km tracks) the hardest pair can land a few
    // grid cells off; the mean must stay well inside one S2 pixel row.
    let worst = t1.metric("worst_error_m").unwrap();
    assert!(worst <= 300.0, "worst drift error {worst} m");
    let mean: f64 = (1..=8)
        .map(|i| t1.metric(&format!("pair{i}_error_m")).unwrap())
        .sum::<f64>()
        / 8.0;
    assert!(mean <= 80.0, "mean drift error {mean} m");
}

#[test]
fn resolution_ablation_keeps_accuracy_at_30x_resolution() {
    // The paper's claim is a *resolution* win at comparable accuracy; on
    // easy clear-sky scenes the coarse tree can be a hair better because
    // its 150-photon segments average away the noise.
    let ab = figures::resolution_ablation(Scale::Quick);
    let a03 = ab.metric("atl03_accuracy").unwrap();
    let a07 = ab.metric("atl07_accuracy").unwrap();
    assert!(
        a03 > a07 - 0.03,
        "2 m DL product fell behind the coarse tree: {a03} vs {a07}"
    );
    assert!(a03 > 0.85, "2 m accuracy {a03}");
}
