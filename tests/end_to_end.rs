//! End-to-end integration: the four-stage pipeline across all crates,
//! exercised through the legacy `Pipeline::run()` compatibility wrapper
//! (which chains the staged API under the hood — see
//! `tests/staged_pipeline.rs` for the stage-level coverage).

use icesat2_seaice::scene::SurfaceClass;
use icesat2_seaice::seaice::pipeline::{Pipeline, PipelineConfig};

#[test]
fn full_pipeline_products_are_coherent() {
    let pipeline = Pipeline::new(PipelineConfig::small(1002));
    let products = pipeline.run();

    // --- Stage 1: curation + auto-labeling.
    assert!(products.segments.len() > 2_000, "too few 2 m segments");
    assert_eq!(products.auto_labels.len(), products.segments.len());
    assert!(products.auto_labels.iter().all(|l| l.label.is_some()));
    assert!(
        products.autolabel_accuracy > 0.85,
        "auto-label accuracy {}",
        products.autolabel_accuracy
    );
    // Segments are along-track ordered with 2 m indexing.
    assert!(products
        .segments
        .windows(2)
        .all(|w| w[0].index < w[1].index && w[0].along_track_m < w[1].along_track_m));

    // --- Stage 2: the paper's model ranking (LSTM wins).
    let lstm = products.reports["LSTM"];
    let mlp = products.reports["MLP"];
    assert!(lstm.accuracy > 0.85, "LSTM accuracy {}", lstm.accuracy);
    assert!(
        lstm.accuracy >= mlp.accuracy,
        "LSTM {} should beat MLP {}",
        lstm.accuracy,
        mlp.accuracy
    );
    // Figure 4 ordering: majority class has the best recall.
    let m = &products.lstm_confusion;
    assert!(m.recall(0) >= m.recall(1));
    assert!(m.recall(0) >= m.recall(2));

    // --- Stage 3: inference covers every segment.
    assert_eq!(products.classes.len(), products.segments.len());
    assert!(
        products.classification_accuracy_vs_truth > 0.85,
        "truth accuracy {}",
        products.classification_accuracy_vs_truth
    );
    // Thick ice dominates the Ross Sea.
    let thick = products
        .classes
        .iter()
        .filter(|c| **c == SurfaceClass::ThickIce)
        .count();
    assert!(thick * 2 > products.classes.len(), "thick not dominant");

    // --- Stage 4: surfaces and freeboard.
    assert_eq!(products.sea_surfaces.len(), 4);
    for (name, ss) in &products.sea_surfaces {
        assert!(!ss.centers_m.is_empty(), "{name} produced no windows");
        assert!(
            ss.href_m.iter().all(|h| h.abs() < 1.0),
            "{name} produced implausible sea levels"
        );
    }
    // The headline: 2 m product is dramatically denser than ATL10.
    let ratio = products.freeboard_atl03.density_per_km()
        / products.atl10.product.density_per_km().max(1e-9);
    assert!(ratio > 5.0, "density ratio {ratio}");
    // Mean ice freeboard is physically plausible for the Ross Sea.
    let (mean, _, _) = products.freeboard_atl03.stats();
    assert!((0.05..0.8).contains(&mean), "mean freeboard {mean}");
    // ATL03-vs-ATL07 sea-surface gap is decimetre-scale, like the paper
    // (ours is a little larger because the ATL07 emulation classifies
    // with a noisy decision tree).
    assert!(
        products.surface_gap_m < 0.3,
        "gap {}",
        products.surface_gap_m
    );
}

#[test]
fn pipeline_is_deterministic() {
    let a = Pipeline::new(PipelineConfig::small(1003)).run();
    let b = Pipeline::new(PipelineConfig::small(1003)).run();
    assert_eq!(a.segments.len(), b.segments.len());
    assert_eq!(a.classes, b.classes);
    assert_eq!(a.drift.dx_m, b.drift.dx_m);
    assert_eq!(
        a.freeboard_atl03.points.len(),
        b.freeboard_atl03.points.len()
    );
    for (x, y) in a
        .freeboard_atl03
        .points
        .iter()
        .zip(&b.freeboard_atl03.points)
    {
        assert_eq!(x.freeboard_m, y.freeboard_m);
    }
}

#[test]
fn different_seeds_give_different_scenes_same_quality() {
    let a = Pipeline::new(PipelineConfig::small(1005)).run();
    let b = Pipeline::new(PipelineConfig::small(1006)).run();
    // Different truth, both pipelines still work.
    assert!(a.autolabel_accuracy > 0.85);
    assert!(b.autolabel_accuracy > 0.85);
    assert_ne!(
        a.segments.len(),
        b.segments.len(),
        "different scenes should photon-count differently"
    );
}
