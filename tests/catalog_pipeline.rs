//! End-to-end serve path: fleet classification → catalog ingest →
//! concurrent spatial/temporal queries, wired through the umbrella
//! crate exactly as a downstream consumer would — including the
//! idempotency contract: a fleet re-run refreshes a catalog instead of
//! doubling it.

use std::collections::BTreeMap;
use std::path::PathBuf;

use icesat2_seaice::catalog::{Catalog, CatalogSink, GridConfig, IngestMode, TimeRange};
use icesat2_seaice::geo::EPSG_3976;
use icesat2_seaice::seaice::fleet::FleetDriver;
use icesat2_seaice::seaice::pipeline::{Pipeline, PipelineConfig};
use icesat2_seaice::seaice::stages::PipelineBuilder;
use icesat2_seaice::sparklite::Cluster;

/// Every tile and sidecar-ledger file of a catalog directory, bytes and
/// all — the Skip re-ingest contract is byte identity over these.
fn store_bytes(dir: &std::path::Path) -> BTreeMap<PathBuf, Vec<u8>> {
    let mut out = BTreeMap::new();
    for sub in ["tiles", "ledgers"] {
        let sub = dir.join(sub);
        if !sub.is_dir() {
            continue;
        }
        for entry in std::fs::read_dir(&sub).unwrap() {
            let path = entry.unwrap().path();
            out.insert(path.clone(), std::fs::read(&path).unwrap());
        }
    }
    out
}

#[test]
fn fleet_products_land_in_catalog_and_queries_agree() {
    let pipeline = Pipeline::new(PipelineConfig::small(77));
    let fleet_dir = std::env::temp_dir().join("integration_catalog_fleet");
    let sources = FleetDriver::write_fleet(&pipeline, &fleet_dir, 2).unwrap();
    let run = PipelineBuilder::new(pipeline.cfg.clone()).run();
    let driver = FleetDriver::new(Cluster::new(2, 2), &pipeline.cfg);

    let cat_dir = std::env::temp_dir().join("integration_catalog_store");
    let _ = std::fs::remove_dir_all(&cat_dir);
    let grid = GridConfig::around(pipeline.cfg.scene.center, 2.0 * pipeline.cfg.track_length_m);
    let catalog = Catalog::create(&cat_dir, grid).unwrap();

    let (ingest, report) = driver
        .classify_into_catalog(&sources, &run.models, &catalog)
        .unwrap();
    assert!(report.times.reduce_s >= 0.0);
    assert!(ingest.n_samples > 5_000, "ingested {}", ingest.n_samples);

    // The classify products and the catalog agree on what was stored.
    let (products, _) = driver.classify_run(&sources, &run.models);
    let product_points: usize = products.iter().map(|p| p.freeboard.len()).sum();
    assert_eq!(
        ingest.n_samples + ingest.n_out_of_domain,
        product_points,
        "every product point was either stored or counted out of domain"
    );

    // Re-running the same fleet is a byte-stable no-op: the default
    // `IngestMode::Skip` recognises every `(granule, beam)` source and
    // leaves every tile file untouched.
    let before = store_bytes(&cat_dir);
    let stats_before = catalog.stats().unwrap();
    let (reingest, _) = driver
        .classify_into_catalog(&sources, &run.models, &catalog)
        .unwrap();
    assert_eq!(reingest.n_samples, 0, "a re-run must not write samples");
    assert_eq!(reingest.n_skipped, product_points);
    assert_eq!(
        store_bytes(&cat_dir),
        before,
        "tile bytes moved on a re-run"
    );
    assert_eq!(catalog.stats().unwrap().n_samples, stats_before.n_samples);

    // A Replace re-ingest of perturbed products converges to the same
    // state as a fresh build from those products, over a query battery
    // compared down to the bits.
    let mut perturbed = products.clone();
    for p in &mut perturbed {
        for point in &mut p.freeboard.points {
            point.freeboard_m += 0.015;
        }
    }
    catalog
        .ingest_products_with(&perturbed, IngestMode::Replace)
        .unwrap();
    let fresh_dir = std::env::temp_dir().join("integration_catalog_fresh");
    let _ = std::fs::remove_dir_all(&fresh_dir);
    let fresh = Catalog::create(&fresh_dir, grid).unwrap();
    fresh.ingest_products(&perturbed).unwrap();
    let battery = |c: &Catalog| {
        let domain = c.grid().domain();
        let whole = c.query_rect(&domain, TimeRange::all()).unwrap();
        let cells = c.query_cells(&domain, TimeRange::all()).unwrap();
        (whole, cells)
    };
    let (replaced_whole, replaced_cells) = battery(&catalog);
    let (fresh_whole, fresh_cells) = battery(&fresh);
    assert_eq!(replaced_whole, fresh_whole);
    assert_eq!(
        replaced_whole.mean_ice_freeboard_m.to_bits(),
        fresh_whole.mean_ice_freeboard_m.to_bits()
    );
    assert_eq!(replaced_cells, fresh_cells);
    catalog.validate().unwrap();
    let _ = std::fs::remove_dir_all(&fresh_dir);

    // Restore the original products for the assertions below.
    catalog
        .ingest_products_with(&products, IngestMode::Replace)
        .unwrap();

    // Whole-domain summary covers everything stored, with sane physics.
    let whole = catalog
        .query_rect(&catalog.grid().domain(), TimeRange::all())
        .unwrap();
    whole.check_consistency().unwrap();
    assert_eq!(whole.n_samples, ingest.n_samples);
    assert!(
        whole.mean_ice_freeboard_m > 0.0 && whole.mean_ice_freeboard_m < 1.0,
        "mean ice freeboard {}",
        whole.mean_ice_freeboard_m
    );
    // All fleet granules share one acquisition month.
    assert_eq!(catalog.layers().len(), 1);

    // A point probe at the scene centre hits the track's cell.
    let probe = EPSG_3976.inverse(pipeline.cfg.scene.center);
    let cell = catalog.query_point(probe, TimeRange::all()).unwrap();
    assert!(cell.is_some(), "scene-centre cell is populated");

    // Reopening from disk answers the same, bit for bit.
    drop(catalog);
    let reopened = Catalog::open(&cat_dir).unwrap();
    let whole2 = reopened
        .query_rect(&reopened.grid().domain(), TimeRange::all())
        .unwrap();
    assert_eq!(whole2, whole);
    assert_eq!(
        whole2.mean_ice_freeboard_m.to_bits(),
        whole.mean_ice_freeboard_m.to_bits()
    );
    reopened.validate().unwrap();

    let _ = std::fs::remove_dir_all(&fleet_dir);
    let _ = std::fs::remove_dir_all(&cat_dir);
}
