//! End-to-end serve path: fleet classification → catalog ingest →
//! concurrent spatial/temporal queries, wired through the umbrella
//! crate exactly as a downstream consumer would.

use icesat2_seaice::catalog::{Catalog, CatalogSink, GridConfig, TimeRange};
use icesat2_seaice::geo::EPSG_3976;
use icesat2_seaice::seaice::fleet::FleetDriver;
use icesat2_seaice::seaice::pipeline::{Pipeline, PipelineConfig};
use icesat2_seaice::seaice::stages::PipelineBuilder;
use icesat2_seaice::sparklite::Cluster;

#[test]
fn fleet_products_land_in_catalog_and_queries_agree() {
    let pipeline = Pipeline::new(PipelineConfig::small(77));
    let fleet_dir = std::env::temp_dir().join("integration_catalog_fleet");
    let sources = FleetDriver::write_fleet(&pipeline, &fleet_dir, 2).unwrap();
    let run = PipelineBuilder::new(pipeline.cfg.clone()).run();
    let driver = FleetDriver::new(Cluster::new(2, 2), &pipeline.cfg);

    let cat_dir = std::env::temp_dir().join("integration_catalog_store");
    let _ = std::fs::remove_dir_all(&cat_dir);
    let grid = GridConfig::around(pipeline.cfg.scene.center, 2.0 * pipeline.cfg.track_length_m);
    let catalog = Catalog::create(&cat_dir, grid).unwrap();

    let (ingest, report) = driver
        .classify_into_catalog(&sources, &run.models, &catalog)
        .unwrap();
    assert!(report.times.reduce_s >= 0.0);
    assert!(ingest.n_samples > 5_000, "ingested {}", ingest.n_samples);

    // The classify products and the catalog agree on what was stored.
    let (products, _) = driver.classify_run(&sources, &run.models);
    let product_points: usize = products.iter().map(|p| p.freeboard.len()).sum();
    assert_eq!(
        ingest.n_samples + ingest.n_out_of_domain,
        product_points,
        "every product point was either stored or counted out of domain"
    );
    // (A second classify_into_catalog of the same fleet would double the
    // store — dedup is a documented ROADMAP follow-on.)

    // Whole-domain summary covers everything stored, with sane physics.
    let whole = catalog
        .query_rect(&catalog.grid().domain(), TimeRange::all())
        .unwrap();
    whole.check_consistency().unwrap();
    assert_eq!(whole.n_samples, ingest.n_samples);
    assert!(
        whole.mean_ice_freeboard_m > 0.0 && whole.mean_ice_freeboard_m < 1.0,
        "mean ice freeboard {}",
        whole.mean_ice_freeboard_m
    );
    // All fleet granules share one acquisition month.
    assert_eq!(catalog.layers().len(), 1);

    // A point probe at the scene centre hits the track's cell.
    let probe = EPSG_3976.inverse(pipeline.cfg.scene.center);
    let cell = catalog.query_point(probe, TimeRange::all()).unwrap();
    assert!(cell.is_some(), "scene-centre cell is populated");

    // Reopening from disk answers the same, bit for bit.
    drop(catalog);
    let reopened = Catalog::open(&cat_dir).unwrap();
    let whole2 = reopened
        .query_rect(&reopened.grid().domain(), TimeRange::all())
        .unwrap();
    assert_eq!(whole2, whole);
    assert_eq!(
        whole2.mean_ice_freeboard_m.to_bits(),
        whole.mean_ice_freeboard_m.to_bits()
    );
    reopened.validate().unwrap();

    let _ = std::fs::remove_dir_all(&fleet_dir);
    let _ = std::fs::remove_dir_all(&cat_dir);
}
