//! Cross-crate consistency: the ATL03 generator and the Sentinel-2
//! renderer must observe the *same* truth scene, displaced only by the
//! drift model — that coherence is what makes auto-labeling meaningful.

use icesat2_seaice::atl03::generator::test_meta;
use icesat2_seaice::atl03::{
    preprocess_beam, resample_2m, Atl03Generator, Beam, GeneratorConfig, PreprocessConfig,
    ResampleConfig, TrackConfig,
};
use icesat2_seaice::geo::{GeoPoint, EPSG_3976};
use icesat2_seaice::scene::{DriftModel, Scene, SceneConfig, SurfaceClass};
use icesat2_seaice::sentinel2::{render_scene, Label, RenderConfig};

fn small_scene(seed: u64, drift: DriftModel) -> Scene {
    let mut sc = SceneConfig::ross_sea_with_drift(seed, drift);
    sc.half_extent_m = 3_000.0;
    Scene::generate(sc)
}

#[test]
fn is2_heights_match_s2_classes_at_the_same_epoch() {
    // Both sensors at t=0: segments labelled water by the S2 *truth*
    // raster must sit at the sea surface; thick-ice segments well above.
    let scene = small_scene(2001, DriftModel::STILL);
    let track = TrackConfig::crossing(scene.config().center, 5_000.0);
    let granule = Atl03Generator::new(
        &scene,
        GeneratorConfig {
            seed: 2001,
            ..GeneratorConfig::default()
        },
    )
    .generate(test_meta(0.0), &track, &[Beam::Gt2l]);
    let pre = preprocess_beam(
        granule.beam(Beam::Gt2l).unwrap(),
        &PreprocessConfig::default(),
    );
    let segments = resample_2m(&pre, &ResampleConfig::default());

    let img = render_scene(
        &scene,
        &RenderConfig {
            seed: 3001,
            pixel_size_m: 30.0,
            ..RenderConfig::default()
        },
    );
    let mut water_sum = 0.0;
    let mut water_n = 0usize;
    let mut thick_sum = 0.0;
    let mut thick_n = 0usize;
    for s in &segments {
        let p = EPSG_3976.forward(GeoPoint::new(s.lat, s.lon));
        match img.truth.sample(p) {
            Some(Label::Class(SurfaceClass::OpenWater)) => {
                water_sum += s.mean_h_m;
                water_n += 1;
            }
            Some(Label::Class(SurfaceClass::ThickIce)) => {
                thick_sum += s.mean_h_m;
                thick_n += 1;
            }
            _ => {}
        }
    }
    assert!(water_n > 20, "water segments {water_n}");
    assert!(thick_n > 200, "thick segments {thick_n}");
    let water_mean = water_sum / water_n as f64;
    let thick_mean = thick_sum / thick_n as f64;
    assert!(
        thick_mean - water_mean > 0.2,
        "freeboard contrast lost: thick {thick_mean:.3} vs water {water_mean:.3}"
    );
    assert!(
        water_mean.abs() < 0.2,
        "water far from sea level: {water_mean:.3}"
    );
}

#[test]
fn drift_displaces_s2_relative_to_is2_by_the_modelled_amount() {
    let drift = DriftModel::from_displacement(420.0, -300.0, 40.0);
    let scene = small_scene(2003, drift);
    // Render the same grid at t=0 and t=40 min.
    let img0 = render_scene(
        &scene,
        &RenderConfig {
            seed: 5,
            pixel_size_m: 30.0,
            ..RenderConfig::default()
        },
    );
    let img40 = render_scene(
        &scene,
        &RenderConfig {
            seed: 5,
            pixel_size_m: 30.0,
            acquisition_offset_min: 40.0,
            ..RenderConfig::default()
        },
    );
    // The t=40 truth, sampled at p, equals the t=0 truth at p − d.
    let (dx, dy) = drift.displacement(40.0);
    let c = scene.config().center;
    let mut matches = 0usize;
    let mut total = 0usize;
    for i in 0..900 {
        let p = icesat2_seaice::geo::MapPoint::new(
            c.x + ((i % 30) as f64 - 15.0) * 120.0,
            c.y + ((i / 30) as f64 - 15.0) * 120.0,
        );
        let q = p.shifted(-dx, -dy);
        if let (Some(a), Some(b)) = (img40.truth.sample(p), img0.truth.sample(q)) {
            total += 1;
            if a == b {
                matches += 1;
            }
        }
    }
    assert!(total > 700);
    // Pixel quantisation at 30 m blurs the exact equality a little.
    assert!(
        matches as f64 > 0.9 * total as f64,
        "drift coherence {matches}/{total}"
    );
}

#[test]
fn atl07_and_2m_segments_agree_on_mean_surface_height() {
    // Both aggregations of the same photons must see the same mean
    // surface: height conservation across resolutions.
    let scene = small_scene(2005, DriftModel::STILL);
    let track = TrackConfig::crossing(scene.config().center, 5_000.0);
    let granule = Atl03Generator::new(
        &scene,
        GeneratorConfig {
            seed: 2005,
            ..GeneratorConfig::default()
        },
    )
    .generate(test_meta(0.0), &track, &[Beam::Gt2l]);
    let pre = preprocess_beam(
        granule.beam(Beam::Gt2l).unwrap(),
        &PreprocessConfig::default(),
    );
    let no_fpb = ResampleConfig {
        correct_first_photon_bias: false,
        ..ResampleConfig::default()
    };
    let segs2m = resample_2m(&pre, &no_fpb);
    let segs07 = icesat2_seaice::seaice::atl07::atl07_segments(&pre);

    let w_mean_2m: f64 = segs2m
        .iter()
        .map(|s| s.mean_h_m * s.n_photons as f64)
        .sum::<f64>()
        / segs2m.iter().map(|s| s.n_photons as f64).sum::<f64>();
    let w_mean_07: f64 = segs07
        .iter()
        .map(|s| s.mean_h_m * s.n_photons as f64)
        .sum::<f64>()
        / segs07.iter().map(|s| s.n_photons as f64).sum::<f64>();
    // ATL07 may drop a trailing partial segment; tolerance covers it.
    assert!(
        (w_mean_2m - w_mean_07).abs() < 0.01,
        "2 m {w_mean_2m:.4} vs ATL07 {w_mean_07:.4}"
    );
}

#[test]
fn granule_io_roundtrip_preserves_pipeline_output() {
    // Writing a granule to disk and reading it back must give identical
    // 2 m segments (the scaled runs depend on it).
    let scene = small_scene(2007, DriftModel::STILL);
    let track = TrackConfig::crossing(scene.config().center, 3_000.0);
    let granule = Atl03Generator::new(
        &scene,
        GeneratorConfig {
            seed: 2007,
            ..GeneratorConfig::default()
        },
    )
    .generate(
        test_meta(0.0),
        &track,
        &[Beam::Gt1l, Beam::Gt2l, Beam::Gt3l],
    );

    let dir = std::env::temp_dir().join("integration_io_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g.a3g");
    icesat2_seaice::atl03::io::write_file(&granule, &path).unwrap();
    let back = icesat2_seaice::atl03::io::read_file(&path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    for beam in [Beam::Gt1l, Beam::Gt2l, Beam::Gt3l] {
        let a = resample_2m(
            &preprocess_beam(granule.beam(beam).unwrap(), &PreprocessConfig::default()),
            &ResampleConfig::default(),
        );
        let b = resample_2m(
            &preprocess_beam(back.beam(beam).unwrap(), &PreprocessConfig::default()),
            &ResampleConfig::default(),
        );
        assert_eq!(a, b, "beam {beam} diverged after IO roundtrip");
    }
}
