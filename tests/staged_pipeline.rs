//! The staged-artifact API: equivalence with the legacy entry point,
//! artifact persistence, cross-granule model reuse, and the fleet driver.

use icesat2_seaice::seaice::heuristic::{heuristic_classes, HeuristicConfig};
use icesat2_seaice::seaice::pipeline::{Pipeline, PipelineConfig};
use icesat2_seaice::seaice::stages::{PipelineBuilder, TrainedModels};
use icesat2_seaice::seaice::{eval, Artifact, FleetDriver};
use icesat2_seaice::sparklite::Cluster;

/// The composed staged API must produce identical products to the legacy
/// `Pipeline::run()` for the same config — stage boundaries are pure
/// refactoring, not behaviour.
#[test]
fn staged_api_matches_legacy_run() {
    let cfg = PipelineConfig::small(42);
    let legacy = Pipeline::new(cfg.clone()).run();
    let staged = PipelineBuilder::new(cfg).run();

    // Stage 1: identical curation.
    assert_eq!(staged.track.segments, legacy.segments);

    // Stage 2: identical labels and drift.
    assert_eq!(staged.labeled.labels, legacy.auto_labels);
    assert_eq!(staged.labeled.drift, legacy.drift);
    assert_eq!(staged.labeled.autolabel_accuracy, legacy.autolabel_accuracy);

    // Stage 3: identical held-out evaluation and parameters.
    assert_eq!(staged.models.lstm_report, legacy.reports["LSTM"]);
    assert_eq!(staged.models.mlp_report, legacy.reports["MLP"]);
    assert_eq!(staged.models.lstm_confusion, legacy.lstm_confusion);
    assert_eq!(
        staged.models.lstm.model.flat_params(),
        legacy.lstm.model.flat_params()
    );

    // Stage 4: identical products.
    assert_eq!(staged.products.classes, legacy.classes);
    assert_eq!(
        staged.products.classification_accuracy_vs_truth,
        legacy.classification_accuracy_vs_truth
    );
    for ss in &staged.products.sea_surfaces {
        let legacy_ss = &legacy.sea_surfaces[ss.method.name()];
        assert_eq!(ss, legacy_ss, "surface {}", ss.method.name());
    }
    assert_eq!(
        staged.products.freeboard_atl03.points,
        legacy.freeboard_atl03.points
    );
    assert_eq!(staged.products.atl07_classes, legacy.atl07_classes);
    assert_eq!(staged.products.surface_gap_m, legacy.surface_gap_m);
}

/// Every stage artifact must survive a disk roundtrip, and a reloaded
/// `TrainedModels` must predict identically.
#[test]
fn artifacts_roundtrip_on_disk() {
    let run = PipelineBuilder::new(PipelineConfig::small(43)).run();
    let dir = std::env::temp_dir().join("staged_artifact_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();

    let track_path = dir.join("track.sic1");
    run.track.save(&track_path).unwrap();
    let track = icesat2_seaice::seaice::CuratedTrack::load(&track_path).unwrap();
    assert_eq!(track.segments, run.track.segments);
    assert_eq!(track.config, run.track.config);

    let labeled_path = dir.join("labels.sic2");
    run.labeled.save(&labeled_path).unwrap();
    let labeled = icesat2_seaice::seaice::LabeledDataset::load(&labeled_path).unwrap();
    assert_eq!(labeled.labels, run.labeled.labels);

    let models_path = dir.join("models.sic3");
    run.models.save(&models_path).unwrap();
    let mut models = TrainedModels::load(&models_path).unwrap();
    assert_eq!(models.classify(&track.segments), run.products.classes);

    let products_path = dir.join("products.sic4");
    run.products.save(&products_path).unwrap();
    let products = icesat2_seaice::seaice::SeaIceProducts::load(&products_path).unwrap();
    assert_eq!(products.classes, run.products.classes);
    assert_eq!(products.surface_gap_m, run.products.surface_gap_m);

    let _ = std::fs::remove_dir_all(&dir);
}

/// One `TrainedModels` reused across granules from a *different* seed
/// (different truth scene, different photons) must still classify well —
/// at or above the physics-threshold heuristic baseline. This is the
/// cross-granule reuse the staged API exists for.
#[test]
fn trained_models_transfer_across_granule_seeds() {
    // Train on scene 44.
    let train_run = PipelineBuilder::new(PipelineConfig::small(44)).run();
    let mut models = train_run.models;

    // Apply to a freshly curated scene 45 — different truth scene,
    // different photons — without retraining.
    let other = PipelineBuilder::new(PipelineConfig::small(45)).curate();
    let scene = other.scene();
    let dl_classes = models.classify(&other.segments);
    let dl_acc = eval::classification_accuracy_vs_truth(&scene, &other.segments, &dl_classes, 0.0);

    let heur_classes = heuristic_classes(&other.segments, &HeuristicConfig::default());
    let heur_acc =
        eval::classification_accuracy_vs_truth(&scene, &other.segments, &heur_classes, 0.0);

    assert!(dl_acc > 0.9, "transferred LSTM accuracy {dl_acc}");
    assert!(
        dl_acc > heur_acc,
        "transferred LSTM ({dl_acc:.3}) fell behind the heuristic baseline ({heur_acc:.3})"
    );
}

/// `FleetDriver` must process a ≥4-granule fleet with one shared
/// `TrainedModels`, produce one product per beam partition, and be
/// invariant to cluster topology.
#[test]
fn fleet_driver_reuses_one_model_across_four_granules() {
    let cfg = PipelineConfig::small(44);
    let run = PipelineBuilder::new(cfg.clone()).run();

    let pipeline = Pipeline::new(cfg.clone());
    let dir = std::env::temp_dir().join("staged_fleet_four_granules");
    let n_granules = 4;
    let sources = FleetDriver::write_fleet(&pipeline, &dir, n_granules).expect("fleet");
    assert_eq!(sources.len(), n_granules * 3, "three strong beams each");

    let (products_1, _) =
        FleetDriver::new(Cluster::new(1, 1), &cfg).classify_run(&sources, &run.models);
    let (products_4, report) =
        FleetDriver::new(Cluster::new(2, 2), &cfg).classify_run(&sources, &run.models);

    assert_eq!(products_1.len(), sources.len());
    assert_eq!(products_4.len(), sources.len());
    for (a, b) in products_1.iter().zip(&products_4) {
        assert_eq!(a.granule_id, b.granule_id);
        assert_eq!(a.beam, b.beam);
        assert_eq!(a.class_counts, b.class_counts);
        assert_eq!(a.freeboard.points, b.freeboard.points);
    }

    // Each beam produced a meaningful product.
    let granules: std::collections::BTreeSet<_> =
        products_1.iter().map(|p| p.granule_id.clone()).collect();
    assert_eq!(granules.len(), n_granules);
    for p in &products_1 {
        assert!(p.n_segments > 1_000, "{}/{}", p.granule_id, p.beam);
        assert_eq!(p.class_counts.iter().sum::<usize>(), p.n_segments);
        assert!(!p.freeboard.is_empty());
    }
    assert!(report.times.reduce_s >= 0.0);

    let _ = std::fs::remove_dir_all(&dir);
}
