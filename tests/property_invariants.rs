//! Cross-crate property tests: invariants that must hold for *any*
//! physically-shaped input, not just the seeds the examples use.

use icesat2_seaice::atl03::{Photon, Segment, SignalConfidence};
use icesat2_seaice::scene::SurfaceClass;
use icesat2_seaice::seaice::freeboard::FreeboardProduct;
use icesat2_seaice::seaice::seasurface::{SeaSurface, SeaSurfaceMethod, WindowConfig};
use proptest::prelude::*;

fn arb_segments(n: usize, seed: u64, water_every: usize) -> Vec<(Segment, SurfaceClass)> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let water = i % water_every.max(2) == 0;
            let h = if water {
                rng.random_range(-0.05..0.05)
            } else {
                rng.random_range(0.15..0.6)
            };
            let seg = Segment {
                index: i as u32,
                along_track_m: i as f64 * 2.0 + 1.0,
                lat: -74.0,
                lon: -170.0,
                n_photons: rng.random_range(1..12),
                n_high_conf: 1,
                n_background: rng.random_range(0..3),
                mean_h_m: h,
                median_h_m: h,
                std_h_m: rng.random_range(0.01..0.2),
                photon_rate: rng.random_range(0.1..4.0),
                background_rate: rng.random_range(0.0..1.5),
                fpb_correction_m: 0.0,
            };
            let class = if water {
                SurfaceClass::OpenWater
            } else {
                SurfaceClass::ThickIce
            };
            (seg, class)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every method, the derived sea level at any position lies within
    /// the range of observed water heights (interpolation cannot invent
    /// levels outside the anchors), and `href_at` is continuous between
    /// window centres.
    #[test]
    fn sea_surface_stays_within_water_envelope(
        seed in 0u64..200,
        n in 2_000usize..6_000,
        water_every in 3usize..40,
    ) {
        let data = arb_segments(n, seed, water_every);
        let segments: Vec<Segment> = data.iter().map(|(s, _)| *s).collect();
        let labels: Vec<SurfaceClass> = data.iter().map(|(_, c)| *c).collect();
        let water_heights: Vec<f64> = data
            .iter()
            .filter(|(_, c)| *c == SurfaceClass::OpenWater)
            .map(|(s, _)| s.mean_h_m)
            .collect();
        prop_assume!(!water_heights.is_empty());
        let lo = water_heights.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        let hi = water_heights.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        for method in SeaSurfaceMethod::ALL {
            let ss = SeaSurface::compute(&segments, &labels, method, &WindowConfig::default());
            for &c in &ss.centers_m {
                let h = ss.href_at(c);
                prop_assert!(h >= lo - 1e-9 && h <= hi + 1e-9,
                    "{method:?}: href {h} outside water envelope [{lo}, {hi}]");
            }
            // Continuity: adjacent evaluations differ by a bounded amount.
            let probe = ss.centers_m[0];
            let a = ss.href_at(probe);
            let b = ss.href_at(probe + 1.0);
            prop_assert!((a - b).abs() <= (hi - lo) + 1e-9);
        }
    }

    /// Freeboard decomposition: for every point,
    /// `freeboard == mean_h − href(along)` exactly, and the product
    /// preserves ordering and length.
    #[test]
    fn freeboard_is_exact_height_difference(
        seed in 0u64..200,
        n in 2_000usize..5_000,
    ) {
        let data = arb_segments(n, seed, 7);
        let segments: Vec<Segment> = data.iter().map(|(s, _)| *s).collect();
        let labels: Vec<SurfaceClass> = data.iter().map(|(_, c)| *c).collect();
        let ss = SeaSurface::compute(&segments, &labels, SeaSurfaceMethod::NasaEquation, &WindowConfig::default());
        let product = FreeboardProduct::from_segments("prop", &segments, &labels, &ss);
        prop_assert_eq!(product.len(), segments.len());
        for (p, s) in product.points.iter().zip(&segments) {
            prop_assert!((p.freeboard_m - (s.mean_h_m - ss.href_at(s.along_track_m))).abs() < 1e-12);
        }
        prop_assert!(product.points.windows(2).all(|w| w[0].along_track_m <= w[1].along_track_m));
    }

    /// Granule IO: any syntactically-valid photon list round-trips bit
    /// exactly through the binary format.
    #[test]
    fn granule_io_roundtrips_arbitrary_photons(
        seed in 0u64..500,
        n in 0usize..400,
    ) {
        use rand::{Rng, SeedableRng};
        use icesat2_seaice::atl03::{io, Beam, BeamData, Granule, GranuleMeta};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut photons: Vec<Photon> = (0..n)
            .map(|_| Photon {
                delta_time_s: rng.random_range(0.0..100.0),
                lat: rng.random_range(-78.0..-70.0),
                lon: rng.random_range(-180.0..-140.0),
                height_m: rng.random_range(-20.0..20.0),
                along_track_m: rng.random_range(0.0..1e5),
                confidence: SignalConfidence::from_level(rng.random_range(0..5)).unwrap(),
            })
            .collect();
        photons.sort_by(|a, b| a.along_track_m.total_cmp(&b.along_track_m));
        let granule = Granule {
            meta: GranuleMeta {
                acquisition: "20191104195311".into(),
                rgt: rng.random_range(1..1388),
                cycle: rng.random_range(1..20),
                release: 6,
                epoch_offset_min: rng.random_range(-80.0..80.0),
            },
            beams: vec![BeamData { beam: Beam::Gt2l, photons }],
        };
        let decoded = io::decode(&io::encode(&granule)).unwrap();
        prop_assert_eq!(decoded.meta, granule.meta);
        prop_assert_eq!(&decoded.beams[0].photons, &granule.beams[0].photons);
    }

    /// The heuristic classifier always returns a label per segment and
    /// never panics on arbitrary physical inputs.
    #[test]
    fn heuristic_classifier_is_total(
        seed in 0u64..200,
        n in 1usize..3_000,
        water_every in 2usize..50,
    ) {
        use icesat2_seaice::seaice::heuristic::{heuristic_classes, HeuristicConfig};
        let data = arb_segments(n, seed, water_every);
        let segments: Vec<Segment> = data.iter().map(|(s, _)| *s).collect();
        let classes = heuristic_classes(&segments, &HeuristicConfig::default());
        prop_assert_eq!(classes.len(), segments.len());
    }
}
