//! # icesat2-seaice
//!
//! Umbrella crate for the reproduction of *Scalable Higher Resolution Polar
//! Sea Ice Classification and Freeboard Calculation from ICESat-2 ATL03
//! Data* (Iqrah et al., IPDPS 2025).
//!
//! The workspace is organised as one crate per subsystem; this crate
//! re-exports all of them so that examples and downstream users can depend
//! on a single package:
//!
//! - [`geo`] — WGS84 ellipsoid and EPSG-3976 polar stereographic projection.
//! - [`scene`] — ground-truth Antarctic sea-ice scene model shared by the
//!   ATL03 and Sentinel-2 synthetic generators.
//! - [`atl03`] — ICESat-2 ATL03 photon model, synthetic granule generation,
//!   preprocessing, and 2 m resampling.
//! - [`sentinel2`] — synthetic Sentinel-2 scenes and the color-based
//!   thin-cloud/shadow-filtered segmentation used for auto-labeling.
//! - [`sparklite`] — miniature map-reduce engine (executors × cores) used to
//!   reproduce the PySpark scalability tables.
//! - [`neurite`] — from-scratch neural network library (Dense, LSTM, focal
//!   loss, Adam, metrics).
//! - [`hvd`] — Horovod-style synchronous data-parallel training with a ring
//!   all-reduce.
//! - [`seaice`] — the paper's pipeline: auto-labeling, classification,
//!   local sea surface detection, and freeboard retrieval, plus the
//!   ATL07/ATL10 baseline emulation.
//! - [`products`] — the thickness / snow / uncertainty product family:
//!   pluggable snow-depth models (climatology, downscaled reanalysis),
//!   hydrostatic thickness retrieval with a per-term variance budget,
//!   and the stage-5 `ProductSet` artifact.
//! - [`catalog`] — the serve path: a tiled polar-stereographic store of
//!   fleet products (freeboard and thickness) with a concurrent
//!   spatial/temporal query engine, a TCP serving front-end +
//!   quadkey-prefix shard router (bit-identical remote queries; wire
//!   spec in `docs/PROTOCOL.md`), and a cross-process writer-lease
//!   protocol.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the experiment
//! index.

pub use hvd_ring as hvd;
pub use icesat_atl03 as atl03;
pub use icesat_geo as geo;
pub use icesat_scene as scene;
pub use icesat_sentinel2 as sentinel2;
pub use neurite;
pub use seaice;
pub use seaice_catalog as catalog;
pub use seaice_products as products;
pub use sparklite;
